#!/usr/bin/env python3
"""Photonic testbench: the paper's figures as runnable hardware.

Builds the exact example networks the paper draws and exercises them at
the component level -- every splitter, SOA gate, combiner and
wavelength converter is an object, and "running" a configuration means
propagating signal records through the component graph:

* Fig. 5  -- the 3x3 single-wavelength multicast space switch;
* Fig. 6  -- the MSDW crossbar for N=3, k=2 (input-side converters);
* Fig. 7  -- the MAW crossbar for N=3, k=2 (output-side converters);
* Fig. 10 -- the middle-stage blocking scenario, on a full physical
  three-stage network for both construction methods.

Run with::

    python examples/photonic_testbench.py
"""

from __future__ import annotations

from repro.core.models import Construction, MulticastModel
from repro.fabric.space_crossbar import SpaceCrossbar
from repro.fabric.wdm_crossbar import build_crossbar
from repro.multistage.adversary import fig10_scenario
from repro.multistage.fabric_backed import FabricBackedThreeStage
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection


def banner(text: str) -> None:
    print()
    print("=" * 70)
    print(text)
    print("=" * 70)


def fig5() -> None:
    banner("Fig. 5 -- 3x3 multicast space switch (one wavelength)")
    switch = SpaceCrossbar(3)
    print(f"components: {dict(switch.fabric.census())}")
    routes = {0: {0, 2}, 1: {1}}
    delivered = switch.delivered(routes)
    print(f"configured routes {routes}")
    print(f"delivered (output -> source): {delivered}")
    assert delivered == {0: 0, 1: 1, 2: 0}


def fig6_fig7() -> None:
    for model, figure in ((MulticastModel.MSDW, 6), (MulticastModel.MAW, 7)):
        banner(f"Fig. {figure} -- {model.value} crossbar, N=3, k=2")
        crossbar = build_crossbar(model, 3, 2)
        census = crossbar.fabric.census()
        print(f"SOA gates: {crossbar.crosspoint_count()}  "
              f"(k^2 N^2 = {4 * 9})")
        print(f"converters: {crossbar.converter_count()} "
              f"({model.converter_side} side)")
        print(f"full census: {dict(sorted(census.items()))}")

        if model is MulticastModel.MSDW:
            # One multicast: source lambda_0, all destinations lambda_1.
            assignment = MulticastAssignment(
                [
                    MulticastConnection(
                        Endpoint(0, 0), [Endpoint(1, 1), Endpoint(2, 1)]
                    )
                ]
            )
        else:
            # MAW: each destination on its own wavelength.
            assignment = MulticastAssignment(
                [
                    MulticastConnection(
                        Endpoint(0, 0), [Endpoint(1, 1), Endpoint(2, 0)]
                    )
                ]
            )
        result = crossbar.realize(assignment)
        print("photon arrivals:")
        for terminal, signals in sorted(result.active_terminals().items()):
            for signal in signals:
                print(
                    f"  {terminal}: lambda_{signal.wavelength} "
                    f"(origin port {signal.source_port}, "
                    f"lambda_{signal.source_wavelength})"
                )


def fig10() -> None:
    banner("Fig. 10 -- blocking at an MSW middle switch, physically")
    outcome = fig10_scenario()
    print("prior connections:")
    for connection in outcome.connections:
        print(f"  {connection}")
    print(f"contested request: {outcome.contested}")
    print(f"MSW-dominant: {'BLOCKED' if outcome.msw_dominant_blocked else 'routed'}")
    print(f"MAW-dominant: {'BLOCKED' if outcome.maw_dominant_blocked else 'routed'}")

    # Re-run the routable case end-to-end on the physical fabric.
    net = ThreeStageNetwork(
        2, 2, 2, 2,
        construction=Construction.MAW_DOMINANT,
        model=MulticastModel.MAW,
        x=1,
    )
    for connection in outcome.connections:
        net.connect(connection)
    net.connect(outcome.contested)
    physical = FabricBackedThreeStage(
        2, 2, 2, 2,
        construction=Construction.MAW_DOMINANT,
        model=MulticastModel.MAW,
    )
    result = physical.realize(net.active_connections.values())
    print()
    print("MAW-dominant network carrying all three connections "
          f"({physical.crosspoint_count()} gates, "
          f"{physical.converter_count()} converters):")
    for terminal, signals in sorted(result.active_terminals().items()):
        for signal in signals:
            print(
                f"  {terminal}: lambda_{signal.wavelength} from port "
                f"{signal.source_port}"
            )


def main() -> None:
    fig5()
    fig6_fig7()
    fig10()
    print()
    print("all figure constructions verified at the component level.")


if __name__ == "__main__":
    main()
