#!/usr/bin/env python3
"""Bounds explorer: sufficient, exact, and rearrangeable thresholds.

Walks the full hierarchy of "how many middle switches do I need?"
answers this reproduction can produce for a three-stage WDM multicast
network, from the paper's closed forms down to model-checked exact
values:

1. the paper's Theorem 1/2 sufficient bounds, per routing parameter x;
2. the reproduction's *corrected* model-aware bound (and the executable
   counterexample showing why the correction is needed for MSDW/MAW);
3. Monte-Carlo blocking probabilities below the bounds;
4. for a tiny network: the exact strict-sense threshold by exhaustive
   model checking, and the rearrangeable threshold by offline routing.

Run with::

    python examples/bounds_explorer.py
"""

from __future__ import annotations

from repro import api
from repro.core.corrected import CorrectedBound, min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import NonblockingBound, min_middle_switches_msw_dominant
from repro.multistage.adversary import demonstrate_theorem1_gap
from repro.multistage.offline import minimal_rearrangeable_m


def banner(text: str) -> None:
    print()
    print("=" * 70)
    print(text)
    print("=" * 70)


def sufficient_bounds() -> None:
    banner("1. The paper's sufficient bounds, m(x), for n = r = 12, k = 4")
    for construction in Construction:
        bound = NonblockingBound.compute(12, 12, 4, construction)
        profile = "  ".join(f"x={x}:{m}" for x, m in bound.per_x[:6])
        print(f"  {construction.value:13s}: {profile} ...")
        print(f"  {'':13s}  optimum: m = {bound.m_min} at x = {bound.best_x}")


def corrected_bounds() -> None:
    banner("2. The corrected model-aware bound (reproduction finding)")
    print("  For MSDW/MAW models with k > 1, Theorem 1's one-wavelength")
    print("  reduction undercounts output-side interference:")
    result = demonstrate_theorem1_gap(2, 3, 2, MulticastModel.MAW)
    print(f"    v(2,3,m,2) MAW, x=1: paper m_min = {result.m_paper} -> "
          f"{'BLOCKED' if result.blocked_at_paper_bound else 'routed'}")
    print(f"    corrected m_min = {result.m_corrected} -> "
          f"{'routed' if result.routed_at_corrected_bound else 'BLOCKED'}")
    print()
    print("  Corrected minima at n = r = 12, x = 2, MAW model:")
    for k in (1, 2, 4):
        paper = min_middle_switches_msw_dominant(12, 12, k, x=2)
        msw_dom = min_middle_switches_corrected(
            12, 12, k, Construction.MSW_DOMINANT, MulticastModel.MAW, x=2
        )
        maw_dom = min_middle_switches_corrected(
            12, 12, k, Construction.MAW_DOMINANT, MulticastModel.MAW, x=2
        )
        print(f"    k={k}: paper Thm1 {paper:4d}   corrected MSW-dominant "
              f"{msw_dom:4d}   MAW-dominant {maw_dom:4d}")


def monte_carlo() -> None:
    banner("3. Blocking probability below the bound (n = r = 3, k = 1, x = 1)")
    bound = min_middle_switches_msw_dominant(3, 3, 1, x=1)
    estimates = api.sweep(
        3, 3, 1, list(range(1, bound + 1)), x=1,
        traffic=api.UniformConfig(steps=600, seeds=(0, 1)),
    )
    for estimate in estimates:
        bar = "#" * int(estimate.probability * 50)
        print(f"  m={estimate.m:2d}: {estimate.probability:7.4f} {bar}")
    print(f"  (Theorem-1 bound: m = {bound})")


def exact_thresholds() -> None:
    banner("4. Exact thresholds by model checking -- v(2, 2, m, 1), x = 1")
    result = api.exact_m(2, 2, 1, x=1, m_max=6)
    for per_m in result.per_m:
        verdict = "blockable" if per_m.blockable else "nonblocking"
        print(f"  m={per_m.m}: {verdict:12s} "
              f"({per_m.states_explored} reachable states examined)")
    rearrangeable, _ = minimal_rearrangeable_m(2, 2, 1, x=1, m_max=6)
    paper = min_middle_switches_msw_dominant(2, 2, 1, x=1)
    print()
    print(f"  rearrangeable threshold : m = {rearrangeable}")
    print(f"  exact strict threshold  : m = {result.m_exact}")
    print(f"  Theorem 1 (sufficient)  : m = {paper}")
    bound = CorrectedBound.compute(
        2, 2, 1, Construction.MSW_DOMINANT, MulticastModel.MSW
    )
    assert bound.m_min == paper  # no correction needed at k = 1
    print("  -> one unit of analytical slack on this instance, none of it")
    print("     reachable by any traffic pattern the checker can construct.")


def main() -> None:
    sufficient_bounds()
    corrected_bounds()
    monte_carlo()
    exact_thresholds()


if __name__ == "__main__":
    main()
