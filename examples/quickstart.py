#!/usr/bin/env python3
"""Quickstart: the WDM multicast reproduction in five minutes.

Walks the public API end to end:

1. pick a multicast model and evaluate its capacity and crossbar cost
   (the paper's Table 1);
2. size a nonblocking three-stage network (Theorem 1) and compare its
   cost with the crossbar (Table 2);
3. bring the network up in the simulator and route a few multicast
   connections;
4. drop to the component level and push actual photons through a
   crossbar fabric.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CapacityResult,
    Endpoint,
    MulticastAssignment,
    MulticastConnection,
    MulticastModel,
    crossbar_cost,
    optimal_design,
)
from repro.fabric import build_crossbar
from repro.multistage.network import ThreeStageNetwork


def step1_models() -> None:
    print("=" * 70)
    print("Step 1: the three multicast models on an 8x8, 4-wavelength switch")
    print("=" * 70)
    for model in MulticastModel:
        capacity = CapacityResult.compute(model, n_ports=8, k=4)
        cost = crossbar_cost(model, n_ports=8, k=4)
        print(
            f"  {model.value:>4}: 10^{capacity.log10_any:6.1f} assignments, "
            f"{cost.crosspoints:4d} crosspoints, {cost.converters} converters"
        )
    print(
        "  -> MSDW costs the same as MAW but does strictly less: the paper"
        " calls it dominated.\n"
    )


def step2_design() -> MulticastModel:
    print("=" * 70)
    print("Step 2: sizing a nonblocking 256x256 switch (k=4, MAW model)")
    print("=" * 70)
    model = MulticastModel.MAW
    design = optimal_design(n_ports=256, k=4, output_model=model)
    crossbar = crossbar_cost(model, 256, 4)
    print(f"  three-stage design: n={design.n}, r={design.r}, m={design.m}, "
          f"x={design.x}")
    print(f"  crosspoints: {design.cost.crosspoints:>9} (crossbar: "
          f"{crossbar.crosspoints})")
    print(f"  converters:  {design.cost.converters:>9} (crossbar: "
          f"{crossbar.converters})")
    saving = crossbar.crosspoints / design.cost.crosspoints
    print(f"  -> the multistage network is {saving:.1f}x cheaper in gates.\n")
    return model


def step3_routing() -> None:
    print("=" * 70)
    print("Step 3: routing multicast connections on v(4, 4, m_min, 2)")
    print("=" * 70)
    net = ThreeStageNetwork(n=4, r=4, m=16, k=2, model=MulticastModel.MAW)
    print(f"  topology: {net.topology.describe()}")
    print(f"  provably nonblocking at x={net.x}: {net.is_provably_nonblocking()}")

    # A video stream from port 0 fanning out to four receivers, two of
    # which listen on a different wavelength than the source transmits.
    stream = MulticastConnection(
        Endpoint(0, 0),
        [Endpoint(3, 0), Endpoint(5, 1), Endpoint(9, 0), Endpoint(14, 1)],
    )
    cid = net.connect(stream)
    routed = net.active_connections[cid]
    print(f"  routed {stream}")
    print(f"    via middle switches {routed.middles_used}")

    # The same source node's OTHER transmitter carries a second stream
    # concurrently -- the WDM feature electronic switches lack.
    second = MulticastConnection(Endpoint(0, 1), [Endpoint(3, 1)])
    net.connect(second)
    print(f"  routed {second} (same node, second wavelength)")
    print(f"  link utilization: {net.link_utilization()}\n")


def step4_photons() -> None:
    print("=" * 70)
    print("Step 4: photons through the Fig. 7 MAW crossbar (N=3, k=2)")
    print("=" * 70)
    crossbar = build_crossbar(MulticastModel.MAW, 3, 2)
    print(f"  built: {crossbar.crosspoint_count()} SOA gates, "
          f"{crossbar.converter_count()} converters")
    assignment = MulticastAssignment(
        [
            MulticastConnection(Endpoint(0, 0), [Endpoint(1, 1), Endpoint(2, 0)]),
            MulticastConnection(Endpoint(1, 1), [Endpoint(0, 0)]),
        ]
    )
    result = crossbar.realize(assignment)
    for terminal, signals in sorted(result.active_terminals().items()):
        for signal in signals:
            print(
                f"  {terminal}: carrier lambda_{signal.wavelength}, "
                f"origin (port {signal.source_port}, "
                f"lambda_{signal.source_wavelength})"
            )
    print("  -> every requested endpoint lit up with the right signal.")


def main() -> None:
    step1_models()
    step2_design()
    step3_routing()
    step4_photons()


if __name__ == "__main__":
    main()
