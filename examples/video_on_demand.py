#!/usr/bin/env python3
"""Video-on-demand over a nonblocking WDM multicast switch.

The workload the paper's introduction motivates: a head-end with a few
server ports streams many TV channels; subscriber ports join and leave
channels over time.  WDM multicast lets one server port carry up to
``k`` channels concurrently (one per transmitter wavelength) and one
subscriber port watch up to ``k`` channels concurrently (one per
receiver wavelength) -- the feature electronic multicast switches lack.

The switch is a three-stage MSW-dominant network under the MAW model,
sized by Theorem 1, so **no join request that respects endpoint
capacity is ever refused by the switch fabric** -- the simulation
asserts exactly that while churning through thousands of join/leave
events.

Run with::

    python examples/video_on_demand.py
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import NonblockingBound
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection

# ----------------------------------------------------------------------
# Scenario parameters
# ----------------------------------------------------------------------
N_MODULE_PORTS = 4  # n
N_MODULES = 8  # r  -> 32 ports total
WAVELENGTHS = 4  # k
SERVER_PORTS = 4  # head-end uplinks; the rest are subscribers
CHANNELS = SERVER_PORTS * WAVELENGTHS  # one channel per server transmitter
EVENTS = 4000
SEED = 2026


@dataclass
class Channel:
    """One TV channel: a server transmitter and its current viewers."""

    channel_id: int
    source: Endpoint
    viewers: dict[int, int] = field(default_factory=dict)  # port -> wavelength
    connection_id: int | None = None


class VodHeadEnd:
    """Drives channel multicast trees over the WDM switch."""

    def __init__(self) -> None:
        bound = NonblockingBound.compute(
            N_MODULE_PORTS, N_MODULES, WAVELENGTHS, Construction.MSW_DOMINANT
        )
        self.net = ThreeStageNetwork(
            N_MODULE_PORTS,
            N_MODULES,
            bound.m_min,
            WAVELENGTHS,
            model=MulticastModel.MAW,
            x=bound.best_x,
        )
        self.n_ports = self.net.topology.n_ports
        self.channels = [
            Channel(
                channel_id=index,
                source=Endpoint(index % SERVER_PORTS, index // SERVER_PORTS),
            )
            for index in range(CHANNELS)
        ]
        # subscriber receiver bookkeeping: port -> set of busy wavelengths
        self.busy_receivers: dict[int, set[int]] = defaultdict(set)
        self.joins = 0
        self.leaves = 0
        self.rejected_by_capacity = 0

    # -- channel tree maintenance ------------------------------------

    def _rebuild(self, channel: Channel) -> None:
        """Re-route the channel's multicast tree after a membership change."""
        if channel.connection_id is not None:
            self.net.disconnect(channel.connection_id)
            channel.connection_id = None
        if not channel.viewers:
            return
        connection = MulticastConnection(
            channel.source,
            [Endpoint(port, wavelength) for port, wavelength in channel.viewers.items()],
        )
        # Theorem 1 guarantees this cannot block.
        channel.connection_id = self.net.connect(connection)

    def join(self, channel: Channel, port: int, rng: random.Random) -> bool:
        """Subscriber ``port`` tunes a free receiver to ``channel``."""
        if port in channel.viewers:
            return False
        free = [w for w in range(WAVELENGTHS) if w not in self.busy_receivers[port]]
        if not free:
            self.rejected_by_capacity += 1  # the NODE is out of receivers
            return False
        wavelength = rng.choice(free)
        channel.viewers[port] = wavelength
        self.busy_receivers[port].add(wavelength)
        self._rebuild(channel)
        self.joins += 1
        return True

    def leave(self, channel: Channel, port: int) -> bool:
        wavelength = channel.viewers.pop(port, None)
        if wavelength is None:
            return False
        self.busy_receivers[port].discard(wavelength)
        self._rebuild(channel)
        self.leaves += 1
        return True


def main() -> None:
    rng = random.Random(SEED)
    head_end = VodHeadEnd()
    subscriber_ports = list(range(SERVER_PORTS, head_end.n_ports))

    print("Video-on-demand over a nonblocking WDM multicast switch")
    print("=" * 70)
    print(f"switch: {head_end.net.topology.describe()}")
    print(
        f"channels: {CHANNELS} ({SERVER_PORTS} server ports x "
        f"{WAVELENGTHS} transmitter wavelengths)"
    )
    print(f"subscribers: {len(subscriber_ports)} ports x {WAVELENGTHS} receivers")
    print()

    # Zipf-ish channel popularity: channel 0 is the big game.
    weights = [1.0 / (index + 1) for index in range(CHANNELS)]

    for _ in range(EVENTS):
        channel = rng.choices(head_end.channels, weights=weights)[0]
        port = rng.choice(subscriber_ports)
        if port in channel.viewers and rng.random() < 0.6:
            head_end.leave(channel, port)
        else:
            head_end.join(channel, port, rng)

    print("after", EVENTS, "membership events:")
    print(f"  joins:  {head_end.joins}")
    print(f"  leaves: {head_end.leaves}")
    print(
        f"  joins refused by the switch fabric: {head_end.net.blocks} "
        "(Theorem 1 guarantee: must be 0)"
    )
    print(
        f"  joins refused because a node ran out of receivers: "
        f"{head_end.rejected_by_capacity} (node limit, not switch blocking)"
    )
    assert head_end.net.blocks == 0

    print()
    print("most-watched channels right now:")
    ranked = sorted(
        head_end.channels, key=lambda c: len(c.viewers), reverse=True
    )[:5]
    for channel in ranked:
        tree = head_end.net.active_connections.get(channel.connection_id)
        middles = tree.middles_used if tree else ()
        print(
            f"  channel {channel.channel_id:2d} "
            f"(server {channel.source}): {len(channel.viewers):2d} viewers, "
            f"tree through middle switches {list(middles)}"
        )
    utilization = head_end.net.link_utilization()
    print()
    print(
        f"internal fiber utilization: "
        f"{utilization['input_to_middle']:.1%} (stage 1-2), "
        f"{utilization['middle_to_output']:.1%} (stage 2-3)"
    )


if __name__ == "__main__":
    main()
