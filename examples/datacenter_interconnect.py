#!/usr/bin/env python3
"""Design-space exploration for a WDM datacenter interconnect.

A systems-design exercise on top of the paper's analysis: given a port
count and a wavelength budget, which multicast model, implementation
(crossbar vs three-stage vs recursive), and topology parameters should
an interconnect use?

The script sweeps the design space with the paper's cost model
(crosspoints = SOA gates, converters counted separately, Table 1 /
Table 2 / Theorem 1) and prints a recommendation per requirement
profile, including where the crossbar-to-multistage crossover falls for
the chosen wavelength count.

Run with::

    python examples/datacenter_interconnect.py [--ports 1024] [--wavelengths 8]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.figures import find_crossover
from repro.analysis.tradeoffs import compare_models, dominated_models
from repro.core.capacity import log10_any_multicast_capacity
from repro.core.cost import crossbar_converters, crossbar_crosspoints
from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design
from repro.multistage.recursive import best_recursive_design

# Rough relative prices (an SOA gate = 1): converters are the expensive
# active part, as the paper stresses.
CONVERTER_PRICE = 40.0


@dataclass
class Option:
    """One candidate implementation of the interconnect."""

    label: str
    model: MulticastModel
    crosspoints: int
    converters: int
    stages: int
    detail: str

    @property
    def price(self) -> float:
        """Gate-equivalent price with expensive converters."""
        return self.crosspoints + CONVERTER_PRICE * self.converters


def enumerate_options(n_ports: int, k: int) -> list[Option]:
    options: list[Option] = []
    for model in MulticastModel:
        options.append(
            Option(
                label=f"{model.value}/crossbar",
                model=model,
                crosspoints=crossbar_crosspoints(model, n_ports, k),
                converters=crossbar_converters(model, n_ports, k),
                stages=1,
                detail="flat crossbar",
            )
        )
        design = optimal_design(n_ports, k, model)
        options.append(
            Option(
                label=f"{model.value}/3-stage",
                model=model,
                crosspoints=design.cost.crosspoints,
                converters=design.cost.converters,
                stages=3,
                detail=f"n={design.n} r={design.r} m={design.m} x={design.x}",
            )
        )
        recursive = best_recursive_design(n_ports, k, model)
        options.append(
            Option(
                label=f"{model.value}/recursive",
                model=model,
                crosspoints=recursive.crosspoints,
                converters=recursive.converters,
                stages=recursive.stages,
                detail=f"{recursive.stages} stages",
            )
        )
    return options


def print_catalog(n_ports: int, k: int, options: list[Option]) -> None:
    # MSDW's exact capacity is a big polynomial sum; evaluate the
    # capacity column on a bounded slice so huge catalogs stay instant.
    capacity_ports = min(n_ports, 64)
    print(f"design catalog for N={n_ports}, k={k} "
          f"(converter price = {CONVERTER_PRICE:.0f} gates; capacity "
          f"column evaluated at N={capacity_ports}):")
    header = (
        f"  {'option':<18} {'gates':>12} {'converters':>10} "
        f"{'price':>14} {'log10 cap':>10}  detail"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for option in sorted(options, key=lambda o: o.price):
        capacity = log10_any_multicast_capacity(
            option.model, capacity_ports, k
        )
        print(
            f"  {option.label:<18} {option.crosspoints:>12} "
            f"{option.converters:>10} {option.price:>14.0f} "
            f"{capacity:>10.0f}  {option.detail}"
        )


def recommend(n_ports: int, k: int, options: list[Option]) -> None:
    print()
    print("recommendations:")
    # Domination is decided by the model structure, not the size; use a
    # bounded slice so MSDW's exact capacity sum stays instant.
    dominated = dominated_models(min(n_ports, 16), k)
    if dominated:
        names = ", ".join(model.value for model in dominated)
        print(f"  - skip {names}: dominated (same cost as MAW, less capacity).")

    viable = [o for o in options if o.model not in dominated]
    cheapest = min(viable, key=lambda o: o.price)
    print(f"  - cheapest viable build: {cheapest.label} "
          f"({cheapest.price:,.0f} gate-equivalents; {cheapest.detail}).")

    strongest = [o for o in viable if o.model is MulticastModel.MAW]
    best_maw = min(strongest, key=lambda o: o.price)
    print(
        f"  - full wavelength flexibility: {best_maw.label} "
        f"({best_maw.price:,.0f} gate-equivalents)."
    )

    rows = {c.model: c for c in compare_models(min(n_ports, 8), k)}
    gain = (
        rows[MulticastModel.MAW].capacity.log10_any
        - rows[MulticastModel.MSW].capacity.log10_any
    )
    print(
        f"  - MAW buys ~10^{gain:.0f}x more assignments than MSW on an "
        f"8-port slice; decide if that flexibility is worth k-fold gates "
        f"plus {n_ports * k} converters."
    )

    crossover = find_crossover(k, MulticastModel.MSW)
    if crossover:
        side = "beyond" if n_ports >= crossover.n_ports else "below"
        print(
            f"  - crossbar/multistage crossover for MSW at k={k}: "
            f"N={crossover.n_ports} (your N={n_ports} is {side} it)."
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ports", type=int, default=1024)
    parser.add_argument("--wavelengths", type=int, default=8)
    args = parser.parse_args()

    print("WDM datacenter interconnect design explorer")
    print("=" * 70)
    options = enumerate_options(args.ports, args.wavelengths)
    print_catalog(args.ports, args.wavelengths, options)
    recommend(args.ports, args.wavelengths, options)


if __name__ == "__main__":
    main()
