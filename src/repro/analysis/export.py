"""CSV / JSON exporters for every regenerated data series.

Downstream users typically want the raw numbers behind the tables and
curves (to plot with their own tooling).  This module flattens the
analysis dataclasses into row dictionaries and writes them as CSV or
JSON, with a stable column order so diffs against regenerated data are
meaningful.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

__all__ = ["flatten", "to_csv", "to_json", "write_series"]


def flatten(record: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten a dataclass/mapping into a single-level row dict.

    Nested dataclasses and mappings are expanded with dotted keys; enums
    become their ``value``; tuples/lists of scalars are joined with
    ``;`` so the row stays CSV-friendly.
    """
    if dataclasses.is_dataclass(record) and not isinstance(record, type):
        items: Iterable[tuple[str, Any]] = (
            (field.name, getattr(record, field.name))
            for field in dataclasses.fields(record)
        )
    elif isinstance(record, Mapping):
        items = record.items()
    else:
        raise TypeError(f"cannot flatten {type(record).__name__}")

    row: dict[str, Any] = {}
    for key, value in items:
        full_key = f"{prefix}{key}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            row.update(flatten(value, prefix=f"{full_key}."))
        elif isinstance(value, Mapping):
            row.update(flatten(value, prefix=f"{full_key}."))
        elif isinstance(value, (list, tuple, frozenset, set)):
            row[full_key] = ";".join(str(v) for v in sorted(value, key=str))
        elif hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
            row[full_key] = value.value  # enums
        else:
            row[full_key] = value
    return row


def to_csv(records: Sequence[Any]) -> str:
    """Render records (dataclasses or mappings) as a CSV string.

    The header is the union of all rows' keys, in first-seen order.
    """
    rows = [flatten(record) for record in records]
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_json(records: Sequence[Any], *, indent: int = 2) -> str:
    """Render records as a JSON array of flattened row objects."""
    return json.dumps([flatten(record) for record in records], indent=indent)


def write_series(
    records: Sequence[Any],
    path: str | Path,
) -> Path:
    """Write records to ``path``; format chosen by suffix (.csv / .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        payload = to_csv(records)
    elif path.suffix == ".json":
        payload = to_json(records)
    else:
        raise ValueError(
            f"unsupported export suffix {path.suffix!r}; use .csv or .json"
        )
    path.write_text(payload, encoding="utf-8")
    return path
