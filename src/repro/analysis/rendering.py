"""Plain-text table rendering for the CLI, examples and benchmarks."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Args:
        headers: column titles.
        rows: row cells; converted with ``str``.
        title: optional title line above the table.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(separator)
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
