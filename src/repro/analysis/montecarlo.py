"""Monte-Carlo blocking probability of three-stage networks.

The paper's theorems assert zero blocking above the ``m`` bound; this
module measures what happens *below* it: drive the network with random
dynamic multicast traffic and estimate the per-request blocking
probability as a function of ``m``.  The expected shape -- the implied
"figure" X3 of DESIGN.md -- is a blocking probability that decreases
with ``m`` and hits exactly zero at (in practice, somewhat before) the
theorem bound.

Blocked requests are dropped (the optical-domain behaviour the paper
motivates: no optical RAM to buffer them) and the simulation proceeds.

Determinism and parallelism
---------------------------

Each replication owns one :class:`random.Random` stream created from
its seed and threaded end-to-end through the traffic generator, so a
(seed, m, config) cell is a pure function of its arguments.  Cells are
fanned out through :class:`repro.perf.ParallelSweeper` and merged in
seed order, which makes every :class:`BlockingEstimate` bit-identical
for any ``jobs`` value -- pooled seeds are summed, never interleaved.

Because every cell is a pure function of its arguments, cells are also
*cacheable*: pass a :class:`repro.perf.cache.ResultCache` and each
(seed, m, config) replication -- and, in adversarial mode, each
(m, adversary-seed) search -- is looked up before being computed and
stored afterwards.  A re-run of an interrupted or repeated sweep then
recomputes only the missing cells, with results bit-identical to a
cold run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.models import Construction, MulticastModel
from repro.multistage.adversary import search_blocking_state
from repro.multistage.network import ThreeStageNetwork
from repro.perf.sweeper import ParallelSweeper, WorkUnit
from repro.switching.generators import dynamic_traffic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.perf.cache import ResultCache

__all__ = ["BlockingEstimate", "blocking_probability", "blocking_vs_m"]


def _traffic_key(
    cache: "ResultCache",
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    seed: int,
    max_fanout: int | None,
) -> str:
    return cache.key(
        "traffic_cell",
        dict(
            n=n, r=r, m=m, k=k, construction=construction, model=model,
            x=x, steps=steps, seed=seed, max_fanout=max_fanout,
        ),
    )


def _adversary_key(
    cache: "ResultCache",
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    seed: int,
) -> str:
    return cache.key(
        "adversary_cell",
        dict(
            n=n, r=r, m=m, k=k, construction=construction, model=model,
            x=x, seed=seed,
        ),
    )


@dataclass(frozen=True)
class BlockingEstimate:
    """Blocking statistics of one configuration under random traffic."""

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    attempts: int
    blocked: int

    @property
    def probability(self) -> float:
        """Fraction of setup attempts refused."""
        return self.blocked / self.attempts if self.attempts else 0.0


def _traffic_cell(
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    seed: int,
    max_fanout: int | None,
) -> tuple[int, int]:
    """One replication: ``(attempts, blocked)`` for one traffic seed.

    The seed's single ``random.Random`` stream drives the traffic
    generator end-to-end; nothing else in the cell draws randomness, so
    the result depends only on the arguments (the parallel-safety
    contract of the sweep engine).
    """
    rng = random.Random(seed)
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    attempts = 0
    blocked = 0
    live: dict[int, int] = {}
    dropped: set[int] = set()
    for event in dynamic_traffic(
        model,
        n * r,
        k,
        steps=steps,
        seed=rng,
        max_fanout=max_fanout,
    ):
        if event.kind == "setup":
            attempts += 1
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return attempts, blocked


def blocking_probability(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 2000,
    seeds: tuple[int, ...] = (0, 1, 2),
    max_fanout: int | None = None,
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
) -> BlockingEstimate:
    """Estimate blocking probability under random dynamic traffic.

    Requests come from :func:`repro.switching.generators.dynamic_traffic`;
    blocked setups are dropped (their endpoints stay free for later
    requests, mirroring loss-mode optical switching).

    Args:
        n, r, m, k: topology.
        construction, model, x: network configuration.
        steps: traffic events per seed.
        seeds: independent replications (results are pooled).  Each seed
            owns one RNG stream end-to-end and runs a fresh network, so
            the pooled estimate is deterministic for any ``jobs``.
        max_fanout: cap on destinations per request.
        jobs: worker processes for the per-seed sweep (1 = in-process,
            ``"auto"`` = adapt to the host).
        cache: optional per-cell result cache (incremental re-runs).
    """
    with ParallelSweeper(jobs) as sweeper:
        results = sweeper.run(
            (
                WorkUnit(
                    unit_id=seed,
                    fn=_traffic_cell,
                    args=(
                        n, r, m, k, construction, model, x, steps, seed,
                        max_fanout,
                    ),
                    cache_key=(
                        None
                        if cache is None
                        else _traffic_key(
                            cache, n, r, m, k, construction, model, x,
                            steps, seed, max_fanout,
                        )
                    ),
                )
                for seed in seeds
            ),
            cache=cache,
        )
    attempts = sum(result.value[0] for result in results)
    blocked = sum(result.value[1] for result in results)
    return BlockingEstimate(
        n=n,
        r=r,
        m=m,
        k=k,
        construction=construction,
        model=model,
        x=x,
        attempts=attempts,
        blocked=blocked,
    )


def _adversary_seeds(m: int, count: int) -> list[int]:
    """The deterministic adversary-seed schedule for one ``m`` point."""
    rng = random.Random(m)
    return [rng.randrange(10**9) for _ in range(count)]


def blocking_vs_m(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 1500,
    seeds: tuple[int, ...] = (0, 1, 2),
    adversarial: bool = False,
    adversary_seeds: int = 20,
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
) -> list[BlockingEstimate]:
    """The blocking-probability-vs-``m`` curve (implied figure X3).

    With ``adversarial=True``, each point additionally runs the
    randomized adversary of
    :func:`repro.multistage.adversary.search_blocking_state`; if the
    adversary finds a witness at an ``m`` where random traffic saw no
    blocking, one synthetic blocked attempt is recorded so the curve
    reflects *worst-case* rather than average-case behaviour.

    All (m, seed) traffic cells -- and, in adversarial mode, all
    (m, adversary-seed) cells -- are independent work units fanned out
    through the sweep engine; with ``jobs > 1`` (or ``"auto"``) they
    run concurrently and merge by cell id, so the curve is
    bit-identical to ``jobs=1`` (serial short-circuits skip redundant
    adversary cells but pick the same first witness).  Both sweep
    stages share one sweeper, so a parallel run pays the pool spawn
    cost once.  With ``cache``, every cell is content-addressed in the
    given :class:`~repro.perf.cache.ResultCache`, so re-runs only
    compute cells missing from the cache.
    """
    with ParallelSweeper(jobs) as sweeper:
        cells = sweeper.run(
            (
                WorkUnit(
                    unit_id=(m, seed),
                    fn=_traffic_cell,
                    args=(n, r, m, k, construction, model, x, steps, seed, None),
                    cache_key=(
                        None
                        if cache is None
                        else _traffic_key(
                            cache, n, r, m, k, construction, model, x,
                            steps, seed, None,
                        )
                    ),
                )
                for m in m_values
                for seed in seeds
            ),
            cache=cache,
        )
        by_cell = {result.unit_id: result.value for result in cells}
        estimates = []
        for m in m_values:
            attempts = sum(by_cell[(m, seed)][0] for seed in seeds)
            blocked = sum(by_cell[(m, seed)][1] for seed in seeds)
            estimates.append(
                BlockingEstimate(
                    n=n,
                    r=r,
                    m=m,
                    k=k,
                    construction=construction,
                    model=model,
                    x=x,
                    attempts=attempts,
                    blocked=blocked,
                )
            )
        if not adversarial:
            return estimates

        needs_adversary = [
            (index, estimate)
            for index, estimate in enumerate(estimates)
            if estimate.blocked == 0
        ]
        witnessed: set[int] = set()
        if jobs == 1:
            # Serial short-circuit: stop at the first witness per m, exactly
            # like the pre-sweeper implementation.
            for index, estimate in needs_adversary:
                for seed in _adversary_seeds(estimate.m, adversary_seeds):
                    key = (
                        None
                        if cache is None
                        else _adversary_key(
                            cache, n, r, estimate.m, k, construction,
                            model, x, seed,
                        )
                    )
                    if key is not None:
                        hit, witness = cache.lookup(key)
                        if not hit:
                            witness = search_blocking_state(
                                n, r, estimate.m, k,
                                construction=construction, model=model,
                                x=x, seed=seed,
                            )
                            cache.put(key, witness)
                    else:
                        witness = search_blocking_state(
                            n, r, estimate.m, k,
                            construction=construction, model=model,
                            x=x, seed=seed,
                        )
                    if witness is not None:
                        witnessed.add(index)
                        break
        else:
            units = [
                WorkUnit(
                    unit_id=(index, attempt),
                    fn=search_blocking_state,
                    args=(n, r, estimate.m, k),
                    kwargs=dict(
                        construction=construction, model=model, x=x, seed=seed
                    ),
                    cache_key=(
                        None
                        if cache is None
                        else _adversary_key(
                            cache, n, r, estimate.m, k, construction,
                            model, x, seed,
                        )
                    ),
                )
                for index, estimate in needs_adversary
                for attempt, seed in enumerate(
                    _adversary_seeds(estimate.m, adversary_seeds)
                )
            ]
            found = sweeper.run_keyed(units, cache=cache)
            for index, estimate in needs_adversary:
                # First witness in schedule order == the serial short-circuit's.
                if any(
                    found[(index, attempt)].value is not None
                    for attempt in range(adversary_seeds)
                ):
                    witnessed.add(index)
    for index in witnessed:
        estimate = estimates[index]
        estimates[index] = BlockingEstimate(
            n=n,
            r=r,
            m=estimate.m,
            k=k,
            construction=construction,
            model=model,
            x=x,
            attempts=estimate.attempts + 1,
            blocked=1,
        )
    return estimates
