"""Monte-Carlo blocking probability of three-stage networks.

The paper's theorems assert zero blocking above the ``m`` bound; this
module measures what happens *below* it: drive the network with random
dynamic multicast traffic and estimate the per-request blocking
probability as a function of ``m``.  The expected shape -- the implied
"figure" X3 of DESIGN.md -- is a blocking probability that decreases
with ``m`` and hits exactly zero at (in practice, somewhat before) the
theorem bound.

Blocked requests are dropped (the optical-domain behaviour the paper
motivates: no optical RAM to buffer them) and the simulation proceeds.

Determinism and parallelism
---------------------------

Each replication owns one :class:`random.Random` stream created from
its seed and threaded end-to-end through the traffic generator, so a
(seed, m, config) cell is a pure function of its arguments.  Cells are
fanned out through :class:`repro.perf.ParallelSweeper` and merged in
seed order, which makes every :class:`BlockingEstimate` bit-identical
for any ``jobs`` value -- pooled seeds are summed, never interleaved.

Because every cell is a pure function of its arguments, cells are also
*cacheable*: pass a :class:`repro.perf.cache.ResultCache` and each
(seed, m, config) replication -- and, in adversarial mode, each
(m, adversary-seed) search -- is looked up before being computed and
stored afterwards.  A re-run of an interrupted or repeated sweep then
recomputes only the missing cells, with results bit-identical to a
cold run.
"""

from __future__ import annotations

import json
import math
import random
import warnings
from dataclasses import dataclass, field, replace
from statistics import NormalDist
from typing import TYPE_CHECKING, Any

from repro import obs as _obs
from repro.core.models import (
    Construction,
    MulticastModel,
    parse_construction,
    parse_multicast_model,
)
from repro.engine.fabrics import get_fabric
from repro.multistage.adversary import search_blocking_state
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import get_routing_kernel
from repro.obs.meta import ResultMeta
from repro.perf.batch import simulate_batch
from repro.perf.sweeper import ParallelSweeper, WorkUnit
from repro.switching.generators import dynamic_traffic, stream_rng
from repro.workloads.keys import key_fragment

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.perf.cache import ResultCache
    from repro.workloads.base import WorkloadConfig

__all__ = [
    "AdaptiveInfo",
    "BlockingEstimate",
    "blocking_probability",
    "blocking_vs_m",
]


def _z_value(level: float) -> float:
    """Two-sided normal quantile for a confidence ``level`` in (0, 1)."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    return NormalDist().inv_cdf((1.0 + level) / 2.0)


@dataclass(frozen=True)
class AdaptiveInfo:
    """How an adaptive (sequentially stopped) estimate was sampled.

    Attached to :attr:`BlockingEstimate.adaptive` by
    :mod:`repro.perf.adaptive`; excluded from estimate equality the same
    way ``meta`` is, so a pooled adaptive estimate can compare equal to
    a fixed-budget estimate with the same numbers.

    Attributes:
        rounds: sampling rounds this cell ran before stopping.
        replications: independent replications pooled (antithetic twins
            count individually).
        events: total traffic events simulated
            (``replications x steps``) -- the budget the fixed-budget
            comparison in ``bench_perf.py`` measures against.
        converged: whether the CI target was met (False means the
            round cap stopped the cell first).
        target_half_width: the requested half-width.
        relative: whether the target is relative to the point estimate.
        level: the confidence level of the stopping rule.
    """

    rounds: int
    replications: int
    events: int
    converged: bool
    target_half_width: float
    relative: bool
    level: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "replications": self.replications,
            "events": self.events,
            "converged": self.converged,
            "target_half_width": self.target_half_width,
            "relative": self.relative,
            "level": self.level,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AdaptiveInfo":
        return cls(**data)


def _traffic_key(
    cache: "ResultCache",
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    seed: int,
    max_fanout: int | None,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> str:
    params = dict(
        n=n, r=r, m=m, k=k, construction=construction, model=model,
        x=x, steps=steps, seed=seed, max_fanout=max_fanout,
    )
    # The workload token joins the key only when non-uniform: uniform
    # runs keep their legacy addresses (warm caches stay warm), while a
    # non-uniform run can never collide with them -- the cross-workload
    # cache-poisoning guarantee.
    token = None if workload is None else workload.token()
    if token is not None:
        params["workload"] = token
    # The fabric token follows the same anchor rule: the Clos (token
    # None) keeps every legacy address, any other fabric model gets its
    # own -- Clos results can never be served for another topology.
    fabric_token = get_fabric(fabric).token()
    if fabric_token is not None:
        params["fabric"] = fabric_token
    return cache.key("traffic_cell", params)


def _adversary_key(
    cache: "ResultCache",
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    seed: int,
) -> str:
    return cache.key(
        "adversary_cell",
        dict(
            n=n, r=r, m=m, k=k, construction=construction, model=model,
            x=x, seed=seed,
        ),
    )


@dataclass(frozen=True)
class BlockingEstimate:
    """Blocking statistics of one configuration under random traffic.

    ``meta`` is the shared :class:`repro.obs.meta.ResultMeta` provenance
    envelope (code version, routing kernel, execution plan, obs
    summary).  It is excluded from equality/hashing -- two estimates
    with identical numbers compare equal even if one ran serial and the
    other parallel, preserving the bit-identity contracts.  ``adaptive``
    (how a sequentially stopped estimate was sampled) is excluded for
    the same reason: the pooled numbers, not the sampling path, define
    identity.

    The estimate carries first-class interval statistics: ``stderr``
    (binomial normal-approximation), ``ci(level)`` (the Wilson score
    interval, well behaved at and near ``p = 0`` -- exactly where the
    blocking curves live), ``half_width(level)`` (the Wilson interval's
    half-width, the quantity the adaptive driver's stopping rule
    targets), and ``merged``/``pooled`` for combining independent
    estimates of the same configuration.
    """

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    attempts: int
    blocked: int
    meta: ResultMeta | None = field(default=None, compare=False, repr=False)
    adaptive: AdaptiveInfo | None = field(default=None, compare=False, repr=False)

    @property
    def probability(self) -> float:
        """Fraction of setup attempts refused."""
        return self.blocked / self.attempts if self.attempts else 0.0

    @property
    def stderr(self) -> float:
        """Normal-approximation standard error ``sqrt(p(1-p)/n)``.

        ``inf`` with no attempts -- an unsampled estimate carries no
        information, and ``inf`` keeps stopping rules conservative.
        """
        if not self.attempts:
            return math.inf
        p = self.probability
        return math.sqrt(p * (1.0 - p) / self.attempts)

    def ci(self, level: float = 0.95) -> tuple[float, float]:
        """Wilson score confidence interval at ``level``.

        Unlike the Wald interval, Wilson never collapses to a width-zero
        interval at ``p = 0`` (its half-width shrinks like ``z^2 / n``),
        so a cell that has seen no blocking still reports honest
        uncertainty -- the property that lets the adaptive driver stop
        near-zero cells only once they are *provably* near zero.
        """
        if not self.attempts:
            return (0.0, 1.0)
        z = _z_value(level)
        n = self.attempts
        p = self.probability
        z2 = z * z
        denom = 1.0 + z2 / n
        center = (p + z2 / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(
            p * (1.0 - p) / n + z2 / (4.0 * n * n)
        )
        return (max(0.0, center - half), min(1.0, center + half))

    def half_width(self, level: float = 0.95) -> float:
        """Half the width of :meth:`ci` (``inf`` with no attempts)."""
        if not self.attempts:
            return math.inf
        low, high = self.ci(level)
        return (high - low) / 2.0

    def merged(self, other: "BlockingEstimate") -> "BlockingEstimate":
        """Pool this estimate with an independent one of the same cell.

        Attempts and blocked counts are summed, so merging the
        per-round estimates of a split run reproduces the single-run
        estimate *exactly* (integer sums carry no rounding).  ``meta``
        and ``adaptive`` describe a single run's provenance and do not
        survive a merge.
        """
        mine = (self.n, self.r, self.m, self.k, self.construction,
                self.model, self.x)
        theirs = (other.n, other.r, other.m, other.k, other.construction,
                  other.model, other.x)
        if mine != theirs:
            raise ValueError(
                f"cannot merge estimates of different cells: {mine} vs {theirs}"
            )
        return BlockingEstimate(
            n=self.n, r=self.r, m=self.m, k=self.k,
            construction=self.construction, model=self.model, x=self.x,
            attempts=self.attempts + other.attempts,
            blocked=self.blocked + other.blocked,
        )

    @classmethod
    def pooled(cls, estimates: "list[BlockingEstimate]") -> "BlockingEstimate":
        """Merge a non-empty list of independent same-cell estimates."""
        if not estimates:
            raise ValueError("cannot pool zero estimates")
        result = estimates[0]
        for estimate in estimates[1:]:
            result = result.merged(estimate)
        return result

    def to_json(self) -> str:
        """Canonical JSON; inverse of :meth:`from_json`.

        Alongside the defining counts, the payload carries the derived
        interval statistics (``stderr``, ``ci95``, ``half_width95``) so
        downstream consumers need no recomputation, plus the
        ``adaptive`` sampling record when present.  ``from_json``
        ignores the derived fields (they are functions of the counts)
        and tolerates their absence -- payloads written before they
        existed still load.
        """
        ci_low, ci_high = self.ci(0.95)
        half = self.half_width(0.95)
        return json.dumps(
            {
                "n": self.n, "r": self.r, "m": self.m, "k": self.k,
                "construction": self.construction.name,
                "model": self.model.name,
                "x": self.x,
                "attempts": self.attempts,
                "blocked": self.blocked,
                "stderr": self.stderr if self.attempts else None,
                "ci95": [ci_low, ci_high],
                "half_width95": half if self.attempts else None,
                "adaptive": (
                    self.adaptive.as_dict()
                    if self.adaptive is not None
                    else None
                ),
                "meta": self.meta.to_json() if self.meta is not None else None,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, payload: str) -> "BlockingEstimate":
        """Rebuild an estimate (meta included) from :meth:`to_json` output.

        Backward compatible with payloads written before the interval
        statistics and ``adaptive`` record existed: missing keys simply
        yield an estimate without an adaptive record (the interval
        statistics are always recomputed from the counts).
        """
        data = json.loads(payload)
        meta = data.get("meta")
        adaptive = data.get("adaptive")
        return cls(
            n=data["n"], r=data["r"], m=data["m"], k=data["k"],
            construction=parse_construction(data["construction"]),
            model=parse_multicast_model(data["model"]),
            x=data["x"],
            attempts=data["attempts"],
            blocked=data["blocked"],
            meta=ResultMeta.from_json(meta) if meta is not None else None,
            adaptive=(
                AdaptiveInfo.from_dict(adaptive)
                if adaptive is not None
                else None
            ),
        )


def _traffic_cell(
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    seed: int,
    max_fanout: int | None,
    debug_checks: bool | None = None,
    antithetic: bool = False,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> tuple[int, int]:
    """One replication: ``(attempts, blocked)`` for one traffic seed.

    The seed's single ``random.Random`` stream drives the traffic
    generator end-to-end; nothing else in the cell draws randomness, so
    the result depends only on the arguments (the parallel-safety
    contract of the sweep engine).  With ``antithetic=True`` the stream
    is the seed's antithetic mirror
    (:class:`repro.switching.generators.AntitheticRandom`) -- the
    variance-reduction twin the adaptive driver pairs with the plain
    stream.  ``workload`` swaps in a registered traffic model from
    :mod:`repro.workloads` (None = the uniform generator, the
    historical behaviour); its identity must accompany the cell in any
    cache key (see :func:`_traffic_key`).  ``debug_checks`` re-verifies
    the network invariants after every event; it cannot change the
    result, so it is deliberately absent from the cell's cache key.
    ``fabric`` selects the registered fabric model; the serial
    ``ThreeStageNetwork`` below *is* the Clos admission program, so any
    other fabric delegates to the batch engine (which replays the same
    compiled stream through the same shared kernels, bit-identically).
    """
    if fabric != "clos":
        return simulate_batch(
            n, r, k, construction, model, x, steps, max_fanout, seed,
            (m,), "auto", antithetic, workload, fabric,
        )[0][1]
    _obs.inc("mc.cells")
    rng = stream_rng(seed, antithetic)
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x,
        debug_checks=debug_checks,
    )
    attempts = 0
    blocked = 0
    live: dict[int, int] = {}
    dropped: set[int] = set()
    if workload is None:
        events = dynamic_traffic(
            model, n * r, k, steps=steps, seed=rng, max_fanout=max_fanout
        )
    else:
        events = workload.events(
            model, n * r, k, steps=steps, rng=rng, max_fanout=max_fanout
        )
    for event in events:
        if event.kind == "setup":
            attempts += 1
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return attempts, blocked


def _run_batched_cells(
    sweeper: ParallelSweeper,
    cache: "ResultCache | None",
    cells: list[tuple[int, int]],
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    batch: int | None,
    backend: str = "auto",
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> dict[tuple[int, int], tuple[int, int]]:
    """All ``(m, seed)`` traffic cells through the lockstep batch engine.

    The ``batched`` kernel's replacement for the cell-per-work-unit
    sweep: cells sharing a seed share one compiled traffic stream and
    one :func:`repro.perf.batch.simulate_batch` work unit (so the
    sweeper fans out batch-per-process), and each cell's result still
    lands in ``cache`` under the same per-cell traffic key -- a batched
    sweep warms the cache for cell-granular re-runs and vice versa
    (kernel-tagged keys keep the two pipelines' entries separate).
    ``batch`` caps replications per work unit; None packs each seed's
    whole ``m`` column into one unit.  Each unit's fabric state runs on
    ``backend`` as resolved by
    :func:`repro.engine.backends.resolve_backend` (``"auto"`` honours
    ``WDM_REPRO_BATCH_BACKEND``, then prefers the fused ``numba``
    kernel when usable); every backend drives the same
    :mod:`repro.engine` kernels, so results are bit-identical to this
    serial loop -- which is why cache keys ignore the backend entirely.
    """
    results: dict[tuple[int, int], tuple[int, int]] = {}
    keys: dict[tuple[int, int], str] = {}
    pending: list[tuple[int, int]] = []
    for cell in cells:
        m, seed = cell
        if cache is not None:
            key = _traffic_key(
                cache, n, r, m, k, construction, model, x, steps, seed,
                max_fanout, workload, fabric,
            )
            keys[cell] = key
            hit, value = cache.lookup(key)
            if hit:
                results[cell] = tuple(value)
                continue
        pending.append(cell)
    by_seed: dict[int, list[int]] = {}
    for m, seed in pending:
        by_seed.setdefault(seed, []).append(m)
    chunk = None if batch is None else max(1, batch)
    units = []
    for seed in sorted(by_seed):
        ms = by_seed[seed]
        size = len(ms) if chunk is None else chunk
        for start in range(0, len(ms), size):
            units.append(
                WorkUnit(
                    unit_id=(seed, start),
                    fn=simulate_batch,
                    args=(
                        n, r, k, construction, model, x, steps, max_fanout,
                        seed, tuple(ms[start : start + size]), backend,
                        False, workload, fabric,
                    ),
                )
            )
    for unit_result in sweeper.run(units):
        seed = unit_result.unit_id[0]
        for m, value in unit_result.value:
            cell = (m, seed)
            results[cell] = value
            if cache is not None:
                cache.put(keys[cell], value)
    return results


def _blocking_probability_impl(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 2000,
    seeds: tuple[int, ...] = (0, 1, 2),
    max_fanout: int | None = None,
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
    executor: str = "process",
    debug_checks: bool | None = None,
    batch: int | None = None,
    backend: str = "auto",
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> BlockingEstimate:
    """Estimate blocking probability under random dynamic traffic.

    Requests come from :func:`repro.switching.generators.dynamic_traffic`;
    blocked setups are dropped (their endpoints stay free for later
    requests, mirroring loss-mode optical switching).

    Args:
        n, r, m, k: topology.
        construction, model, x: network configuration.
        steps: traffic events per seed.
        seeds: independent replications (results are pooled).  Each seed
            owns one RNG stream end-to-end and runs a fresh network, so
            the pooled estimate is deterministic for any ``jobs``.
        max_fanout: cap on destinations per request.
        jobs: worker processes for the per-seed sweep (1 = in-process,
            ``"auto"`` = adapt to the host).
        cache: optional per-cell result cache (incremental re-runs).
        executor: worker pool kind, ``"process"`` or ``"thread"``.
        debug_checks: per-event invariant checking inside each cell
            (slow; result-identical, so cache keys ignore it).
        batch: under ``routing_kernel("batched")``, the cap on lockstep
            replications per work unit (None = one unit per seed);
            ignored by the other kernels, never affects results.
        backend: under ``routing_kernel("batched")``, the fabric-state
            backend for the lockstep replay (``"auto"``, ``"python"``,
            ``"numpy"``, ``"numba"`` or a registered name); ignored by
            the other kernels, never affects results.
        workload: a registered traffic model from
            :mod:`repro.workloads` (None = uniform, the historical
            behaviour); its identity joins every cell cache key.
        fabric: the registered fabric model the traffic replays through
            (:mod:`repro.engine.fabrics`; ``"clos"`` is the paper's
            network and the bit-identical legacy path).  Its token
            joins every non-Clos cell cache key.
    """
    with ParallelSweeper(jobs, executor=executor) as sweeper:
        if get_routing_kernel() == "batched":
            by_cell = _run_batched_cells(
                sweeper, cache, [(m, seed) for seed in seeds],
                n, r, k, construction, model, x, steps, max_fanout, batch,
                backend, workload, fabric,
            )
            values = [by_cell[(m, seed)] for seed in seeds]
        else:
            results = sweeper.run(
                (
                    WorkUnit(
                        unit_id=seed,
                        fn=_traffic_cell,
                        args=(
                            n, r, m, k, construction, model, x, steps, seed,
                            max_fanout, debug_checks, False, workload, fabric,
                        ),
                        cache_key=(
                            None
                            if cache is None
                            else _traffic_key(
                                cache, n, r, m, k, construction, model, x,
                                steps, seed, max_fanout, workload, fabric,
                            )
                        ),
                    )
                    for seed in seeds
                ),
                cache=cache,
            )
            values = [result.value for result in results]
        plan = sweeper.last_plan
    attempts = sum(value[0] for value in values)
    blocked = sum(value[1] for value in values)
    return BlockingEstimate(
        n=n,
        r=r,
        m=m,
        k=k,
        construction=construction,
        model=model,
        x=x,
        attempts=attempts,
        blocked=blocked,
        meta=ResultMeta.capture(plan, workload=workload),
    )


def blocking_probability(
    n: int, r: int, m: int, k: int, **kwargs: Any
) -> BlockingEstimate:
    """Deprecated kwargs entry point; use :func:`repro.api.blocking`.

    Behaves exactly like the pre-``repro.api`` function (same kwargs,
    same pooled numbers), so existing callers and golden values are
    unaffected; it just warns.
    """
    warnings.warn(
        "blocking_probability(**kwargs) is deprecated; use repro.api."
        "blocking(n, r, m, k, traffic=UniformConfig(...), "
        "execution=ExecConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _blocking_probability_impl(n, r, m, k, **kwargs)


def _adversary_seeds(
    m: int, count: int, traffic_key: str | None = None
) -> list[int]:
    """The deterministic adversary-seed schedule for one ``m`` point.

    With a ``traffic_key`` (the new default through :mod:`repro.api`),
    the schedule is derived from the *whole* configuration, so two
    sweeps with equal ``m`` but different topology/model/traffic get
    independent adversary streams.  ``traffic_key=None`` reproduces the
    legacy ``m``-only derivation (kept for the deprecated
    :func:`blocking_vs_m` shim so golden adversarial values never
    shift).
    """
    if traffic_key is None:
        rng = random.Random(m)
    else:
        rng = random.Random(f"{traffic_key}|m={m}")
    return [rng.randrange(10**9) for _ in range(count)]


def _adversary_traffic_key(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
) -> str:
    """Configuration fingerprint mixed into the adversary-seed schedule."""
    return key_fragment(
        dict(n=n, r=r, k=k, construction=construction, model=model, x=x)
    )


def _blocking_vs_m_impl(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 1500,
    seeds: tuple[int, ...] = (0, 1, 2),
    max_fanout: int | None = None,
    adversarial: bool = False,
    adversary_seeds: int = 20,
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
    executor: str = "process",
    debug_checks: bool | None = None,
    legacy_adversary_seeds: bool = False,
    batch: int | None = None,
    backend: str = "auto",
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> list[BlockingEstimate]:
    """The blocking-probability-vs-``m`` curve (implied figure X3).

    With ``adversarial=True``, each point additionally runs the
    randomized adversary of
    :func:`repro.multistage.adversary.search_blocking_state`; if the
    adversary finds a witness at an ``m`` where random traffic saw no
    blocking, one synthetic blocked attempt is recorded so the curve
    reflects *worst-case* rather than average-case behaviour.

    All (m, seed) traffic cells -- and, in adversarial mode, all
    (m, adversary-seed) cells -- are independent work units fanned out
    through the sweep engine; with ``jobs > 1`` (or ``"auto"``) they
    run concurrently and merge by cell id, so the curve is
    bit-identical to ``jobs=1`` (serial short-circuits skip redundant
    adversary cells but pick the same first witness).  Both sweep
    stages share one sweeper, so a parallel run pays the pool spawn
    cost once.  With ``cache``, every cell is content-addressed in the
    given :class:`~repro.perf.cache.ResultCache`, so re-runs only
    compute cells missing from the cache.

    Under ``routing_kernel("batched")`` the traffic stage instead runs
    each seed's whole ``m`` column in lockstep through
    :mod:`repro.perf.batch` (``batch`` caps replications per work unit,
    ``backend`` picks the fabric-state backend) -- per-cell results,
    cache entries and the adversarial stage are bit-identical to the
    bitmask kernel's either way.
    """
    if adversarial and workload is not None and workload.token() is not None:
        raise ValueError(
            "adversarial probing is defined for uniform traffic only "
            "(the adversary constructs its own worst-case states); got "
            f"workload {workload.workload!r}"
        )
    if adversarial and get_fabric(fabric).token() is not None:
        raise ValueError(
            "adversarial probing is defined for the Clos fabric only "
            "(the adversary constructs three-stage worst-case states); "
            f"got fabric {fabric!r}"
        )
    traffic_key = (
        None
        if legacy_adversary_seeds
        else _adversary_traffic_key(n, r, k, construction, model, x)
    )
    with ParallelSweeper(jobs, executor=executor) as sweeper:
        if get_routing_kernel() == "batched":
            by_cell = _run_batched_cells(
                sweeper, cache,
                [(m, seed) for m in m_values for seed in seeds],
                n, r, k, construction, model, x, steps, max_fanout, batch,
                backend, workload, fabric,
            )
        else:
            cells = sweeper.run(
                (
                    WorkUnit(
                        unit_id=(m, seed),
                        fn=_traffic_cell,
                        args=(
                            n, r, m, k, construction, model, x, steps, seed,
                            max_fanout, debug_checks, False, workload, fabric,
                        ),
                        cache_key=(
                            None
                            if cache is None
                            else _traffic_key(
                                cache, n, r, m, k, construction, model, x,
                                steps, seed, max_fanout, workload, fabric,
                            )
                        ),
                    )
                    for m in m_values
                    for seed in seeds
                ),
                cache=cache,
            )
            by_cell = {result.unit_id: result.value for result in cells}
        estimates = []
        for m in m_values:
            attempts = sum(by_cell[(m, seed)][0] for seed in seeds)
            blocked = sum(by_cell[(m, seed)][1] for seed in seeds)
            estimates.append(
                BlockingEstimate(
                    n=n,
                    r=r,
                    m=m,
                    k=k,
                    construction=construction,
                    model=model,
                    x=x,
                    attempts=attempts,
                    blocked=blocked,
                )
            )
        if not adversarial:
            meta = ResultMeta.capture(sweeper.last_plan, workload=workload)
            return [replace(estimate, meta=meta) for estimate in estimates]

        needs_adversary = [
            (index, estimate)
            for index, estimate in enumerate(estimates)
            if estimate.blocked == 0
        ]
        witnessed: set[int] = set()
        if jobs == 1:
            # Serial short-circuit: stop at the first witness per m, exactly
            # like the pre-sweeper implementation.
            for index, estimate in needs_adversary:
                for seed in _adversary_seeds(
                    estimate.m, adversary_seeds, traffic_key
                ):
                    key = (
                        None
                        if cache is None
                        else _adversary_key(
                            cache, n, r, estimate.m, k, construction,
                            model, x, seed,
                        )
                    )
                    if key is not None:
                        hit, witness = cache.lookup(key)
                        if not hit:
                            witness = search_blocking_state(
                                n, r, estimate.m, k,
                                construction=construction, model=model,
                                x=x, seed=seed,
                            )
                            cache.put(key, witness)
                    else:
                        witness = search_blocking_state(
                            n, r, estimate.m, k,
                            construction=construction, model=model,
                            x=x, seed=seed,
                        )
                    if witness is not None:
                        witnessed.add(index)
                        break
        else:
            units = [
                WorkUnit(
                    unit_id=(index, attempt),
                    fn=search_blocking_state,
                    args=(n, r, estimate.m, k),
                    kwargs=dict(
                        construction=construction, model=model, x=x, seed=seed
                    ),
                    cache_key=(
                        None
                        if cache is None
                        else _adversary_key(
                            cache, n, r, estimate.m, k, construction,
                            model, x, seed,
                        )
                    ),
                )
                for index, estimate in needs_adversary
                for attempt, seed in enumerate(
                    _adversary_seeds(estimate.m, adversary_seeds, traffic_key)
                )
            ]
            found = sweeper.run_keyed(units, cache=cache)
            for index, estimate in needs_adversary:
                # First witness in schedule order == the serial short-circuit's.
                if any(
                    found[(index, attempt)].value is not None
                    for attempt in range(adversary_seeds)
                ):
                    witnessed.add(index)
    for index in witnessed:
        estimate = estimates[index]
        estimates[index] = BlockingEstimate(
            n=n,
            r=r,
            m=estimate.m,
            k=k,
            construction=construction,
            model=model,
            x=x,
            attempts=estimate.attempts + 1,
            blocked=1,
        )
    meta = ResultMeta.capture(sweeper.last_plan, workload=workload)
    return [replace(estimate, meta=meta) for estimate in estimates]


def blocking_vs_m(
    n: int, r: int, k: int, m_values: list[int], **kwargs: Any
) -> list[BlockingEstimate]:
    """Deprecated kwargs entry point; use :func:`repro.api.sweep`.

    Behaves exactly like the pre-``repro.api`` function -- including
    the legacy ``m``-only adversary-seed schedule, so golden
    adversarial curves stay reproducible; it just warns.  The typed
    facade derives adversary seeds from the whole configuration (the
    fixed behavior) -- see :func:`repro.api.sweep`.
    """
    warnings.warn(
        "blocking_vs_m(**kwargs) is deprecated; use repro.api.sweep"
        "(n, r, k, m_values, traffic=UniformConfig(...), "
        "execution=ExecConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _blocking_vs_m_impl(
        n, r, k, m_values, legacy_adversary_seeds=True, **kwargs
    )
