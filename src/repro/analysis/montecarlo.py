"""Monte-Carlo blocking probability of three-stage networks.

The paper's theorems assert zero blocking above the ``m`` bound; this
module measures what happens *below* it: drive the network with random
dynamic multicast traffic and estimate the per-request blocking
probability as a function of ``m``.  The expected shape -- the implied
"figure" X3 of DESIGN.md -- is a blocking probability that decreases
with ``m`` and hits exactly zero at (in practice, somewhat before) the
theorem bound.

Blocked requests are dropped (the optical-domain behaviour the paper
motivates: no optical RAM to buffer them) and the simulation proceeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.models import Construction, MulticastModel
from repro.multistage.adversary import search_blocking_state
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic

__all__ = ["BlockingEstimate", "blocking_probability", "blocking_vs_m"]


@dataclass(frozen=True)
class BlockingEstimate:
    """Blocking statistics of one configuration under random traffic."""

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    attempts: int
    blocked: int

    @property
    def probability(self) -> float:
        """Fraction of setup attempts refused."""
        return self.blocked / self.attempts if self.attempts else 0.0


def blocking_probability(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 2000,
    seeds: tuple[int, ...] = (0, 1, 2),
    max_fanout: int | None = None,
) -> BlockingEstimate:
    """Estimate blocking probability under random dynamic traffic.

    Requests come from :func:`repro.switching.generators.dynamic_traffic`;
    blocked setups are dropped (their endpoints stay free for later
    requests, mirroring loss-mode optical switching).

    Args:
        n, r, m, k: topology.
        construction, model, x: network configuration.
        steps: traffic events per seed.
        seeds: independent replications (results are pooled).
        max_fanout: cap on destinations per request.
    """
    attempts = 0
    blocked = 0
    for seed in seeds:
        net = ThreeStageNetwork(
            n, r, m, k, construction=construction, model=model, x=x
        )
        live: dict[int, int] = {}
        dropped: set[int] = set()
        for event in dynamic_traffic(
            model,
            n * r,
            k,
            steps=steps,
            seed=seed,
            max_fanout=max_fanout,
        ):
            if event.kind == "setup":
                attempts += 1
                connection_id = net.try_connect(event.connection)
                if connection_id is None:
                    blocked += 1
                    dropped.add(event.connection_id)
                else:
                    live[event.connection_id] = connection_id
            else:
                if event.connection_id in dropped:
                    dropped.discard(event.connection_id)
                    continue
                net.disconnect(live.pop(event.connection_id))
    return BlockingEstimate(
        n=n,
        r=r,
        m=m,
        k=k,
        construction=construction,
        model=model,
        x=x,
        attempts=attempts,
        blocked=blocked,
    )


def blocking_vs_m(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 1500,
    seeds: tuple[int, ...] = (0, 1, 2),
    adversarial: bool = False,
    adversary_seeds: int = 20,
) -> list[BlockingEstimate]:
    """The blocking-probability-vs-``m`` curve (implied figure X3).

    With ``adversarial=True``, each point additionally runs the
    randomized adversary of
    :func:`repro.multistage.adversary.search_blocking_state`; if the
    adversary finds a witness at an ``m`` where random traffic saw no
    blocking, one synthetic blocked attempt is recorded so the curve
    reflects *worst-case* rather than average-case behaviour.
    """
    estimates = []
    for m in m_values:
        estimate = blocking_probability(
            n,
            r,
            m,
            k,
            construction=construction,
            model=model,
            x=x,
            steps=steps,
            seeds=seeds,
        )
        if adversarial and estimate.blocked == 0:
            rng = random.Random(m)
            for _ in range(adversary_seeds):
                witness = search_blocking_state(
                    n,
                    r,
                    m,
                    k,
                    construction=construction,
                    model=model,
                    x=x,
                    seed=rng.randrange(10**9),
                )
                if witness is not None:
                    estimate = BlockingEstimate(
                        n=n,
                        r=r,
                        m=m,
                        k=k,
                        construction=construction,
                        model=model,
                        x=x,
                        attempts=estimate.attempts + 1,
                        blocked=1,
                    )
                    break
        estimates.append(estimate)
    return estimates
