"""Stochastic offered-load study: blocking vs Erlang load.

The paper motivates nonblocking designs by the absence of optical RAM:
a blocked connection is a *lost* connection.  This module quantifies
the loss a given (possibly under-provisioned) network suffers under a
classical teletraffic workload:

* connection requests arrive as a Poisson process of rate ``lambda``;
* holding times are exponential with mean ``1/mu``;
* offered load is ``rho = lambda / mu`` Erlangs;
* each request picks a free source endpoint uniformly and a random
  legal destination pattern (fanout geometric-ish, capped).

The output is the loss probability vs offered load -- the curve a
switch designer would use to decide how far below the nonblocking bound
they can afford to provision.  At ``m`` >= the corrected bound the loss
is exactly zero at every load, which the tests assert.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection

__all__ = ["LoadPoint", "simulate_offered_load", "loss_vs_load"]


@dataclass(frozen=True)
class LoadPoint:
    """Loss statistics at one offered load.

    Fabric losses (the quantity the nonblocking theorems govern) are
    separated from endpoint-busy losses (the node simply has no free
    transmitter/receiver, which no switch design can fix).
    """

    offered_erlangs: float
    arrivals: int
    fabric_losses: int
    endpoint_losses: int
    mean_carried: float

    @property
    def fabric_loss_probability(self) -> float:
        """Fraction of arrivals refused by the switching fabric."""
        return self.fabric_losses / self.arrivals if self.arrivals else 0.0

    @property
    def endpoint_busy_probability(self) -> float:
        """Fraction of arrivals lost because endpoints were exhausted."""
        return self.endpoint_losses / self.arrivals if self.arrivals else 0.0


def _sample_request(
    net: ThreeStageNetwork, rng: random.Random, max_fanout: int
) -> MulticastConnection | None:
    topo = net.topology
    n_ports, k = topo.n_ports, topo.k
    free_inputs = [
        Endpoint(p, w)
        for p in range(n_ports)
        for w in range(k)
        if not net._input_used[p, w]
    ]
    if not free_inputs:
        return None
    source = rng.choice(free_inputs)
    model = net.model
    if model is MulticastModel.MSW:
        allowed = [source.wavelength]
    elif model is MulticastModel.MSDW:
        allowed = [rng.randrange(k)]
    else:
        allowed = list(range(k))
    per_port: dict[int, list[int]] = {}
    for p in range(n_ports):
        free = [w for w in allowed if not net._output_used[p, w]]
        if free:
            per_port[p] = free
    if not per_port:
        return None
    # Geometric-ish fanout: mostly small, occasionally wide.
    fanout = 1
    while fanout < min(max_fanout, len(per_port)) and rng.random() < 0.45:
        fanout += 1
    ports = rng.sample(sorted(per_port), fanout)
    return MulticastConnection(
        source, [Endpoint(p, rng.choice(per_port[p])) for p in ports]
    )


def simulate_offered_load(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    offered_erlangs: float,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    arrivals: int = 2000,
    seed: int = 0,
    max_fanout: int | None = None,
    selection: str = "greedy",
) -> LoadPoint:
    """Poisson arrivals / exponential holding on one network.

    Args:
        n, r, m, k: topology.
        offered_erlangs: ``arrival_rate * mean_holding``; the arrival
            rate is fixed at 1, the mean holding time at the offered
            load.
        construction, model, x: network configuration.
        arrivals: number of connection attempts to simulate.
        seed: RNG seed (fully deterministic).
        max_fanout: cap on destinations per request (default ``r``).

    Returns:
        The measured :class:`LoadPoint`.
    """
    if offered_erlangs <= 0:
        raise ValueError(f"offered load must be > 0, got {offered_erlangs}")
    rng = random.Random(seed)
    net = ThreeStageNetwork(
        n, r, m, k,
        construction=construction, model=model, x=x,
        selection=selection, selection_seed=seed,
    )
    cap = max_fanout if max_fanout is not None else r
    mean_holding = offered_erlangs  # arrival rate = 1

    clock = 0.0
    departures: list[tuple[float, int]] = []  # (time, connection id)
    fabric_losses = 0
    endpoint_losses = 0
    attempted = 0
    carried_area = 0.0
    last_time = 0.0

    while attempted < arrivals:
        clock += rng.expovariate(1.0)
        # Release everything that departed before this arrival.
        while departures and departures[0][0] <= clock:
            depart_time, cid = heapq.heappop(departures)
            carried_area += len(net.active_connections) * (depart_time - last_time)
            last_time = depart_time
            net.disconnect(cid)
        carried_area += len(net.active_connections) * (clock - last_time)
        last_time = clock

        request = _sample_request(net, rng, cap)
        attempted += 1
        if request is None:
            endpoint_losses += 1  # node out of transmitters/receivers
            continue
        cid = net.try_connect(request)
        if cid is None:
            fabric_losses += 1
            continue
        heapq.heappush(
            departures, (clock + rng.expovariate(1.0 / mean_holding), cid)
        )

    return LoadPoint(
        offered_erlangs=offered_erlangs,
        arrivals=attempted,
        fabric_losses=fabric_losses,
        endpoint_losses=endpoint_losses,
        mean_carried=carried_area / clock if clock > 0 else 0.0,
    )


def loss_vs_load(
    n: int,
    r: int,
    m: int,
    k: int,
    loads: list[float],
    **kwargs,
) -> list[LoadPoint]:
    """The loss-probability-vs-offered-load curve at fixed ``m``."""
    return [
        simulate_offered_load(n, r, m, k, offered_erlangs=load, **kwargs)
        for load in loads
    ]
