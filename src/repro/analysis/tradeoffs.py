"""The cost-performance comparison of Section 2.4.

The paper's qualitative conclusions, made checkable:

1. capacity is strictly increasing in model strength
   (MSW < MSDW < MAW for ``k > 1``; all equal at ``k = 1``);
2. MSDW is *dominated*: it costs exactly as much as MAW (crosspoints
   and converters) but has strictly smaller capacity for ``k > 1`` --
   "the MSDW model is not desirable";
3. MSW vs MAW is a genuine trade-off: MAW buys
   ``log(capacity_MAW) - log(capacity_MSW)`` extra capacity for a
   factor-``k`` crosspoint increase plus ``kN`` converters.

:func:`compare_models` packages the numbers; :func:`dominated_models`
identifies rows beaten on every axis (which must be exactly ``{MSDW}``
for ``k > 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.capacity import CapacityResult, log10_int
from repro.core.cost import CrossbarCost
from repro.core.models import MulticastModel

__all__ = ["ModelComparison", "compare_models", "dominated_models"]


@dataclass(frozen=True)
class ModelComparison:
    """Capacity and cost of one model on one crossbar network."""

    model: MulticastModel
    capacity: CapacityResult
    cost: CrossbarCost

    @property
    def log10_capacity_per_crosspoint(self) -> float:
        """A capacity-per-hardware figure of merit (log10 capacity / crosspoint)."""
        return log10_int(self.capacity.any) / self.cost.crosspoints


def compare_models(n_ports: int, k: int) -> list[ModelComparison]:
    """Section 2.4's comparison for a concrete ``(N, k)``."""
    return [
        ModelComparison(
            model=model,
            capacity=CapacityResult.compute(model, n_ports, k),
            cost=CrossbarCost.compute(model, n_ports, k),
        )
        for model in MulticastModel
    ]


def dominated_models(n_ports: int, k: int) -> set[MulticastModel]:
    """Models beaten-or-equalled on cost and strictly beaten on capacity.

    For ``k > 1`` this is exactly ``{MSDW}`` (the paper's conclusion);
    for ``k = 1`` all models coincide and nothing is dominated.
    """
    comparisons = compare_models(n_ports, k)
    dominated: set[MulticastModel] = set()
    for row in comparisons:
        for other in comparisons:
            if other.model is row.model:
                continue
            cost_no_worse = (
                other.cost.crosspoints <= row.cost.crosspoints
                and other.cost.converters <= row.cost.converters
            )
            capacity_better = (
                other.capacity.full > row.capacity.full
                and other.capacity.any > row.capacity.any
            )
            if cost_no_worse and capacity_better:
                dominated.add(row.model)
                break
    return dominated
