"""Data series for the paper's implied design-space figures.

The paper's Figs. 1-10 are constructions, not data plots; the *implied*
quantitative claims (multistage is asymptotically cheaper; the bound is
U-shaped in ``x``; capacity grows with model strength) become the curve
generators below.  Each returns plain Python data (lists of points), so
benchmarks, examples and the CLI can render or assert on them without a
plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.asymptotics import (
    multistage_crosspoints_asymptotic,
)
from repro.core.capacity import (
    log10_any_multicast_capacity,
    log10_full_multicast_capacity,
)
from repro.core.cost import crossbar_crosspoints
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    NonblockingBound,
    optimal_design,
)

__all__ = [
    "CostPoint",
    "Crossover",
    "bound_vs_x",
    "capacity_growth",
    "cost_vs_n",
    "find_crossover",
]


@dataclass(frozen=True)
class CostPoint:
    """Crossbar vs multistage crosspoints at one network size."""

    n_ports: int
    k: int
    model: MulticastModel
    crossbar: int
    multistage: int
    multistage_asymptotic: float | None

    @property
    def ratio(self) -> float:
        """``crossbar / multistage`` -- the multistage savings factor."""
        return self.crossbar / self.multistage


def cost_vs_n(
    n_port_values: list[int],
    k: int,
    model: MulticastModel = MulticastModel.MSW,
    construction: Construction = Construction.MSW_DOMINANT,
) -> list[CostPoint]:
    """Crosspoint cost vs network size ``N`` (implied figure X1).

    Multistage points use the exact optimized design; the asymptotic
    column (where defined, ``N >= 256``) is the Table 2 form with the
    paper's constants.
    """
    points = []
    for n_ports in n_port_values:
        design = optimal_design(n_ports, k, model, construction)
        try:
            asymptotic = multistage_crosspoints_asymptotic(model, n_ports, k)
        except ValueError:
            asymptotic = None
        points.append(
            CostPoint(
                n_ports=n_ports,
                k=k,
                model=model,
                crossbar=crossbar_crosspoints(model, n_ports, k),
                multistage=design.cost.crosspoints,
                multistage_asymptotic=asymptotic,
            )
        )
    return points


@dataclass(frozen=True)
class Crossover:
    """Where the multistage design starts beating the crossbar."""

    k: int
    model: MulticastModel
    n_ports: int  # smallest swept N with multistage strictly cheaper
    swept: tuple[int, ...]


def find_crossover(
    k: int,
    model: MulticastModel = MulticastModel.MSW,
    construction: Construction = Construction.MSW_DOMINANT,
    *,
    max_exponent: int = 14,
) -> Crossover | None:
    """Scan powers of two for the crossbar/multistage crossover (X1).

    Returns None if the multistage design never wins within the sweep
    (it always does for reasonable ``max_exponent``).
    """
    swept = []
    for exponent in range(2, max_exponent + 1):
        n_ports = 2**exponent
        swept.append(n_ports)
        design = optimal_design(n_ports, k, model, construction)
        if design.cost.crosspoints < crossbar_crosspoints(model, n_ports, k):
            return Crossover(
                k=k, model=model, n_ports=n_ports, swept=tuple(swept)
            )
    return None


def bound_vs_x(
    n: int, r: int, k: int, construction: Construction
) -> list[tuple[int, int]]:
    """The ``m(x)`` profile of Theorem 1/2 (implied figure X2).

    Returns ``(x, minimal m)`` pairs; the profile is U-shaped: small
    ``x`` pays the ``r**(1/x)`` term, large ``x`` pays the
    ``(n-1) x`` (or ``(nk-1)x/k``) term.
    """
    return list(NonblockingBound.compute(n, r, k, construction).per_x)


@dataclass(frozen=True)
class CapacityPoint:
    """log10 multicast capacities of the three models at one size."""

    n_ports: int
    k: int
    log10_full: dict[str, float]
    log10_any: dict[str, float]


def capacity_growth(
    n_ports: int, k_values: list[int]
) -> list[CapacityPoint]:
    """Capacity vs wavelength count for all three models (figure X4)."""
    points = []
    for k in k_values:
        points.append(
            CapacityPoint(
                n_ports=n_ports,
                k=k,
                log10_full={
                    model.value: log10_full_multicast_capacity(model, n_ports, k)
                    for model in MulticastModel
                },
                log10_any={
                    model.value: log10_any_multicast_capacity(model, n_ports, k)
                    for model in MulticastModel
                },
            )
        )
    return points
