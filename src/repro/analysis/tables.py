"""Regeneration of Table 1 and Table 2.

Table 1 (Section 2.4) compares the three models on a crossbar network:
multicast capacity (full and any), crosspoints, and converters.

Table 2 (Section 3.4) compares crossbar (CB) vs multistage (MS)
implementations of each model on crosspoints and converters.  The
symbolic column carries the paper's formulas; the evaluated columns use
the exact optimized three-stage design from
:func:`repro.core.multistage.optimal_design`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rendering import render_table
from repro.core.capacity import CapacityResult
from repro.core.cost import crossbar_converters, crossbar_crosspoints
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import MultistageDesign, optimal_design

__all__ = [
    "Table1Row",
    "Table2Row",
    "render_table1",
    "render_table2",
    "table1",
    "table1_symbolic",
    "table2",
    "table2_symbolic",
]

_MODELS = (MulticastModel.MSW, MulticastModel.MSDW, MulticastModel.MAW)


# ---------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One model's row of Table 1, evaluated for a concrete ``(N, k)``."""

    model: MulticastModel
    n_ports: int
    k: int
    capacity_full: int
    capacity_any: int
    crosspoints: int
    converters: int

    @property
    def log10_capacity_full(self) -> float:
        """``log10`` of the full-multicast capacity (for display)."""
        from repro.core.capacity import log10_int

        return log10_int(self.capacity_full)

    @property
    def log10_capacity_any(self) -> float:
        """``log10`` of the any-multicast capacity (for display)."""
        from repro.core.capacity import log10_int

        return log10_int(self.capacity_any)


def table1(n_ports: int, k: int) -> list[Table1Row]:
    """Evaluate Table 1 for a concrete network size."""
    rows = []
    for model in _MODELS:
        capacity = CapacityResult.compute(model, n_ports, k)
        rows.append(
            Table1Row(
                model=model,
                n_ports=n_ports,
                k=k,
                capacity_full=capacity.full,
                capacity_any=capacity.any,
                crosspoints=crossbar_crosspoints(model, n_ports, k),
                converters=crossbar_converters(model, n_ports, k),
            )
        )
    return rows


def table1_symbolic() -> list[dict[str, str]]:
    """Table 1 as the paper prints it (formula strings)."""
    return [
        {
            "model": "MSW",
            "capacity_full": "N^(Nk)",
            "capacity_any": "(N+1)^(Nk)",
            "crosspoints": "k N^2",
            "converters": "0",
        },
        {
            "model": "MSDW",
            "capacity_full": "sum P(Nk, sum j_i) prod S(N, j_i)",
            "capacity_any": "sum P(Nk, sum j_i) prod C(N, l_i) S(N-l_i, j_i)",
            "crosspoints": "k^2 N^2",
            "converters": "k N",
        },
        {
            "model": "MAW",
            "capacity_full": "[P(Nk, k)]^N",
            "capacity_any": "[sum_j P(Nk, k-j) C(k, j)]^N",
            "crosspoints": "k^2 N^2",
            "converters": "k N",
        },
    ]


def render_table1(n_ports: int, k: int) -> str:
    """Table 1 as printable text (capacities shown as log10 when huge)."""
    rows = table1(n_ports, k)
    display = []
    for row in rows:
        full = (
            str(row.capacity_full)
            if row.capacity_full < 10**12
            else f"10^{row.log10_capacity_full:.1f}"
        )
        any_ = (
            str(row.capacity_any)
            if row.capacity_any < 10**12
            else f"10^{row.log10_capacity_any:.1f}"
        )
        display.append(
            [row.model.value, full, any_, row.crosspoints, row.converters]
        )
    return render_table(
        ["model", "capacity (full)", "capacity (any)", "crosspoints", "converters"],
        display,
        title=f"Table 1 -- N={n_ports}, k={k}",
    )


# ---------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One (model, implementation) row of Table 2 for a concrete ``(N, k)``."""

    model: MulticastModel
    implementation: str  # "CB" (crossbar) or "MS" (multistage)
    n_ports: int
    k: int
    crosspoints: int
    converters: int
    design: MultistageDesign | None = None  # MS rows only

    @property
    def label(self) -> str:
        """The paper's row label, e.g. ``MSW/CB``."""
        return f"{self.model.value}/{self.implementation}"


def table2(
    n_ports: int,
    k: int,
    construction: Construction = Construction.MSW_DOMINANT,
    *,
    use_paper_bound: bool = False,
) -> list[Table2Row]:
    """Evaluate Table 2: CB and optimized MS rows for each model.

    MS rows are sized with the corrected model-aware bound by default
    (actually nonblocking for MSDW/MAW with k > 1); pass
    ``use_paper_bound=True`` for the paper's Theorem-1 sizing as
    printed.
    """
    rows: list[Table2Row] = []
    for model in _MODELS:
        rows.append(
            Table2Row(
                model=model,
                implementation="CB",
                n_ports=n_ports,
                k=k,
                crosspoints=crossbar_crosspoints(model, n_ports, k),
                converters=crossbar_converters(model, n_ports, k),
            )
        )
        design = optimal_design(
            n_ports, k, model, construction, use_paper_bound=use_paper_bound
        )
        rows.append(
            Table2Row(
                model=model,
                implementation="MS",
                n_ports=n_ports,
                k=k,
                crosspoints=design.cost.crosspoints,
                converters=design.cost.converters,
                design=design,
            )
        )
    return rows


def table2_symbolic() -> list[dict[str, str]]:
    """Table 2 as the paper prints it (asymptotic forms; see DESIGN.md)."""
    return [
        {"row": "MSW/CB", "crosspoints": "k N^2", "converters": "0"},
        {
            "row": "MSW/MS",
            "crosspoints": "O(k N^(3/2) log N / log log N)",
            "converters": "0",
        },
        {"row": "MSDW/CB", "crosspoints": "k^2 N^2", "converters": "k N"},
        {
            "row": "MSDW/MS",
            "crosspoints": "O(k^2 N^(3/2) log N / log log N)",
            "converters": "O(k N log N / log log N)",
        },
        {"row": "MAW/CB", "crosspoints": "k^2 N^2", "converters": "k N"},
        {
            "row": "MAW/MS",
            "crosspoints": "O(k^2 N^(3/2) log N / log log N)",
            "converters": "k N",
        },
    ]


def render_table2(
    n_ports: int,
    k: int,
    construction: Construction = Construction.MSW_DOMINANT,
    *,
    use_paper_bound: bool = False,
) -> str:
    """Table 2 as printable text, with the chosen MS designs annotated."""
    rows = table2(n_ports, k, construction, use_paper_bound=use_paper_bound)
    display = []
    for row in rows:
        design = row.design
        detail = (
            f"n={design.n} r={design.r} m={design.m} x={design.x}"
            if design
            else "-"
        )
        display.append(
            [row.label, row.crosspoints, row.converters, detail]
        )
    return render_table(
        ["network", "crosspoints", "converters", "MS design"],
        display,
        title=f"Table 2 -- N={n_ports}, k={k} ({construction.value})",
    )
