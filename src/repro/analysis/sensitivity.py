"""Design-space sensitivity: how the (n, r) split shapes the cost.

Section 3.4 fixes ``n = r = sqrt(N)`` for its asymptotics; this module
quantifies how sensitive the real (non-asymptotic) optimum is to that
choice: for every factorization ``N = n * r``, the minimal nonblocking
``m`` (corrected bound), the resulting crosspoints and converters, and
the penalty relative to the best split.

The finding the benchmark verifies: the crosspoint curve over aspect
ratios is shallow near the optimum but punishes extreme splits (tiny
``n`` wastes middle-stage area on ``r x r`` modules; tiny ``r`` inflates
``m`` through the ``(n-1)`` factor), and the optimum sits near --
though not always exactly at -- the paper's square split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import multistage_cost

__all__ = ["AspectPoint", "aspect_ratio_study"]


@dataclass(frozen=True)
class AspectPoint:
    """One factorization's optimized design."""

    n: int
    r: int
    x: int
    m: int
    crosspoints: int
    converters: int

    @property
    def aspect(self) -> float:
        """``n / r`` -- 1.0 is the paper's square split."""
        return self.n / self.r


def aspect_ratio_study(
    n_ports: int,
    k: int,
    model: MulticastModel = MulticastModel.MSW,
    construction: Construction = Construction.MSW_DOMINANT,
) -> list[AspectPoint]:
    """Evaluate every proper factorization ``N = n * r``.

    Returns points sorted by ``n`` (ascending).  Raises if ``N`` has no
    proper factorization (prime or < 4).
    """
    if n_ports < 4:
        raise ValueError(f"need N >= 4 for a proper split, got {n_ports}")
    points = []
    for n in range(2, n_ports):
        if n_ports % n:
            continue
        r = n_ports // n
        if r < 2:
            continue
        bound = CorrectedBound.compute(n, r, k, construction, model)
        cost = multistage_cost(n, r, bound.m_min, k, construction, model)
        points.append(
            AspectPoint(
                n=n,
                r=r,
                x=bound.best_x,
                m=bound.m_min,
                crosspoints=cost.crosspoints,
                converters=cost.converters,
            )
        )
    if not points:
        raise ValueError(f"N={n_ports} has no proper factorization")
    return points


def nearest_square_point(points: list[AspectPoint]) -> AspectPoint:
    """The factorization closest to the paper's ``n = r`` split."""
    return min(points, key=lambda p: abs(math.log(p.aspect)))
