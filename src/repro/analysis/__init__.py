"""Regeneration harness for the paper's tables, figures and implied curves.

* :mod:`repro.analysis.tables` -- Table 1 (capacity/cost per model) and
  Table 2 (crossbar vs multistage cost), both symbolic and evaluated.
* :mod:`repro.analysis.figures` -- data series for the design-space
  curves the paper argues verbally: cost vs ``N``, the ``m(x)`` bound
  profile, capacity growth, and the crossbar/multistage crossover.
* :mod:`repro.analysis.montecarlo` -- blocking probability vs ``m``
  under random multicast traffic.
* :mod:`repro.analysis.tradeoffs` -- the cost-performance comparison of
  Section 2.4 (why MSDW is dominated).
* :mod:`repro.analysis.rendering` -- plain-text table rendering shared
  by the CLI and the benchmarks.
"""

from repro.analysis.montecarlo import BlockingEstimate, blocking_probability
from repro.analysis.rendering import render_table
from repro.analysis.sensitivity import AspectPoint, aspect_ratio_study
from repro.analysis.traffic import LoadPoint, loss_vs_load, simulate_offered_load
from repro.analysis.tables import (
    Table1Row,
    Table2Row,
    table1,
    table1_symbolic,
    table2,
    table2_symbolic,
)

__all__ = [
    "AspectPoint",
    "BlockingEstimate",
    "LoadPoint",
    "Table1Row",
    "Table2Row",
    "aspect_ratio_study",
    "blocking_probability",
    "loss_vs_load",
    "render_table",
    "simulate_offered_load",
    "table1",
    "table1_symbolic",
    "table2",
    "table2_symbolic",
]
