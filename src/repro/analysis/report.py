"""One-shot reproduction report: every artifact in a single document.

:func:`generate_report` regenerates the paper's tables, the implied
design-space curves, the blocking study and the reproduction findings,
and renders them as a markdown document.  The CLI exposes it as
``wdm-repro report`` -- useful for checking a fresh checkout end to end
or regenerating the data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import io

from repro.analysis.figures import bound_vs_x, capacity_growth, find_crossover
from repro import api
from repro.analysis.tables import render_table1, render_table2
from repro.core.corrected import min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant
from repro.fabric.power import analyze_power
from repro.fabric.wdm_crossbar import build_crossbar
from repro.multistage.adversary import demonstrate_theorem1_gap, fig10_scenario
from repro.multistage.fabric_backed import FabricBackedThreeStage
from repro.multistage.recursive import best_recursive_design

__all__ = ["generate_report"]


def generate_report(
    *,
    n_ports: int = 256,
    k: int = 4,
    fast: bool = False,
) -> str:
    """Regenerate every artifact and render a markdown report.

    Args:
        n_ports: network size for the Table 2 / crossover sections.
        k: wavelength count used throughout.
        fast: trim the Monte-Carlo sweep for quick smoke runs.
    """
    out = io.StringIO()
    w = out.write

    w("# WDM multicast reproduction report\n\n")
    w(f"Parameters: N={n_ports}, k={k}.\n\n")

    # -- Table 1 ------------------------------------------------------
    w("## Table 1 (capacity & crossbar cost)\n\n```\n")
    w(render_table1(min(n_ports, 8), k))
    w("\n```\n\n")

    # -- Table 2 ------------------------------------------------------
    w("## Table 2 (crossbar vs multistage)\n\n```\n")
    w(render_table2(n_ports, k))
    w("\n```\n\n")

    # -- crossover ------------------------------------------------------
    w("## Crossbar/multistage crossover\n\n")
    for model in MulticastModel:
        crossover = find_crossover(k, model)
        where = f"N = {crossover.n_ports}" if crossover else "not found"
        w(f"- {model.value}: multistage wins from {where}\n")
    w("\n")

    # -- bounds ---------------------------------------------------------
    w("## Theorem 1/2 bound profiles (n = r = 16)\n\n")
    for construction in Construction:
        profile = bound_vs_x(16, 16, k, construction)
        series = "  ".join(f"x={x}:{m}" for x, m in profile[:8])
        w(f"- {construction.value}: {series} ...\n")
    w("\n")

    # -- capacity growth -------------------------------------------------
    w("## Capacity growth (log10, N = 8)\n\n")
    for point in capacity_growth(8, [1, 2, k]):
        values = ", ".join(
            f"{model.value}={point.log10_full[model.value]:.1f}"
            for model in MulticastModel
        )
        w(f"- k={point.k}: {values}\n")
    w("\n")

    # -- blocking curve ---------------------------------------------------
    w("## Blocking probability vs m (n = r = 3, k = 1, x = 1)\n\n")
    bound = min_middle_switches_msw_dominant(3, 3, 1, x=1)
    steps = 200 if fast else 800
    estimates = api.sweep(
        3, 3, 1, list(range(1, bound + 1)), x=1,
        traffic=api.UniformConfig(steps=steps, seeds=(0,)),
    )
    for estimate in estimates:
        w(f"- m={estimate.m}: P(block) = {estimate.probability:.4f}\n")
    w(f"\nTheorem-1 bound: m = {bound}.\n\n")

    # -- Fig. 10 -----------------------------------------------------------
    outcome = fig10_scenario()
    w("## Fig. 10 scenario\n\n")
    w(
        f"MSW-dominant: {'BLOCKED' if outcome.msw_dominant_blocked else 'routed'}; "
        f"MAW-dominant: {'BLOCKED' if outcome.maw_dominant_blocked else 'routed'}.\n\n"
    )

    # -- the finding ---------------------------------------------------------
    w("## Theorem-1 gap (reproduction finding)\n\n")
    gap = demonstrate_theorem1_gap(2, 3, 2, MulticastModel.MAW)
    w(
        f"v(2,3,m,2), MAW model, x=1: paper m_min={gap.m_paper} -> "
        f"{'BLOCKED' if gap.blocked_at_paper_bound else 'routed'}; "
        f"corrected m_min={gap.m_corrected} -> "
        f"{'routed' if gap.routed_at_corrected_bound else 'BLOCKED'}.\n\n"
    )
    w("Corrected condition: `m > (n-1)x + (nk-1) r^(1/x)`. Scaling (n=8, r=16):\n\n")
    for kk in (1, 2, 4, 8):
        paper = min_middle_switches_msw_dominant(8, 16, kk)
        corrected = min_middle_switches_corrected(
            8, 16, kk, Construction.MSW_DOMINANT, MulticastModel.MAW
        )
        w(f"- k={kk}: paper {paper}, corrected {corrected}\n")
    w("\n")

    # -- recursive -------------------------------------------------------------
    w("## Recursive construction\n\n")
    design = best_recursive_design(max(n_ports, 4096), 2)
    w(
        f"best recursive MSW design for N={max(n_ports, 4096)}, k=2: "
        f"{design.crosspoints} crosspoints, {design.stages} stages.\n\n"
    )

    # -- power ----------------------------------------------------------------
    w("## Power / crosstalk (the §2.3 remark)\n\n")
    crossbar = build_crossbar(MulticastModel.MAW, 6, 2)
    physical = FabricBackedThreeStage(2, 3, 5, 2, model=MulticastModel.MAW)
    cb = analyze_power(crossbar.fabric)
    ms = analyze_power(physical.fabric)
    w(f"- crossbar 6x6 (k=2): {cb.worst_loss_db:.1f} dB worst path, "
      f"{cb.max_gate_cascade} gate stage(s)\n")
    w(f"- three-stage v(2,3,5,2): {ms.worst_loss_db:.1f} dB worst path, "
      f"{ms.max_gate_cascade} gate stage(s)\n\n")

    # -- offered load ----------------------------------------------------------
    from repro.analysis.traffic import loss_vs_load

    w("## Offered-load study (v(3,3,m,2), MAW, x=1)\n\n")
    arrivals = 300 if fast else 1200
    for m in (2, 4):
        points = loss_vs_load(
            3, 3, m, 2, [1.0, 8.0],
            model=MulticastModel.MAW, x=1, arrivals=arrivals,
        )
        series = ", ".join(
            f"rho={p.offered_erlangs:.0f}: {p.fabric_loss_probability:.3f}"
            for p in points
        )
        w(f"- m={m}: fabric loss {series}\n")
    w("\n")

    # -- scheduling (the §1 motivation) -----------------------------------------
    from repro.scheduling.demands import random_demand_batch
    from repro.scheduling.electronic import electronic_rounds
    from repro.scheduling.wdm import wdm_rounds

    w("## WDM vs electronic scheduling (the §1 motivation)\n\n")
    demands = random_demand_batch(16, 40, seed=0)
    electronic, _ = electronic_rounds(demands)
    for kk in (1, 2, 4, 8):
        rounds, _ = wdm_rounds(demands, kk)
        w(f"- k={kk}: {rounds} rounds (electronic: {electronic})\n")

    return out.getvalue()
