"""Component-level optical fabric construction and simulation.

Builds the crossbar designs of the paper's Figs. 4-7 out of explicit
optical components -- wavelength demultiplexers/multiplexers, passive
splitters and combiners, SOA gate crosspoints, and wavelength
converters -- wires them into a directed acyclic fabric graph, and
propagates optical signals through the configured fabric.

The fabrics serve two purposes in the reproduction:

* **cost validation**: walking a built fabric and counting its gates and
  converters must reproduce the closed-form costs of Table 1 exactly;
* **behavioural validation**: realizing a legal multicast assignment by
  configuring gates/converters and propagating photons must deliver the
  right signal (source identity *and* wavelength) at every requested
  output endpoint, with no combiner conflicts anywhere -- the physical
  meaning of "nonblocking".
"""

from repro.fabric.components import (
    Combiner,
    CombinerConflictError,
    Component,
    Demux,
    InputTerminal,
    Mux,
    MuxConflictError,
    OutputTerminal,
    SOAGate,
    Splitter,
    WavelengthConverter,
)
from repro.fabric.dot import to_dot
from repro.fabric.modules import WDMModule, build_wdm_module
from repro.fabric.network import OpticalFabric, PropagationResult
from repro.fabric.power import LossBudget, PowerReport, analyze_power
from repro.fabric.signal import OpticalSignal
from repro.fabric.space_crossbar import SpaceCrossbar
from repro.fabric.wdm_crossbar import (
    MAWCrossbar,
    MSDWCrossbar,
    MSWCrossbar,
    WDMCrossbar,
    build_crossbar,
)

__all__ = [
    "Combiner",
    "CombinerConflictError",
    "Component",
    "Demux",
    "InputTerminal",
    "LossBudget",
    "MAWCrossbar",
    "MSDWCrossbar",
    "MSWCrossbar",
    "Mux",
    "MuxConflictError",
    "OpticalFabric",
    "OpticalSignal",
    "OutputTerminal",
    "PowerReport",
    "PropagationResult",
    "SOAGate",
    "SpaceCrossbar",
    "Splitter",
    "WDMCrossbar",
    "WDMModule",
    "WavelengthConverter",
    "analyze_power",
    "build_crossbar",
    "to_dot",
    "build_wdm_module",
]
