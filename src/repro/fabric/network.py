"""The fabric graph: components wired port-to-port, with signal propagation.

An :class:`OpticalFabric` is a directed acyclic multigraph whose nodes
are :class:`repro.fabric.components.Component` instances and whose edges
connect an output port of one component to an input port of another
(exactly one fiber per input port).  Propagation evaluates the
components in topological order -- the optical analogue of combinational
circuit simulation.

The census methods make the fabric double as a cost model: counting the
SOA gates of a built network must reproduce Table 1's crosspoint counts,
and counting converters its converter counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx

from repro.fabric.components import (
    Component,
    FabricError,
    InputTerminal,
    OutputTerminal,
    SOAGate,
    WavelengthConverter,
)
from repro.fabric.signal import OpticalSignal

__all__ = ["OpticalFabric", "PropagationResult"]


@dataclass(frozen=True)
class PropagationResult:
    """Signals recorded at the output terminals after one propagation."""

    received: dict[str, tuple[OpticalSignal, ...]]

    def at(self, terminal_name: str) -> tuple[OpticalSignal, ...]:
        """Signals that arrived at the named output terminal."""
        return self.received[terminal_name]

    def active_terminals(self) -> dict[str, tuple[OpticalSignal, ...]]:
        """Only the terminals that actually received light."""
        return {name: sigs for name, sigs in self.received.items() if sigs}


class OpticalFabric:
    """A wired network of optical components.

    Wiring rules enforced at construction time:

    * component names are unique;
    * every input port is fed by exactly one fiber;
    * every output port feeds exactly one fiber (split light explicitly
      with a :class:`Splitter`);
    * the graph is acyclic (checked lazily at first propagation).
    """

    def __init__(self, name: str = "fabric"):
        self.name = name
        self._components: dict[str, Component] = {}
        # (dst_name, dst_port) -> (src_name, src_port)
        self._feeds: dict[tuple[str, int], tuple[str, int]] = {}
        self._source_used: set[tuple[str, int]] = set()
        self._order: list[str] | None = None

    # -- construction ---------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._components:
            raise ValueError(f"duplicate component name: {component.name}")
        self._components[component.name] = component
        self._order = None
        return component

    def connect(
        self, src: Component | str, src_port: int, dst: Component | str, dst_port: int
    ) -> None:
        """Run a fiber from ``src``'s output port to ``dst``'s input port."""
        src_name = src if isinstance(src, str) else src.name
        dst_name = dst if isinstance(dst, str) else dst.name
        source = self._components[src_name]
        destination = self._components[dst_name]
        if not 0 <= src_port < source.n_outputs:
            raise ValueError(
                f"{src_name} has no output port {src_port} "
                f"(has {source.n_outputs})"
            )
        if not 0 <= dst_port < destination.n_inputs:
            raise ValueError(
                f"{dst_name} has no input port {dst_port} "
                f"(has {destination.n_inputs})"
            )
        if (dst_name, dst_port) in self._feeds:
            raise ValueError(f"input port {dst_name}[{dst_port}] already fed")
        if (src_name, src_port) in self._source_used:
            raise ValueError(
                f"output port {src_name}[{src_port}] already feeds a fiber; "
                "use a Splitter to fan out"
            )
        self._feeds[(dst_name, dst_port)] = (src_name, src_port)
        self._source_used.add((src_name, src_port))
        self._order = None

    # -- inspection -------------------------------------------------------

    def component(self, name: str) -> Component:
        """Look up a component by name."""
        return self._components[name]

    def components(self) -> list[Component]:
        """All components, in insertion order."""
        return list(self._components.values())

    def census(self) -> Counter[str]:
        """Component counts by kind (``soa_gate``, ``splitter``, ...)."""
        return Counter(component.kind for component in self._components.values())

    def crosspoint_count(self) -> int:
        """Number of SOA gates -- the paper's crosspoint cost."""
        return sum(
            1 for c in self._components.values() if isinstance(c, SOAGate)
        )

    def converter_count(self) -> int:
        """Number of wavelength converters -- the paper's converter cost."""
        return sum(
            1
            for c in self._components.values()
            if isinstance(c, WavelengthConverter)
        )

    def input_terminals(self) -> list[InputTerminal]:
        """All input terminals, in insertion order."""
        return [
            c for c in self._components.values() if isinstance(c, InputTerminal)
        ]

    def output_terminals(self) -> list[OutputTerminal]:
        """All output terminals, in insertion order."""
        return [
            c for c in self._components.values() if isinstance(c, OutputTerminal)
        ]

    def graph(self) -> nx.MultiDiGraph:
        """The fabric as a NetworkX multigraph (for analysis/plotting)."""
        graph = nx.MultiDiGraph(name=self.name)
        for name, component in self._components.items():
            graph.add_node(name, kind=component.kind)
        for (dst_name, dst_port), (src_name, src_port) in self._feeds.items():
            graph.add_edge(src_name, dst_name, src_port=src_port, dst_port=dst_port)
        return graph

    # -- simulation --------------------------------------------------------

    def _topological_order(self) -> list[str]:
        if self._order is None:
            graph = self.graph()
            try:
                self._order = list(nx.topological_sort(graph))
            except nx.NetworkXUnfeasible as exc:
                raise FabricError(f"{self.name}: fabric graph has a cycle") from exc
        return self._order

    def check_wiring(self) -> None:
        """Verify every non-terminal input port is fed; raise otherwise."""
        for name, component in self._components.items():
            for port in range(component.n_inputs):
                if (name, port) not in self._feeds:
                    raise FabricError(f"input port {name}[{port}] is unconnected")

    def propagate(self) -> PropagationResult:
        """Evaluate the fabric with the currently injected signals.

        Raises :class:`repro.fabric.components.FabricError` subclasses on
        any physical conflict (combiner/mux collisions, stray carriers).
        """
        self.check_wiring()
        # Output signals per (component, out_port).
        port_signals: dict[tuple[str, int], list[OpticalSignal]] = {}
        for name in self._topological_order():
            component = self._components[name]
            inputs = []
            for port in range(component.n_inputs):
                src = self._feeds[(name, port)]
                inputs.append(list(port_signals.get(src, [])))
            outputs = component.transfer(inputs)
            for port, bundle in enumerate(outputs):
                port_signals[(name, port)] = bundle
        return PropagationResult(
            received={
                terminal.name: tuple(terminal.received)
                for terminal in self.output_terminals()
            }
        )

    def clear_inputs(self) -> None:
        """Remove all injected signals."""
        for terminal in self.input_terminals():
            terminal.clear()

    def reset_gates(self) -> None:
        """Disable every SOA gate (all-dark fabric)."""
        for component in self._components.values():
            if isinstance(component, SOAGate):
                component.enabled = False
