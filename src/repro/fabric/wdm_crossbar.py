"""The WDM crossbar constructions of Figs. 4, 6 and 7.

Three concrete fabrics, one per multicast model:

* :class:`MSWCrossbar` (Fig. 4) -- ``k`` parallel single-wavelength
  space planes between per-port demultiplexers and multiplexers.
  ``k N**2`` crosspoints, no converters.
* :class:`MSDWCrossbar` (Fig. 6) -- a converter on every *input*
  wavelength (before its splitter), then full ``Nk x Nk`` gate reach.
  ``k**2 N**2`` crosspoints, ``N k`` converters.
* :class:`MAWCrossbar` (Fig. 7) -- full gate reach first, then a
  converter on every *output* wavelength (after its combiner).
  ``k**2 N**2`` crosspoints, ``N k`` converters.

Each is an external-terminal wrapper around one square
:class:`repro.fabric.modules.WDMModule` -- the same component structures
the multistage fabric uses for its modules, so crossbar tests and
multistage tests exercise one implementation.

All three share the :class:`WDMCrossbar` interface: ``realize`` takes a
legal :class:`repro.switching.requests.MulticastAssignment`, configures
gates and converters, injects one test signal per active source, runs
the photon propagation, and verifies that exactly the requested signals
arrive (right origin, right carrier) at exactly the requested output
endpoints.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.models import MulticastModel
from repro.fabric.components import InputTerminal, OutputTerminal
from repro.fabric.modules import build_wdm_module
from repro.fabric.network import OpticalFabric, PropagationResult
from repro.fabric.signal import OpticalSignal
from repro.switching.requests import Endpoint, MulticastAssignment
from repro.switching.validity import check_assignment

__all__ = [
    "DeliveryError",
    "MAWCrossbar",
    "MSDWCrossbar",
    "MSWCrossbar",
    "WDMCrossbar",
    "build_crossbar",
]


class DeliveryError(RuntimeError):
    """The propagated light does not match the requested assignment."""


class WDMCrossbar:
    """An ``N x N`` ``k``-wavelength multicast crossbar under one model."""

    model: MulticastModel

    def __init__(self, n_ports: int, k: int, name: str):
        if n_ports < 1:
            raise ValueError(f"network size N must be >= 1, got {n_ports}")
        if k < 1:
            raise ValueError(f"wavelength count k must be >= 1, got {k}")
        self.n_ports = n_ports
        self.k = k
        self.fabric = OpticalFabric(name)
        self.module = build_wdm_module(
            self.fabric, f"{name}.xbar", self.model, n_ports, n_ports, k
        )
        self._inputs = []
        self._outputs = []
        for p in range(n_ports):
            terminal = self.fabric.add(InputTerminal(f"{name}.in{p}"))
            entry_name, entry_port = self.module.entries[p]
            self.fabric.connect(terminal, 0, entry_name, entry_port)
            self._inputs.append(terminal)
        for q in range(n_ports):
            terminal = self.fabric.add(OutputTerminal(f"{name}.out{q}"))
            exit_name, exit_port = self.module.exits[q]
            self.fabric.connect(exit_name, exit_port, terminal, 0)
            self._outputs.append(terminal)
        self.fabric.check_wiring()

    # -- accounting -----------------------------------------------------

    def crosspoint_count(self) -> int:
        """SOA gate count; must match Table 1."""
        return self.fabric.crosspoint_count()

    def converter_count(self) -> int:
        """Wavelength converter count; must match Table 1."""
        return self.fabric.converter_count()

    # -- realization -------------------------------------------------------

    def realize(self, assignment: MulticastAssignment) -> PropagationResult:
        """Configure the fabric for ``assignment`` and propagate light.

        The assignment is validated against this crossbar's model first;
        then every active source endpoint transmits one signal and the
        arrivals are checked against the assignment's mapping.

        Raises:
            repro.switching.validity.ValidityError: illegal assignment.
            DeliveryError: the fabric delivered the wrong light (a bug).
        """
        check_assignment(assignment, self.model, self.n_ports, self.k)
        self.module.reset()
        self.fabric.clear_inputs()
        for connection in assignment:
            self.module.route(
                connection.source.port,
                connection.source.wavelength,
                [(d.port, d.wavelength) for d in connection.destinations],
            )
        per_port: dict[int, list[OpticalSignal]] = defaultdict(list)
        for source in assignment.used_input_endpoints():
            per_port[source.port].append(
                OpticalSignal.transmit(source.port, source.wavelength)
            )
        for port, signals in per_port.items():
            self._inputs[port].inject(signals)
        result = self.fabric.propagate()
        self._verify(assignment, result)
        return result

    def _verify(
        self, assignment: MulticastAssignment, result: PropagationResult
    ) -> None:
        """Check arrivals == requests, origin and carrier included."""
        expected: dict[Endpoint, Endpoint] = assignment.to_mapping()
        observed: dict[Endpoint, OpticalSignal] = {}
        for q, terminal in enumerate(self._outputs):
            for signal in result.at(terminal.name):
                endpoint = Endpoint(q, signal.wavelength)
                if endpoint in observed:
                    raise DeliveryError(f"two signals at output endpoint {endpoint}")
                observed[endpoint] = signal
        missing = set(expected) - set(observed)
        stray = set(observed) - set(expected)
        if missing or stray:
            raise DeliveryError(
                f"delivery mismatch: missing={sorted(missing)} stray={sorted(stray)}"
            )
        for endpoint, source in expected.items():
            signal = observed[endpoint]
            if (signal.source_port, signal.source_wavelength) != (
                source.port,
                source.wavelength,
            ):
                raise DeliveryError(
                    f"wrong signal at {endpoint}: got origin "
                    f"({signal.source_port}, {signal.source_wavelength}), "
                    f"expected ({source.port}, {source.wavelength})"
                )


class MSWCrossbar(WDMCrossbar):
    """Fig. 4: ``k`` parallel space planes, one per wavelength."""

    model = MulticastModel.MSW


class MSDWCrossbar(WDMCrossbar):
    """Fig. 6: converters on the input side, one per input wavelength."""

    model = MulticastModel.MSDW


class MAWCrossbar(WDMCrossbar):
    """Fig. 7: converters on the output side, one per output wavelength."""

    model = MulticastModel.MAW


def build_crossbar(model: MulticastModel, n_ports: int, k: int) -> WDMCrossbar:
    """Construct the crossbar of Figs. 4/6/7 for the given model."""
    if model is MulticastModel.MSW:
        return MSWCrossbar(n_ports, k, f"msw{n_ports}x{k}")
    if model is MulticastModel.MSDW:
        return MSDWCrossbar(n_ports, k, f"msdw{n_ports}x{k}")
    return MAWCrossbar(n_ports, k, f"maw{n_ports}x{k}")
