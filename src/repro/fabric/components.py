"""Optical components of a WDM switching fabric.

Section 2 of the paper builds its crossbars from exactly these parts:

* **splitters** -- passive glass; copy the light on one fiber to several;
* **combiners** -- passive; merge several fibers into one, *legal only
  when at most one input carries light at a time* (this is what
  distinguishes them from multiplexers, and the constraint whose
  violation would mean a switching conflict);
* **SOA gates** -- the active crosspoints: on = pass, off = block;
* **wavelength converters** -- the expensive active parts; move a signal
  to a different carrier;
* **multiplexers / demultiplexers** -- combine/separate the ``k``
  wavelength channels of one fiber (not counted as crosspoints).

Every component is a small transfer function from per-input-port signal
lists to per-output-port signal lists.  Components raise on physically
meaningless situations (two signals on one carrier in a mux, two active
combiner inputs, ...) so the fabric tests detect conflicts instead of
silently merging light.
"""

from __future__ import annotations

from repro.fabric.signal import OpticalSignal

__all__ = [
    "Combiner",
    "CombinerConflictError",
    "Component",
    "Demux",
    "FabricError",
    "InputTerminal",
    "Mux",
    "MuxConflictError",
    "OutputTerminal",
    "SOAGate",
    "Splitter",
    "WavelengthConverter",
]

Signals = list[OpticalSignal]


class FabricError(RuntimeError):
    """A physically impossible situation inside the fabric."""


class CombinerConflictError(FabricError):
    """Two combiner inputs carried light simultaneously."""


class MuxConflictError(FabricError):
    """Two signals on the same wavelength entered one multiplexer."""


class Component:
    """Base class: a named box with numbered input and output ports."""

    #: set by subclasses; used for census/cost accounting
    kind: str = "component"

    def __init__(self, name: str, n_inputs: int, n_outputs: int):
        if n_inputs < 0 or n_outputs < 0:
            raise ValueError("port counts must be >= 0")
        self.name = name
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        """Map per-input-port signals to per-output-port signals."""
        raise NotImplementedError

    def _expect_ports(self, inputs: list[Signals]) -> None:
        if len(inputs) != self.n_inputs:
            raise FabricError(
                f"{self.name}: got {len(inputs)} input bundles, "
                f"expected {self.n_inputs}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class InputTerminal(Component):
    """Network entry point: one output fiber, signals injected externally."""

    kind = "input_terminal"

    def __init__(self, name: str):
        super().__init__(name, n_inputs=0, n_outputs=1)
        self.injected: Signals = []

    def inject(self, signals: Signals) -> None:
        """Set the signals this terminal transmits on the next propagation."""
        self.injected = list(signals)

    def clear(self) -> None:
        """Remove injected signals."""
        self.injected = []

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        return [list(self.injected)]


class OutputTerminal(Component):
    """Network exit point: absorbs and records whatever arrives."""

    kind = "output_terminal"

    def __init__(self, name: str):
        super().__init__(name, n_inputs=1, n_outputs=0)
        self.received: Signals = []

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        self.received = list(inputs[0])
        return []


class Splitter(Component):
    """Passive 1-to-``fanout`` light splitter: copies input to every output."""

    kind = "splitter"

    def __init__(self, name: str, fanout: int):
        if fanout < 1:
            raise ValueError(f"splitter fanout must be >= 1, got {fanout}")
        super().__init__(name, n_inputs=1, n_outputs=fanout)

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        return [list(inputs[0]) for _ in range(self.n_outputs)]


class Combiner(Component):
    """Passive ``fanin``-to-1 combiner.

    Per the paper: unlike a multiplexer, only one input may carry a
    signal at any given time (on any wavelength).  Violations raise
    :class:`CombinerConflictError` -- a real switching conflict.
    """

    kind = "combiner"

    def __init__(self, name: str, fanin: int):
        if fanin < 1:
            raise ValueError(f"combiner fanin must be >= 1, got {fanin}")
        super().__init__(name, n_inputs=fanin, n_outputs=1)

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        active = [bundle for bundle in inputs if bundle]
        if len(active) > 1:
            raise CombinerConflictError(
                f"{self.name}: {len(active)} inputs active simultaneously"
            )
        return [list(active[0]) if active else []]


class SOAGate(Component):
    """Semiconductor-optical-amplifier gate: the crosspoint.

    ``enabled = True`` passes light through; ``False`` blocks it.  The
    number of these in a fabric is the paper's crosspoint count.
    """

    kind = "soa_gate"

    def __init__(self, name: str, enabled: bool = False):
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.enabled = enabled

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        return [list(inputs[0]) if self.enabled else []]


class WavelengthConverter(Component):
    """All-optical wavelength converter.

    When ``target_wavelength`` is None the converter is transparent
    (pass-through); otherwise every signal leaves on the target carrier.
    A converter handles one channel, so at most one signal may be
    present at a time.
    """

    kind = "wavelength_converter"

    def __init__(self, name: str, target_wavelength: int | None = None):
        super().__init__(name, n_inputs=1, n_outputs=1)
        self.target_wavelength = target_wavelength

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        signals = inputs[0]
        if len(signals) > 1:
            raise FabricError(
                f"{self.name}: converter saw {len(signals)} simultaneous signals"
            )
        if self.target_wavelength is None:
            return [list(signals)]
        return [[signal.converted_to(self.target_wavelength) for signal in signals]]


class Demux(Component):
    """Wavelength demultiplexer: splits a ``k``-wavelength fiber by carrier.

    A signal on wavelength ``w`` leaves on output port ``w``.  Signals
    with carriers outside ``[0, k)`` are a wiring bug and raise.
    """

    kind = "demux"

    def __init__(self, name: str, k: int):
        if k < 1:
            raise ValueError(f"demux needs k >= 1 wavelengths, got {k}")
        super().__init__(name, n_inputs=1, n_outputs=k)

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        outputs: list[Signals] = [[] for _ in range(self.n_outputs)]
        for signal in inputs[0]:
            if not 0 <= signal.wavelength < self.n_outputs:
                raise FabricError(
                    f"{self.name}: signal carrier {signal.wavelength} outside "
                    f"[0, {self.n_outputs})"
                )
            outputs[signal.wavelength].append(signal)
        return outputs


class Mux(Component):
    """Wavelength multiplexer: merges ``k`` carriers onto one fiber.

    Unlike a combiner, several inputs may be active simultaneously --
    but two signals on the *same* carrier would interfere and raise
    :class:`MuxConflictError`.
    """

    kind = "mux"

    def __init__(self, name: str, k: int):
        if k < 1:
            raise ValueError(f"mux needs k >= 1 wavelengths, got {k}")
        super().__init__(name, n_inputs=k, n_outputs=1)

    def transfer(self, inputs: list[Signals]) -> list[Signals]:
        self._expect_ports(inputs)
        merged: Signals = []
        seen_carriers: set[int] = set()
        for bundle in inputs:
            for signal in bundle:
                if signal.wavelength in seen_carriers:
                    raise MuxConflictError(
                        f"{self.name}: two signals on carrier {signal.wavelength}"
                    )
                seen_carriers.add(signal.wavelength)
                merged.append(signal)
        return [merged]
