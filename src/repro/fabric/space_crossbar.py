"""The single-wavelength N x N multicast space switch of Fig. 5.

Each input drives a 1-to-N splitter; each splitter branch passes through
an SOA gate (the crosspoint) into the per-output N-to-1 combiner.  With
``N**2`` gates the switch realizes any multicast assignment of one
wavelength: enabling gate ``(i, j)`` connects input ``i`` to output
``j``, and the combiner conflict rule (one active input at a time) is
exactly the no-two-sources-per-output restriction.

The module exposes both a plane *builder* (components added to a host
fabric, used by the MSW crossbar of Fig. 4 to stack ``k`` planes) and a
self-contained :class:`SpaceCrossbar` with terminals, used directly as
the ``k = 1`` network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.components import (
    Combiner,
    InputTerminal,
    OutputTerminal,
    SOAGate,
    Splitter,
)
from repro.fabric.network import OpticalFabric, PropagationResult
from repro.fabric.signal import OpticalSignal

__all__ = ["SpaceCrossbar", "SpacePlane", "build_space_plane"]


@dataclass(frozen=True)
class SpacePlane:
    """Handles to the components of one space plane inside a host fabric.

    Attributes:
        gate_names: ``gate_names[i][j]`` is the crosspoint from input ``i``
            to output ``j``.
        entries: per-input ``(component_name, input_port)`` to feed.
        exits: per-output ``(component_name, output_port)`` producing the
            plane's output fiber.
    """

    n_ports: int
    gate_names: tuple[tuple[str, ...], ...]
    entries: tuple[tuple[str, int], ...]
    exits: tuple[tuple[str, int], ...]


def build_space_plane(fabric: OpticalFabric, prefix: str, n_ports: int) -> SpacePlane:
    """Add an ``n_ports x n_ports`` space plane (Fig. 5) to ``fabric``.

    Args:
        fabric: host fabric receiving the components.
        prefix: unique name prefix for this plane's components.
        n_ports: plane size ``N``.

    Returns:
        Handles for wiring and gate configuration.
    """
    if n_ports < 1:
        raise ValueError(f"plane size must be >= 1, got {n_ports}")
    splitters = [
        fabric.add(Splitter(f"{prefix}.split{i}", n_ports)) for i in range(n_ports)
    ]
    combiners = [
        fabric.add(Combiner(f"{prefix}.comb{j}", n_ports)) for j in range(n_ports)
    ]
    gate_names: list[tuple[str, ...]] = []
    for i in range(n_ports):
        row = []
        for j in range(n_ports):
            gate = fabric.add(SOAGate(f"{prefix}.gate{i}_{j}"))
            fabric.connect(splitters[i], j, gate, 0)
            fabric.connect(gate, 0, combiners[j], i)
            row.append(gate.name)
        gate_names.append(tuple(row))
    return SpacePlane(
        n_ports=n_ports,
        gate_names=tuple(gate_names),
        entries=tuple((splitter.name, 0) for splitter in splitters),
        exits=tuple((combiner.name, 0) for combiner in combiners),
    )


class SpaceCrossbar:
    """A self-contained single-wavelength multicast crossbar (Fig. 5)."""

    def __init__(self, n_ports: int, name: str = "space"):
        self.n_ports = n_ports
        self.fabric = OpticalFabric(name)
        self.plane = build_space_plane(self.fabric, f"{name}.p", n_ports)
        self._inputs = [
            self.fabric.add(InputTerminal(f"{name}.in{i}")) for i in range(n_ports)
        ]
        self._outputs = [
            self.fabric.add(OutputTerminal(f"{name}.out{j}")) for j in range(n_ports)
        ]
        for i in range(n_ports):
            entry_name, entry_port = self.plane.entries[i]
            self.fabric.connect(self._inputs[i], 0, entry_name, entry_port)
        for j in range(n_ports):
            exit_name, exit_port = self.plane.exits[j]
            self.fabric.connect(exit_name, exit_port, self._outputs[j], 0)

    def crosspoint_count(self) -> int:
        """Number of SOA gates; must equal ``N**2``."""
        return self.fabric.crosspoint_count()

    def configure(self, routes: dict[int, set[int] | frozenset[int]]) -> None:
        """Enable gates for ``{input_port: {output_ports}}`` multicast routes.

        Raises ValueError if two routes share an output port (the
        assignment would not be conflict-free).
        """
        claimed: set[int] = set()
        for input_port, output_ports in routes.items():
            overlap = claimed & set(output_ports)
            if overlap:
                raise ValueError(f"output ports used twice: {sorted(overlap)}")
            claimed |= set(output_ports)
        self.fabric.reset_gates()
        for input_port, output_ports in routes.items():
            for output_port in output_ports:
                gate_name = self.plane.gate_names[input_port][output_port]
                gate = self.fabric.component(gate_name)
                gate.enabled = True  # type: ignore[attr-defined]

    def run(self, routes: dict[int, set[int] | frozenset[int]]) -> PropagationResult:
        """Configure, inject one signal per active input, and propagate."""
        self.configure(routes)
        self.fabric.clear_inputs()
        for input_port in routes:
            self._inputs[input_port].inject(
                [OpticalSignal.transmit(input_port, 0)]
            )
        return self.fabric.propagate()

    def delivered(self, routes: dict[int, set[int] | frozenset[int]]) -> dict[int, int]:
        """Run and return the observed ``{output_port: source_port}`` map.

        Raises if any output receives more than one signal.
        """
        result = self.run(routes)
        delivery: dict[int, int] = {}
        for j, terminal in enumerate(self._outputs):
            signals = result.at(terminal.name)
            if len(signals) > 1:
                raise RuntimeError(
                    f"output {j} received {len(signals)} signals"
                )
            if signals:
                delivery[j] = signals[0].source_port
        return delivery
