"""Graphviz DOT export of fabric graphs.

Renders a built fabric as a DOT document -- handy for inspecting the
constructed Figs. 4-7 circuits or a composed three-stage network with
standard tooling (``dot -Tsvg``).  Component kinds get distinct shapes
and enabled gates are highlighted, so a configured fabric shows its
light paths.
"""

from __future__ import annotations

from repro.fabric.components import SOAGate
from repro.fabric.network import OpticalFabric

__all__ = ["to_dot"]

_SHAPES = {
    "input_terminal": ("triangle", "lightblue"),
    "output_terminal": ("invtriangle", "lightblue"),
    "splitter": ("trapezium", "lightgray"),
    "combiner": ("invtrapezium", "lightgray"),
    "soa_gate": ("box", "white"),
    "wavelength_converter": ("diamond", "khaki"),
    "mux": ("house", "lightyellow"),
    "demux": ("invhouse", "lightyellow"),
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(fabric: OpticalFabric, *, rankdir: str = "LR") -> str:
    """Render ``fabric`` as a Graphviz DOT string.

    Args:
        fabric: the fabric to render (any wiring state).
        rankdir: graph orientation (``LR`` reads input -> output).
    """
    lines = [
        f"digraph {_quote(fabric.name)} {{",
        f"  rankdir={rankdir};",
        "  node [fontsize=9];",
    ]
    for component in fabric.components():
        shape, fill = _SHAPES.get(component.kind, ("ellipse", "white"))
        attributes = [f"shape={shape}", f'fillcolor="{fill}"', "style=filled"]
        if isinstance(component, SOAGate) and component.enabled:
            attributes.append('color="red"')
            attributes.append("penwidth=2")
        lines.append(
            f"  {_quote(component.name)} [{', '.join(attributes)}];"
        )
    graph = fabric.graph()
    for src, dst, data in graph.edges(data=True):
        label = f"{data.get('src_port', '?')}->{data.get('dst_port', '?')}"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} [label=\"{label}\", fontsize=7];"
        )
    lines.append("}")
    return "\n".join(lines)
