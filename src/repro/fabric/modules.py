"""Rectangular WDM switching modules, embeddable in a host fabric.

The multistage constructions of Section 3 are built from rectangular
``a x b`` ``k``-wavelength multicast modules, each running under one of
the three models.  This module provides a generic builder that adds such
a module's components to a host :class:`repro.fabric.network.OpticalFabric`
and returns a handle exposing:

* ``entries`` / ``exits`` -- the ``(component, port)`` attachment points
  of the module's ``a`` input and ``b`` output fibers;
* :meth:`WDMModule.route` -- configure one multicast pass through the
  module: from ``(input fiber, wavelength)`` to a set of
  ``(output fiber, wavelength)`` deliveries, enforcing the module
  model's conversion ability (an MSW module cannot change wavelengths;
  an MSDW module converts once per input channel; a MAW module delivers
  on any wavelength via its static output converters).

The square crossbars of Figs. 4-7 (:mod:`repro.fabric.wdm_crossbar`)
and the fabric-backed three-stage network
(:mod:`repro.multistage.fabric_backed`) are both thin wrappers around
these modules, so the same gate/converter structures are exercised by
the crossbar tests and the end-to-end multistage tests.

Component counts per module (validated against
:func:`repro.core.multistage.module_crosspoints` /
``module_converters``):

=======  ================  ==================
model    SOA gates         converters
=======  ================  ==================
MSW      ``k a b``         0
MSDW     ``k**2 a b``      ``a k`` (input side)
MAW      ``k**2 a b``      ``b k`` (output side)
=======  ================  ==================
"""

from __future__ import annotations

from repro.core.models import MulticastModel
from repro.fabric.components import (
    Combiner,
    Demux,
    Mux,
    SOAGate,
    Splitter,
    WavelengthConverter,
)
from repro.fabric.network import OpticalFabric
from repro.fabric.space_crossbar import SpacePlane, build_space_plane

__all__ = ["WDMModule", "build_wdm_module"]


class WDMModule:
    """Handle to one rectangular module's components inside a host fabric."""

    def __init__(
        self,
        fabric: OpticalFabric,
        prefix: str,
        model: MulticastModel,
        n_in: int,
        n_out: int,
        k: int,
    ):
        if n_in < 1 or n_out < 1:
            raise ValueError(
                f"module needs n_in >= 1 and n_out >= 1, got {n_in}x{n_out}"
            )
        if k < 1:
            raise ValueError(f"wavelength count k must be >= 1, got {k}")
        self.fabric = fabric
        self.prefix = prefix
        self.model = model
        self.n_in = n_in
        self.n_out = n_out
        self.k = k
        #: (component name, port) feeding each of the module's input fibers
        self.entries: list[tuple[str, int]] = []
        #: (component name, port) producing each of the module's output fibers
        self.exits: list[tuple[str, int]] = []
        self._gates: dict[tuple[int, int, int, int], str] = {}
        self._planes: list[SpacePlane] = []
        self._input_converters: dict[tuple[int, int], WavelengthConverter] = {}
        self._routed_channels: set[tuple[int, int]] = set()
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        if self.model is MulticastModel.MSW:
            self._build_msw()
        else:
            self._build_full_reach()

    def _build_msw(self) -> None:
        """k parallel rectangular space planes between demuxes and muxes."""
        fabric, prefix = self.fabric, self.prefix
        planes = []
        for w in range(self.k):
            planes.append(
                _build_rect_plane(fabric, f"{prefix}.plane{w}", self.n_in, self.n_out)
            )
        self._planes = planes
        for i in range(self.n_in):
            demux = fabric.add(Demux(f"{prefix}.demux{i}", self.k))
            self.entries.append((demux.name, 0))
            for w in range(self.k):
                entry_name, entry_port = planes[w].entries[i]
                fabric.connect(demux, w, entry_name, entry_port)
        for j in range(self.n_out):
            mux = fabric.add(Mux(f"{prefix}.mux{j}", self.k))
            for w in range(self.k):
                exit_name, exit_port = planes[w].exits[j]
                fabric.connect(exit_name, exit_port, mux, w)
            self.exits.append((mux.name, 0))
        for w, plane in enumerate(planes):
            for i in range(self.n_in):
                for j in range(self.n_out):
                    self._gates[(i, w, j, w)] = plane.gate_names[i][j]

    def _build_full_reach(self) -> None:
        """MSDW/MAW: full (a k) x (b k) gate mesh with converters."""
        fabric, prefix = self.fabric, self.prefix
        a, b, k = self.n_in, self.n_out, self.k
        splitters: dict[tuple[int, int], Splitter] = {}
        for i in range(a):
            demux = fabric.add(Demux(f"{prefix}.demux{i}", k))
            self.entries.append((demux.name, 0))
            for w in range(k):
                splitter = fabric.add(Splitter(f"{prefix}.split{i}_{w}", b * k))
                splitters[(i, w)] = splitter
                if self.model is MulticastModel.MSDW:
                    converter = fabric.add(
                        WavelengthConverter(f"{prefix}.conv_in{i}_{w}")
                    )
                    fabric.connect(demux, w, converter, 0)
                    fabric.connect(converter, 0, splitter, 0)
                    self._input_converters[(i, w)] = converter
                else:
                    fabric.connect(demux, w, splitter, 0)

        combiners: dict[tuple[int, int], Combiner] = {}
        for j in range(b):
            mux = fabric.add(Mux(f"{prefix}.mux{j}", k))
            self.exits.append((mux.name, 0))
            for v in range(k):
                combiner = fabric.add(Combiner(f"{prefix}.comb{j}_{v}", a * k))
                combiners[(j, v)] = combiner
                if self.model is MulticastModel.MAW:
                    converter = fabric.add(
                        WavelengthConverter(f"{prefix}.conv_out{j}_{v}", v)
                    )
                    fabric.connect(combiner, 0, converter, 0)
                    fabric.connect(converter, 0, mux, v)
                else:
                    fabric.connect(combiner, 0, mux, v)

        for i in range(a):
            for w in range(k):
                for j in range(b):
                    for v in range(k):
                        gate = fabric.add(
                            SOAGate(f"{prefix}.gate{i}_{w}__{j}_{v}")
                        )
                        fabric.connect(splitters[(i, w)], j * k + v, gate, 0)
                        fabric.connect(gate, 0, combiners[(j, v)], i * k + w)
                        self._gates[(i, w, j, v)] = gate.name

    # -- configuration -------------------------------------------------------

    def reset(self) -> None:
        """Disable all routes (gates off, MSDW converters transparent)."""
        for gate_name in self._gates.values():
            self.fabric.component(gate_name).enabled = False  # type: ignore[attr-defined]
        for converter in self._input_converters.values():
            converter.target_wavelength = None
        self._routed_channels.clear()

    def route(
        self,
        in_fiber: int,
        in_wavelength: int,
        deliveries: list[tuple[int, int]],
    ) -> None:
        """Configure one multicast pass through the module.

        Args:
            in_fiber: module-local input fiber index.
            in_wavelength: carrier on which the signal arrives.
            deliveries: ``(output fiber, output wavelength)`` pairs; at
                most one per output fiber.

        Raises:
            ValueError: the module's model cannot realize the requested
                wavelength pattern, the input channel is already routed,
                or a delivery list is malformed.
        """
        if not deliveries:
            raise ValueError("a route needs at least one delivery")
        if not 0 <= in_fiber < self.n_in:
            raise ValueError(f"input fiber {in_fiber} outside [0, {self.n_in})")
        if not 0 <= in_wavelength < self.k:
            raise ValueError(
                f"input wavelength {in_wavelength} outside [0, {self.k})"
            )
        fibers = [fiber for fiber, _ in deliveries]
        if len(fibers) != len(set(fibers)):
            raise ValueError("two deliveries on the same output fiber")
        for fiber, wavelength in deliveries:
            if not 0 <= fiber < self.n_out:
                raise ValueError(f"output fiber {fiber} outside [0, {self.n_out})")
            if not 0 <= wavelength < self.k:
                raise ValueError(
                    f"output wavelength {wavelength} outside [0, {self.k})"
                )
        if (in_fiber, in_wavelength) in self._routed_channels:
            raise ValueError(
                f"input channel (fiber {in_fiber}, wavelength {in_wavelength}) "
                "already carries a route"
            )

        out_wavelengths = [wavelength for _, wavelength in deliveries]
        if self.model is MulticastModel.MSW:
            if any(w != in_wavelength for w in out_wavelengths):
                raise ValueError(
                    "an MSW module cannot convert wavelengths: input "
                    f"{in_wavelength}, outputs {out_wavelengths}"
                )
        elif self.model is MulticastModel.MSDW:
            if len(set(out_wavelengths)) != 1:
                raise ValueError(
                    "an MSDW module delivers every branch on one wavelength; "
                    f"got {out_wavelengths}"
                )
            self._input_converters[(in_fiber, in_wavelength)].target_wavelength = (
                out_wavelengths[0]
            )

        for fiber, wavelength in deliveries:
            gate_name = self._gates[(in_fiber, in_wavelength, fiber, wavelength)]
            self.fabric.component(gate_name).enabled = True  # type: ignore[attr-defined]
        self._routed_channels.add((in_fiber, in_wavelength))

    # -- accounting ------------------------------------------------------------

    def gate_count(self) -> int:
        """Number of SOA gates in this module."""
        return len(self._gates)

    def converter_count(self) -> int:
        """Number of converters in this module."""
        if self.model is MulticastModel.MSW:
            return 0
        if self.model is MulticastModel.MSDW:
            return self.n_in * self.k
        return self.n_out * self.k


def _build_rect_plane(
    fabric: OpticalFabric, prefix: str, n_in: int, n_out: int
) -> SpacePlane:
    """A rectangular single-wavelength multicast plane (Fig. 5, a x b)."""
    if n_in == n_out:
        return build_space_plane(fabric, prefix, n_in)
    splitters = [
        fabric.add(Splitter(f"{prefix}.split{i}", n_out)) for i in range(n_in)
    ]
    combiners = [
        fabric.add(Combiner(f"{prefix}.comb{j}", n_in)) for j in range(n_out)
    ]
    gate_names: list[tuple[str, ...]] = []
    for i in range(n_in):
        row = []
        for j in range(n_out):
            gate = fabric.add(SOAGate(f"{prefix}.gate{i}_{j}"))
            fabric.connect(splitters[i], j, gate, 0)
            fabric.connect(gate, 0, combiners[j], i)
            row.append(gate.name)
        gate_names.append(tuple(row))
    return SpacePlane(
        n_ports=max(n_in, n_out),
        gate_names=tuple(gate_names),
        entries=tuple((splitter.name, 0) for splitter in splitters),
        exits=tuple((combiner.name, 0) for combiner in combiners),
    )


def build_wdm_module(
    fabric: OpticalFabric,
    prefix: str,
    model: MulticastModel,
    n_in: int,
    n_out: int,
    k: int,
) -> WDMModule:
    """Add a rectangular WDM multicast module to ``fabric`` and return it."""
    return WDMModule(fabric, prefix, model, n_in, n_out, k)
