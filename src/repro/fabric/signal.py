"""Optical signals flowing through a fabric.

A signal remembers where it entered the network (``source_port``,
``source_wavelength``) so the delivery checks can verify not just *that*
light arrives at an output endpoint but that it is the *right* light.
The ``wavelength`` field is the signal's current carrier and changes
only at a :class:`repro.fabric.components.WavelengthConverter`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["OpticalSignal"]


@dataclass(frozen=True)
class OpticalSignal:
    """A lightwave on one carrier wavelength.

    Attributes:
        source_port: input port where the signal entered the network.
        source_wavelength: wavelength of the transmitter that produced it.
        wavelength: current carrier wavelength (changes at converters).
        payload: opaque label for debugging/tracing (defaults to a
            ``"port/wavelength"`` tag).
    """

    source_port: int
    source_wavelength: int
    wavelength: int
    payload: str = ""

    def __post_init__(self) -> None:
        if self.source_port < 0:
            raise ValueError(f"source_port must be >= 0, got {self.source_port}")
        if self.source_wavelength < 0:
            raise ValueError(
                f"source_wavelength must be >= 0, got {self.source_wavelength}"
            )
        if self.wavelength < 0:
            raise ValueError(f"wavelength must be >= 0, got {self.wavelength}")
        if not self.payload:
            object.__setattr__(
                self, "payload", f"s{self.source_port}w{self.source_wavelength}"
            )

    @classmethod
    def transmit(cls, port: int, wavelength: int, payload: str = "") -> OpticalSignal:
        """A fresh signal leaving transmitter ``wavelength`` of ``port``."""
        return cls(
            source_port=port,
            source_wavelength=wavelength,
            wavelength=wavelength,
            payload=payload,
        )

    def converted_to(self, wavelength: int) -> OpticalSignal:
        """The same signal on a new carrier (what a converter emits)."""
        return replace(self, wavelength=wavelength)

    def same_origin(self, other: OpticalSignal) -> bool:
        """True if both signals carry the same source's data."""
        return (
            self.source_port == other.source_port
            and self.source_wavelength == other.source_wavelength
        )
