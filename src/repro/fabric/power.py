"""Optical power budget and crosstalk accounting.

Section 2.3 remarks that "though not a direct measure, the number of
crosspoints may also be used to project the crosstalk and power loss
inside a WDM switch".  This module makes the projection direct: given a
built fabric (crossbar or composed multistage network), it computes

* the **worst-case insertion loss** of any input->output light path --
  splitting loss ``10 log10(fanout)`` at splitters, combining loss
  ``10 log10(fanin)`` at passive combiners, plus fixed per-component
  insertion losses (and optional SOA gain, which is negative loss);
* the **crosstalk stage count** -- the maximum number of SOA gates
  cascaded on any path, the standard first-order proxy for accumulated
  crosstalk in gate-based optical switches.

Both are exact longest-path computations over the fabric DAG, so they
reflect the *actual constructed* network, not an idealized formula.
The benchmark ``bench_power.py`` uses them to quantify the flip side of
Table 2: the multistage design saves gates but pays more optical loss
per path (three cascaded modules), a trade-off the paper's crosspoint
metric alone does not show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.fabric.components import Component, InputTerminal, OutputTerminal
from repro.fabric.network import OpticalFabric

__all__ = ["LossBudget", "PowerReport", "analyze_power"]


@dataclass(frozen=True)
class LossBudget:
    """Per-component insertion losses in dB (positive = loss).

    Defaults are typical textbook values for integrated optical
    switching fabrics; adjust to taste -- the comparisons in the
    benchmarks are insensitive to the exact constants.
    """

    splitter_excess_db: float = 0.5
    combiner_excess_db: float = 0.5
    gate_insertion_db: float = 1.0
    gate_gain_db: float = 0.0  # SOAs can amplify; positive gain offsets loss
    converter_insertion_db: float = 2.0
    mux_insertion_db: float = 1.5
    demux_insertion_db: float = 1.5

    def component_loss(self, component: Component) -> float:
        """Loss (dB) contributed by passing through ``component``."""
        kind = component.kind
        if kind == "splitter":
            return 10.0 * math.log10(component.n_outputs) + self.splitter_excess_db
        if kind == "combiner":
            return 10.0 * math.log10(component.n_inputs) + self.combiner_excess_db
        if kind == "soa_gate":
            return self.gate_insertion_db - self.gate_gain_db
        if kind == "wavelength_converter":
            return self.converter_insertion_db
        if kind == "mux":
            return self.mux_insertion_db
        if kind == "demux":
            return self.demux_insertion_db
        return 0.0  # terminals


@dataclass(frozen=True)
class PowerReport:
    """Worst-case optical path metrics of one fabric."""

    fabric_name: str
    worst_loss_db: float
    worst_loss_path: tuple[str, ...]
    max_gate_cascade: int
    max_path_components: int
    budget: LossBudget = field(compare=False, default_factory=LossBudget)

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.fabric_name}: worst path {self.worst_loss_db:.1f} dB over "
            f"{self.max_path_components} components, "
            f"{self.max_gate_cascade} cascaded gates"
        )


def analyze_power(
    fabric: OpticalFabric, budget: LossBudget | None = None
) -> PowerReport:
    """Longest-loss-path analysis of a fabric.

    Computes, over every structural input-terminal -> output-terminal
    path (independent of gate configuration -- light *can* take the
    path when the gates on it are enabled):

    * the maximum total insertion loss;
    * the maximum number of cascaded SOA gates (crosstalk stages);
    * the maximum component count on a path.

    Args:
        fabric: a wired fabric (wiring is validated first).
        budget: per-component losses; defaults to :class:`LossBudget`.

    Returns:
        The :class:`PowerReport`.

    Raises:
        repro.fabric.components.FabricError: unwired inputs or cycles.
        ValueError: the fabric has no input->output path.
    """
    budget = budget or LossBudget()
    fabric.check_wiring()
    graph = fabric.graph()

    import networkx as nx

    order = list(nx.topological_sort(graph))
    # Three independent longest-path DPs: loss, gate count, component count
    # (the max-gates path need not coincide with the max-loss path).
    loss_best: dict[str, tuple[float, str | None]] = {}
    gates_best: dict[str, int] = {}
    count_best: dict[str, int] = {}
    for name in order:
        component = fabric.component(name)
        loss_here = budget.component_loss(component)
        gate_here = 1 if component.kind == "soa_gate" else 0
        if isinstance(component, InputTerminal):
            loss_best[name] = (loss_here, None)
            gates_best[name] = gate_here
            count_best[name] = 1
            continue
        reachable = [p for p in graph.predecessors(name) if p in loss_best]
        if not reachable:
            continue  # not reachable from any input terminal
        incoming = max(reachable, key=lambda p: loss_best[p][0])
        loss_best[name] = (loss_best[incoming][0] + loss_here, incoming)
        gates_best[name] = max(gates_best[p] for p in reachable) + gate_here
        count_best[name] = max(count_best[p] for p in reachable) + 1

    terminal_names = [
        name
        for name in loss_best
        if isinstance(fabric.component(name), OutputTerminal)
    ]
    if not terminal_names:
        raise ValueError(f"{fabric.name}: no input->output path found")

    worst_name = max(terminal_names, key=lambda name: loss_best[name][0])
    worst_loss = loss_best[worst_name][0]
    max_gates = max(gates_best[name] for name in terminal_names)
    max_components = max(count_best[name] for name in terminal_names)

    # Reconstruct the worst-loss path for the report.
    path: list[str] = []
    cursor: str | None = worst_name
    while cursor is not None:
        path.append(cursor)
        cursor = loss_best[cursor][1]
    path.reverse()

    return PowerReport(
        fabric_name=fabric.name,
        worst_loss_db=worst_loss,
        worst_loss_path=tuple(path),
        max_gate_cascade=max_gates,
        max_path_components=max_components,
        budget=budget,
    )
