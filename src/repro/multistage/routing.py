"""The x-middle-switch routing strategy -- Lemma 4 made executable.

The paper (following [14]) routes each multicast connection through at
most ``x`` middle switches.  Lemma 4 (and its multiset generalization)
says a request with destination set ``D`` can be realized through
middle switches ``j_1..j_x`` iff the intersection of their destination
(multi)sets, restricted to ``D``, is null -- equivalently, iff every
``p`` in ``D`` is *coverable* by at least one chosen middle switch.

So routing is a set-cover problem with a cardinality cap.  We solve it
exactly:

1. **greedy first** -- pick the candidate covering the most uncovered
   destinations; this finds a cover quickly in the common case;
2. **exact fallback** -- depth-first search over candidate subsets of
   size <= ``x`` (with standard dominance pruning).  Only if the exact
   search fails is the request declared blocked, which is what makes
   the simulator a faithful test of the theorems: they promise a cover
   *exists*, not that greedy finds it.

Two interchangeable kernels implement the search:

* the **bitmask kernel** (:func:`find_cover_bits`, the default) encodes
  destination sets as int bitmasks (``1 << p`` per output module) and
  runs set algebra as single-word ``&``/``|``/``bit_count`` operations;
* the **frozenset reference** (:func:`find_cover_reference`) is the
  original pure-``frozenset`` implementation, kept verbatim as the
  correctness oracle for the kernel-equivalence tests and the
  ``bench_perf`` baseline.

Both kernels produce *bit-identical* covers: candidate ordering, greedy
tie-breaking, DFS expansion order and the final destination->switch
assignment are defined identically.  :func:`set_routing_kernel` /
:func:`routing_kernel` switch the active kernel process-wide (used by
benchmarks; tests pin one explicitly).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager

from repro.engine.cover import (
    CoverSearch,
    find_cover_bits,
    iter_bits,
    mask_of,
)

__all__ = [
    "CoverSearch",
    "find_cover",
    "find_cover_bits",
    "find_cover_reference",
    "get_routing_kernel",
    "iter_bits",
    "mask_of",
    "routing_kernel",
    "set_routing_kernel",
]

#: the process-wide active kernel: ``"bitmask"``, ``"batched"`` or
#: ``"reference"``.  ``"batched"`` routes single requests exactly like
#: ``"bitmask"`` (same cover search, same covers); it additionally makes
#: the Monte-Carlo estimators run all replications in lockstep through
#: :mod:`repro.perf.batch` instead of one network at a time.
_ACTIVE_KERNEL = "bitmask"
_KERNELS = ("bitmask", "batched", "reference")


def get_routing_kernel() -> str:
    """Name of the active cover-search kernel."""
    return _ACTIVE_KERNEL


def set_routing_kernel(name: str) -> None:
    """Select the cover-search kernel (one of ``_KERNELS``)."""
    global _ACTIVE_KERNEL
    if name not in _KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {_KERNELS}")
    _ACTIVE_KERNEL = name


@contextmanager
def routing_kernel(name: str) -> Iterator[None]:
    """Context manager pinning the cover-search kernel."""
    previous = _ACTIVE_KERNEL
    set_routing_kernel(name)
    try:
        yield
    finally:
        set_routing_kernel(previous)


# The bitmask kernel (mask_of, iter_bits, CoverSearch, find_cover_bits)
# lives in repro.engine.cover -- the engine is the layer below this one
# -- and is re-exported here unchanged for every existing caller.

# -- frozenset reference kernel ---------------------------------------------


def _greedy(
    destinations: frozenset,
    coverable: Mapping[int, frozenset],
    candidates: Sequence[int],
    max_switches: int,
) -> dict[int, list] | None:
    """Max-coverage greedy; ties broken by position in ``candidates``.

    The caller controls the candidate order, which is how the selection
    strategies (first-fit, least-loaded, packing, random) plug in
    without touching the correctness-critical search.
    """
    uncovered = set(destinations)
    chosen: dict[int, list] = {}
    while uncovered and len(chosen) < max_switches:
        best = None
        best_gain: frozenset = frozenset()
        for j in candidates:
            if j in chosen:
                continue
            gain = coverable[j] & uncovered
            if len(gain) > len(best_gain):
                best, best_gain = j, frozenset(gain)
        if best is None or not best_gain:
            return None
        chosen[best] = sorted(best_gain)
        uncovered -= best_gain
    return chosen if not uncovered else None


def _exact(
    destinations: frozenset,
    coverable: Mapping[int, frozenset],
    candidates: Sequence[int],
    max_switches: int,
    stats: CoverSearch,
) -> dict[int, list] | None:
    # Keep only useful candidates, largest coverage first (helps pruning).
    useful = [j for j in candidates if coverable[j] & destinations]
    useful.sort(key=lambda j: -len(coverable[j] & destinations))

    def recurse(
        uncovered: frozenset, start: int, picked: list[int]
    ) -> list[int] | None:
        stats.exact_nodes += 1
        if not uncovered:
            return picked
        if len(picked) == max_switches:
            return None
        remaining_slots = max_switches - len(picked)
        # Bound: even taking the largest remaining coverages can't finish.
        best_possible = sum(
            sorted(
                (len(coverable[j] & uncovered) for j in useful[start:]),
                reverse=True,
            )[:remaining_slots]
        )
        if best_possible < len(uncovered):
            return None
        for index in range(start, len(useful)):
            j = useful[index]
            gain = coverable[j] & uncovered
            if not gain:
                continue
            result = recurse(uncovered - gain, index + 1, [*picked, j])
            if result is not None:
                return result
        return None

    picked = recurse(destinations, 0, [])
    if picked is None:
        return None
    # Assign each destination to the first picked switch that covers it.
    cover: dict[int, list] = {j: [] for j in picked}
    for p in sorted(destinations):
        for j in picked:
            if p in coverable[j]:
                cover[j].append(p)
                break
    return {j: ps for j, ps in cover.items() if ps}


def find_cover_reference(
    destinations: frozenset | set,
    coverable: Mapping[int, frozenset],
    max_switches: int,
    *,
    stats: CoverSearch | None = None,
    preference: Sequence[int] | None = None,
) -> dict[int, list] | None:
    """The original frozenset cover search (correctness oracle).

    Same contract as :func:`find_cover`; kept as an independent
    reference implementation that the bitmask kernel is tested against
    and that ``benchmarks/bench_perf.py`` uses as its baseline.
    """
    destinations = frozenset(destinations)
    if not destinations:
        return {}
    if max_switches < 1:
        raise ValueError(f"max_switches must be >= 1, got {max_switches}")
    stats = stats if stats is not None else CoverSearch()
    candidates = sorted(coverable)
    if preference is not None:
        in_preference = [j for j in preference if j in coverable]
        rest = [j for j in candidates if j not in set(in_preference)]
        candidates = in_preference + rest
    greedy = _greedy(destinations, coverable, candidates, max_switches)
    if greedy is not None:
        stats.greedy_hit = True
        stats.cover = greedy
        return greedy
    exact = _exact(destinations, coverable, sorted(coverable), max_switches, stats)
    stats.cover = exact
    return exact


# -- public entry point ------------------------------------------------------


def find_cover(
    destinations: frozenset | set,
    coverable: Mapping[int, frozenset],
    max_switches: int,
    *,
    stats: CoverSearch | None = None,
    preference: Sequence[int] | None = None,
) -> dict[int, list] | None:
    """Find <= ``max_switches`` middle switches covering ``destinations``.

    Args:
        destinations: output modules the request must reach (any sortable
            hashable labels).
        coverable: for each *available* middle switch, the set of output
            modules reachable through it right now (``D``-restricted or
            not -- extra elements are ignored).
        max_switches: the routing parameter ``x``.
        stats: optional search-statistics accumulator.
        preference: candidate order used for greedy tie-breaking (the
            selection strategy); defaults to ascending index.  Middles
            missing from ``preference`` are appended in index order; the
            exact fallback ignores preference (correctness first).

    Returns:
        ``{middle_switch: [assigned destinations]}`` or None if no cover
        of size <= ``max_switches`` exists (the request is blocked).

    Dispatches to the active kernel (bitmask by default); both kernels
    return bit-identical covers.
    """
    if _ACTIVE_KERNEL == "reference":
        return find_cover_reference(
            destinations,
            coverable,
            max_switches,
            stats=stats,
            preference=preference,
        )
    destinations = frozenset(destinations)
    if not destinations:
        return {}
    # Map labels to bits in sorted order, so ascending-bit iteration in
    # the kernel equals sorted-label iteration in the reference.
    labels = sorted(destinations)
    index = {label: i for i, label in enumerate(labels)}
    dest_mask = (1 << len(labels)) - 1
    coverable_bits = {
        j: mask_of(index[p] for p in reach if p in index)
        for j, reach in coverable.items()
    }
    stats = stats if stats is not None else CoverSearch()
    cover_bits = find_cover_bits(
        dest_mask,
        coverable_bits,
        max_switches,
        stats=stats,
        preference=preference,
    )
    if cover_bits is None:
        stats.cover = None
        return None
    cover = {
        j: [labels[i] for i in iter_bits(bits)] for j, bits in cover_bits.items()
    }
    stats.cover = cover
    return cover
