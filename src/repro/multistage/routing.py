"""The x-middle-switch routing strategy -- Lemma 4 made executable.

The paper (following [14]) routes each multicast connection through at
most ``x`` middle switches.  Lemma 4 (and its multiset generalization)
says a request with destination set ``D`` can be realized through
middle switches ``j_1..j_x`` iff the intersection of their destination
(multi)sets, restricted to ``D``, is null -- equivalently, iff every
``p`` in ``D`` is *coverable* by at least one chosen middle switch.

So routing is a set-cover problem with a cardinality cap.  We solve it
exactly:

1. **greedy first** -- pick the candidate covering the most uncovered
   destinations; this finds a cover quickly in the common case;
2. **exact fallback** -- depth-first search over candidate subsets of
   size <= ``x`` (with standard dominance pruning).  Only if the exact
   search fails is the request declared blocked, which is what makes
   the simulator a faithful test of the theorems: they promise a cover
   *exists*, not that greedy finds it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["CoverSearch", "find_cover"]


@dataclass
class CoverSearch:
    """Statistics of one cover search (exposed for tests/benchmarks)."""

    greedy_hit: bool = False
    exact_nodes: int = 0
    cover: dict[int, list[int]] | None = field(default=None)


def _greedy(
    destinations: frozenset[int],
    coverable: Mapping[int, frozenset[int]],
    candidates: Sequence[int],
    max_switches: int,
) -> dict[int, list[int]] | None:
    """Max-coverage greedy; ties broken by position in ``candidates``.

    The caller controls the candidate order, which is how the selection
    strategies (first-fit, least-loaded, packing, random) plug in
    without touching the correctness-critical search.
    """
    uncovered = set(destinations)
    chosen: dict[int, list[int]] = {}
    while uncovered and len(chosen) < max_switches:
        best = None
        best_gain: frozenset[int] = frozenset()
        for j in candidates:
            if j in chosen:
                continue
            gain = coverable[j] & uncovered
            if len(gain) > len(best_gain):
                best, best_gain = j, frozenset(gain)
        if best is None or not best_gain:
            return None
        chosen[best] = sorted(best_gain)
        uncovered -= best_gain
    return chosen if not uncovered else None


def _exact(
    destinations: frozenset[int],
    coverable: Mapping[int, frozenset[int]],
    candidates: Sequence[int],
    max_switches: int,
    stats: CoverSearch,
) -> dict[int, list[int]] | None:
    # Keep only useful candidates, largest coverage first (helps pruning).
    useful = [j for j in candidates if coverable[j] & destinations]
    useful.sort(key=lambda j: -len(coverable[j] & destinations))

    def recurse(
        uncovered: frozenset[int], start: int, picked: list[int]
    ) -> list[int] | None:
        stats.exact_nodes += 1
        if not uncovered:
            return picked
        if len(picked) == max_switches:
            return None
        remaining_slots = max_switches - len(picked)
        # Bound: even taking the largest remaining coverages can't finish.
        best_possible = sum(
            sorted(
                (len(coverable[j] & uncovered) for j in useful[start:]),
                reverse=True,
            )[:remaining_slots]
        )
        if best_possible < len(uncovered):
            return None
        for index in range(start, len(useful)):
            j = useful[index]
            gain = coverable[j] & uncovered
            if not gain:
                continue
            result = recurse(uncovered - gain, index + 1, [*picked, j])
            if result is not None:
                return result
        return None

    picked = recurse(destinations, 0, [])
    if picked is None:
        return None
    # Assign each destination to the first picked switch that covers it.
    cover: dict[int, list[int]] = {j: [] for j in picked}
    for p in sorted(destinations):
        for j in picked:
            if p in coverable[j]:
                cover[j].append(p)
                break
    return {j: ps for j, ps in cover.items() if ps}


def find_cover(
    destinations: frozenset[int] | set[int],
    coverable: Mapping[int, frozenset[int]],
    max_switches: int,
    *,
    stats: CoverSearch | None = None,
    preference: Sequence[int] | None = None,
) -> dict[int, list[int]] | None:
    """Find <= ``max_switches`` middle switches covering ``destinations``.

    Args:
        destinations: output modules the request must reach.
        coverable: for each *available* middle switch, the set of output
            modules reachable through it right now (``D``-restricted or
            not -- extra elements are ignored).
        max_switches: the routing parameter ``x``.
        stats: optional search-statistics accumulator.
        preference: candidate order used for greedy tie-breaking (the
            selection strategy); defaults to ascending index.  Middles
            missing from ``preference`` are appended in index order; the
            exact fallback ignores preference (correctness first).

    Returns:
        ``{middle_switch: [assigned destinations]}`` or None if no cover
        of size <= ``max_switches`` exists (the request is blocked).
    """
    destinations = frozenset(destinations)
    if not destinations:
        return {}
    if max_switches < 1:
        raise ValueError(f"max_switches must be >= 1, got {max_switches}")
    stats = stats if stats is not None else CoverSearch()
    candidates = sorted(coverable)
    if preference is not None:
        in_preference = [j for j in preference if j in coverable]
        rest = [j for j in candidates if j not in set(in_preference)]
        candidates = in_preference + rest
    greedy = _greedy(destinations, coverable, candidates, max_switches)
    if greedy is not None:
        stats.greedy_hit = True
        stats.cover = greedy
        return greedy
    exact = _exact(destinations, coverable, sorted(coverable), max_switches, stats)
    stats.cover = exact
    return exact
