"""Recursive (5-, 7-, ...-stage) constructions -- Section 3's remark.

"In general, a network can have any odd number of stages and be built in
a recursive fashion from these switching modules, which are in fact
regarded as networks of a smaller size."

Under the MSW-dominant construction the middle-stage modules are square
``r x r`` MSW networks, so each can itself be replaced by a nonblocking
three-stage MSW network, yielding five stages, and so on.  This module
computes the cheapest such recursive design by dynamic programming over
square MSW network sizes:

    C(s) = min( k s**2,
                min over s = n*r, x:  r*k*n*m  +  m*C(r)  +  r*k*m*n )

with ``m`` the minimal Theorem-1 middle count for ``(n, r, x)``.  The
outermost output stage then carries the network's model (adding the
``k**2`` factor and converters for MSDW/MAW), exactly as in the
three-stage cost analysis.

For large ``N`` the recursion beats the flat three-stage design -- the
classical ``O(N (log N)^{...})`` multistage behaviour -- which the
benchmark ``benchmarks/bench_recursive.py`` demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    min_middle_switches_msw_dominant,
    module_converters,
    module_crosspoints,
    valid_x_range,
)

__all__ = ["RecursiveDesign", "best_recursive_design", "recursive_msw_crosspoints"]


@dataclass(frozen=True)
class RecursiveDesign:
    """A recursively decomposed nonblocking MSW-dominant design.

    ``structure`` describes the decomposition: either ``("crossbar", s)``
    or ``("clos", n, r, m, x, middle_structure)``.
    """

    n_ports: int
    k: int
    model: MulticastModel
    crosspoints: int
    converters: int
    stages: int
    structure: tuple

    def describe(self, indent: int = 0) -> str:
        """Readable multi-line description of the decomposition tree."""
        return _describe(self.structure, self.k, indent)


def _describe(structure: tuple, k: int, indent: int) -> str:
    pad = "  " * indent
    if structure[0] == "crossbar":
        return f"{pad}crossbar {structure[1]}x{structure[1]} (k={k})"
    _, n, r, m, x, inner = structure
    lines = [
        f"{pad}clos n={n} r={r} m={m} x={x} (k={k}); middle modules:",
        _describe(inner, k, indent + 1),
    ]
    return "\n".join(lines)


@lru_cache(maxsize=None)
def _best_square_msw(s: int, k: int, max_depth: int) -> tuple[int, int, tuple]:
    """Cheapest nonblocking square MSW network of size ``s``.

    Returns ``(crosspoints, stages, structure)``.
    """
    crossbar_cost = k * s * s
    best = (crossbar_cost, 1, ("crossbar", s))
    if max_depth <= 0 or s < 4:
        return best
    for n in range(2, s):
        if s % n:
            continue
        r = s // n
        if r < 2:
            continue
        for x in valid_x_range(n, r):
            m = min_middle_switches_msw_dominant(n, r, k, x=x)
            middle_cost, middle_stages, middle_structure = _best_square_msw(
                r, k, max_depth - 1
            )
            crosspoints = (
                r * module_crosspoints(MulticastModel.MSW, n, m, k)
                + m * middle_cost
                + r * module_crosspoints(MulticastModel.MSW, m, n, k)
            )
            stages = 2 + middle_stages
            if crosspoints < best[0] or (
                crosspoints == best[0] and stages < best[1]
            ):
                best = (crosspoints, stages, ("clos", n, r, m, x, middle_structure))
    return best


def recursive_msw_crosspoints(n_ports: int, k: int, max_depth: int = 8) -> int:
    """Crosspoints of the best recursive MSW design (model = MSW)."""
    if n_ports < 1 or k < 1:
        raise ValueError(f"need N >= 1 and k >= 1, got N={n_ports}, k={k}")
    return _best_square_msw(n_ports, k, max_depth)[0]


def best_recursive_design(
    n_ports: int,
    k: int,
    model: MulticastModel = MulticastModel.MSW,
    *,
    max_depth: int = 8,
) -> RecursiveDesign:
    """Cheapest recursive MSW-dominant design under ``model``.

    For the MSW model the whole network is the recursive square MSW
    network.  For MSDW/MAW, the outermost layer is a three-stage
    MSW-dominant network whose output stage runs under ``model`` (the
    inner square recursion stays MSW), mirroring the paper's
    construction method.

    Args:
        n_ports: network size ``N``.
        k: wavelengths per fiber.
        model: network model.
        max_depth: recursion depth cap (8 is effectively unbounded for
            any practical ``N``).
    """
    if n_ports < 2:
        raise ValueError(f"need N >= 2, got {n_ports}")
    if model is MulticastModel.MSW:
        crosspoints, stages, structure = _best_square_msw(n_ports, k, max_depth)
        return RecursiveDesign(
            n_ports=n_ports,
            k=k,
            model=model,
            crosspoints=crosspoints,
            converters=0,
            stages=stages,
            structure=structure,
        )

    # MSDW/MAW: outermost Clos layer with a model-typed output stage.
    # The middle count must meet the corrected model-aware bound (the
    # paper's Theorem 1 under-provisions MSDW/MAW for k > 1).
    from repro.core.corrected import min_middle_switches_corrected
    from repro.core.models import Construction

    crossbar_crosspoints = k * k * n_ports * n_ports
    crossbar_converters = n_ports * k
    best = RecursiveDesign(
        n_ports=n_ports,
        k=k,
        model=model,
        crosspoints=crossbar_crosspoints,
        converters=crossbar_converters,
        stages=1,
        structure=("crossbar", n_ports),
    )
    for n in range(2, n_ports):
        if n_ports % n:
            continue
        r = n_ports // n
        if r < 2:
            continue
        for x in valid_x_range(n, r):
            m = min_middle_switches_corrected(
                n, r, k, Construction.MSW_DOMINANT, model, x=x
            )
            middle_cost, middle_stages, middle_structure = _best_square_msw(
                r, k, max_depth - 1
            )
            crosspoints = (
                r * module_crosspoints(MulticastModel.MSW, n, m, k)
                + m * middle_cost
                + r * module_crosspoints(model, m, n, k)
            )
            converters = r * module_converters(model, m, n, k)
            stages = 2 + middle_stages
            if (crosspoints, converters) < (best.crosspoints, best.converters):
                best = RecursiveDesign(
                    n_ports=n_ports,
                    k=k,
                    model=model,
                    crosspoints=crosspoints,
                    converters=converters,
                    stages=stages,
                    structure=("clos", n, r, m, x, middle_structure),
                )
    return best
