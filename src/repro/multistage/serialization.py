"""JSON (de)serialization for connections, witnesses and designs.

Blocking witnesses and optimized designs are the artifacts users want
to save, share and replay; this module round-trips them through plain
JSON-compatible dictionaries (no pickling, so files are portable and
diff-able).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.models import parse_construction, parse_multicast_model
from repro.core.multistage import MultistageDesign, multistage_cost
from repro.multistage.adversary import BlockingWitness
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection

__all__ = [
    "assignment_from_dict",
    "assignment_to_dict",
    "connection_from_dict",
    "connection_to_dict",
    "design_from_dict",
    "design_to_dict",
    "dumps",
    "loads",
    "witness_from_dict",
    "witness_to_dict",
]


# -- connections -------------------------------------------------------


def connection_to_dict(connection: MulticastConnection) -> dict[str, Any]:
    """``{"source": [port, w], "destinations": [[port, w], ...]}``."""
    return {
        "source": [connection.source.port, connection.source.wavelength],
        "destinations": sorted(
            [d.port, d.wavelength] for d in connection.destinations
        ),
    }


def connection_from_dict(payload: dict[str, Any]) -> MulticastConnection:
    """Inverse of :func:`connection_to_dict`."""
    source = Endpoint(*payload["source"])
    destinations = [Endpoint(port, w) for port, w in payload["destinations"]]
    return MulticastConnection(source, destinations)


def assignment_to_dict(assignment: MulticastAssignment) -> dict[str, Any]:
    """``{"connections": [...]}`` in source order."""
    return {
        "connections": [
            connection_to_dict(connection) for connection in assignment
        ]
    }


def assignment_from_dict(payload: dict[str, Any]) -> MulticastAssignment:
    """Inverse of :func:`assignment_to_dict`."""
    return MulticastAssignment(
        connection_from_dict(item) for item in payload["connections"]
    )


# -- witnesses ----------------------------------------------------------


def witness_to_dict(witness: BlockingWitness) -> dict[str, Any]:
    """Serialize a replayable blocking witness."""
    return {
        "kind": "blocking_witness",
        "n": witness.n,
        "r": witness.r,
        "m": witness.m,
        "k": witness.k,
        "construction": witness.construction.name,
        "model": witness.model.value,
        "x": witness.x,
        "prior": [connection_to_dict(c) for c in witness.prior],
        "blocked_request": connection_to_dict(witness.blocked_request),
    }


def witness_from_dict(payload: dict[str, Any]) -> BlockingWitness:
    """Inverse of :func:`witness_to_dict` (validates the kind tag)."""
    if payload.get("kind") != "blocking_witness":
        raise ValueError(f"not a blocking witness payload: {payload.get('kind')!r}")
    return BlockingWitness(
        n=payload["n"],
        r=payload["r"],
        m=payload["m"],
        k=payload["k"],
        construction=parse_construction(payload["construction"]),
        model=parse_multicast_model(payload["model"]),
        x=payload["x"],
        prior=tuple(connection_from_dict(item) for item in payload["prior"]),
        blocked_request=connection_from_dict(payload["blocked_request"]),
    )


# -- designs --------------------------------------------------------------


def design_to_dict(design: MultistageDesign) -> dict[str, Any]:
    """Serialize an optimized three-stage design (costs are recomputed
    on load, so the payload carries only the free parameters)."""
    return {
        "kind": "multistage_design",
        "n": design.n,
        "r": design.r,
        "m": design.m,
        "x": design.x,
        "k": design.k,
        "construction": design.construction.name,
        "output_model": design.output_model.value,
        "crosspoints": design.cost.crosspoints,
        "converters": design.cost.converters,
    }


def design_from_dict(payload: dict[str, Any]) -> MultistageDesign:
    """Inverse of :func:`design_to_dict`; re-derives and cross-checks cost."""
    if payload.get("kind") != "multistage_design":
        raise ValueError(f"not a design payload: {payload.get('kind')!r}")
    construction = parse_construction(payload["construction"])
    output_model = parse_multicast_model(payload["output_model"])
    cost = multistage_cost(
        payload["n"],
        payload["r"],
        payload["m"],
        payload["k"],
        construction,
        output_model,
    )
    if cost.crosspoints != payload["crosspoints"]:
        raise ValueError(
            f"stored crosspoints {payload['crosspoints']} disagree with "
            f"recomputed {cost.crosspoints}; corrupt payload?"
        )
    return MultistageDesign(
        n=payload["n"],
        r=payload["r"],
        m=payload["m"],
        x=payload["x"],
        k=payload["k"],
        construction=construction,
        output_model=output_model,
        cost=cost,
    )


# -- top level --------------------------------------------------------------

_SERIALIZERS = {
    BlockingWitness: witness_to_dict,
    MultistageDesign: design_to_dict,
    MulticastConnection: connection_to_dict,
    MulticastAssignment: assignment_to_dict,
}


def dumps(obj: Any, *, indent: int = 2) -> str:
    """Serialize any supported artifact to a JSON string."""
    for klass, serializer in _SERIALIZERS.items():
        if isinstance(obj, klass):
            return json.dumps(serializer(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Any:
    """Deserialize a JSON artifact by its ``kind`` tag (or structure)."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "blocking_witness":
        return witness_from_dict(payload)
    if kind == "multistage_design":
        return design_from_dict(payload)
    if "connections" in payload:
        return assignment_from_dict(payload)
    if "source" in payload:
        return connection_from_dict(payload)
    raise ValueError("unrecognized artifact payload")
