"""Three-stage WDM multicast switching networks (Section 3).

* :mod:`repro.multistage.topology` -- the ``v(n, r, m, k)`` Clos-type
  topology of Fig. 8.
* :mod:`repro.multistage.routing` -- the paper's routing strategy: each
  multicast connection may use at most ``x`` middle switches; Lemma 4's
  cover condition made executable (greedy + exact search).
* :mod:`repro.multistage.network` -- the discrete-event simulator:
  connection setup/teardown over explicit link-wavelength state, for
  both the MSW-dominant and MAW-dominant constructions and any output
  stage model.
* :mod:`repro.multistage.adversary` -- worst-case traffic that blocks
  under-provisioned networks, including the Fig. 10 scenario.
* :mod:`repro.multistage.recursive` -- recursive (5-, 7-, ...-stage)
  constructions and their cost (the paper's "any odd number of stages"
  remark).
"""

from repro.multistage.adversary import (
    BlockingWitness,
    Theorem1GapResult,
    demonstrate_theorem1_gap,
    fig10_scenario,
)
from repro.multistage.exhaustive import (
    BlockableResult,
    ExactMinimal,
    exact_minimal_m,
    is_blockable,
)
from repro.multistage.fabric_backed import FabricBackedThreeStage
from repro.multistage.network import (
    BlockedError,
    RoutedBranch,
    RoutedConnection,
    ThreeStageNetwork,
)
from repro.multistage.offline import (
    OfflineResult,
    minimal_rearrangeable_m,
    route_assignment,
)
from repro.multistage.recursive import RecursiveDesign, best_recursive_design
from repro.multistage.routing import (
    CoverSearch,
    find_cover,
    find_cover_bits,
    find_cover_reference,
    get_routing_kernel,
    iter_bits,
    mask_of,
    routing_kernel,
    set_routing_kernel,
)
from repro.multistage.serialization import dumps as artifact_dumps
from repro.multistage.serialization import loads as artifact_loads
from repro.multistage.topology import ThreeStageTopology

__all__ = [
    "BlockableResult",
    "BlockedError",
    "BlockingWitness",
    "CoverSearch",
    "ExactMinimal",
    "FabricBackedThreeStage",
    "OfflineResult",
    "RecursiveDesign",
    "RoutedBranch",
    "RoutedConnection",
    "Theorem1GapResult",
    "ThreeStageNetwork",
    "artifact_dumps",
    "artifact_loads",
    "ThreeStageTopology",
    "best_recursive_design",
    "demonstrate_theorem1_gap",
    "exact_minimal_m",
    "fig10_scenario",
    "find_cover",
    "find_cover_bits",
    "find_cover_reference",
    "get_routing_kernel",
    "is_blockable",
    "iter_bits",
    "mask_of",
    "minimal_rearrangeable_m",
    "route_assignment",
    "routing_kernel",
    "set_routing_kernel",
]
