"""Exhaustive reachability analysis: the *exact* minimal nonblocking m.

Theorems 1-2 (and the corrected bounds) are sufficient conditions; the
paper cites [16] for matching necessary values "under several commonly
used routing strategies".  For tiny networks we can settle the question
outright by model checking:

* A network is **strictly nonblocking** (for the <= x routing strategy,
  against an adversary who may also choose how earlier connections were
  routed) iff *no reachable state* admits a legal request with no
  <= x-middle cover.

* Reachable states are exactly the resource-disjoint sets of routed
  connections: given any such set, connecting its members one by one
  (any order) with their final routes is always feasible, because the
  resources each route needs are held by nobody else.  So reachability
  reduces to enumerating consistent routed configurations -- no
  sequence search is needed.

:func:`is_blockable` performs a depth-first enumeration of routed
configurations (deduplicated by resource signature) and reports the
first blocking witness; :func:`exact_minimal_m` binary-scans ``m`` to
find the true threshold, which the benchmarks compare against the
sufficient bounds.  Exponential, of course -- intended for ``N k <= 8``
and small ``m``.

Symmetry canonicalization (the default, ``canonicalize=True``) attacks
the exponent on two fronts, neither of which can change the verdict:

* the DFS transposition table keys on
  :meth:`~repro.multistage.network.ThreeStageNetwork.canonical_signature`
  -- states identical up to a middle-switch permutation (and, for the
  MSW model, a global wavelength relabeling) share one entry, because
  such permutations map reachable states to reachable states and
  blocked requests to blocked requests.  The symmetry factor is up to
  ``m! * k!`` per state.
* the per-state victim probe exploits the coverability bound's
  monotonicity: for a fixed source endpoint and wavelength choice, a
  cover of a destination-module set restricts to a cover of any subset,
  so probing the *maximal* legal request per source decides every
  request at once (per-module singleton probes decide the unicast
  case).  The reference probe enumerates all ``O(2^ports)`` requests.

``canonicalize=False`` keeps the uncanonicalized reference search,
which the property tests compare verdicts against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import TYPE_CHECKING, Any

from repro import obs as _obs
from repro.core.models import Construction, MulticastModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.perf.cache import ResultCache
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import get_routing_kernel, mask_of
from repro.perf.sweeper import ParallelSweeper, WorkUnit
from repro.switching.requests import Endpoint, MulticastConnection

__all__ = ["BlockableResult", "ExactMinimal", "exact_minimal_m", "is_blockable"]


@dataclass(frozen=True)
class BlockableResult:
    """Outcome of one blockability check.

    ``blockable`` is None when the state budget ran out before the
    search completed (the answer is then unknown).
    """

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    blockable: bool | None
    states_explored: int
    witness_state: tuple[MulticastConnection, ...] | None = None
    witness_request: MulticastConnection | None = None
    #: the adversarial route of each witness connection:
    #: one ``(middle, (modules...))`` tuple set per connection
    witness_routes: tuple[tuple[tuple[int, tuple[int, ...]], ...], ...] | None = None

    def replay(self) -> ThreeStageNetwork:
        """Re-enact a blocking witness (exact adversarial routes included).

        Returns the network in the blocking state; raises AssertionError
        if the witness no longer blocks.
        """
        if not self.blockable:
            raise ValueError("no witness to replay")
        assert self.witness_state is not None and self.witness_routes is not None
        net = ThreeStageNetwork(
            self.n, self.r, self.m, self.k,
            construction=self.construction, model=self.model, x=self.x,
        )
        for connection, route in zip(self.witness_state, self.witness_routes):
            net.connect(
                connection,
                force_middles={j: list(ps) for j, ps in route},
            )
        assert self.witness_request is not None
        if net.try_connect(self.witness_request) is not None:
            raise AssertionError("witness no longer blocks")
        return net


@dataclass(frozen=True)
class ExactMinimal:
    """The exact minimal nonblocking ``m`` for a tiny configuration."""

    n: int
    r: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    m_exact: int | None  # None if the scan was inconclusive (budget)
    per_m: tuple[BlockableResult, ...]


def _legal_requests(
    net: ThreeStageNetwork,
    *,
    unicast_only: bool = False,
) -> list[MulticastConnection]:
    """Every legal request in the network's current state, largest fanout
    first (supersets block at least as easily, so big ones find
    witnesses sooner).  With ``unicast_only``, only fanout-1 requests
    (the classical Clos setting)."""
    topo = net.topology
    n_ports, k = topo.n_ports, topo.k
    free_inputs = [
        Endpoint(p, w)
        for p in range(n_ports)
        for w in range(k)
        if not net._input_used[p, w]
    ]
    free_outputs = [
        Endpoint(p, w)
        for p in range(n_ports)
        for w in range(k)
        if not net._output_used[p, w]
    ]
    requests: list[MulticastConnection] = []
    for source in free_inputs:
        if net.model is MulticastModel.MSW:
            wavelength_choices = [[source.wavelength]]
        elif net.model is MulticastModel.MSDW:
            wavelength_choices = [[w] for w in range(k)]
        else:
            wavelength_choices = [list(range(k))]
        for allowed in wavelength_choices:
            per_port: dict[int, list[Endpoint]] = {}
            for endpoint in free_outputs:
                if endpoint.wavelength in allowed:
                    per_port.setdefault(endpoint.port, []).append(endpoint)
            ports = sorted(per_port)
            max_size = 1 if unicast_only else len(ports)
            for size in range(max_size, 0, -1):
                for chosen_ports in combinations(ports, size):
                    for picks in product(
                        *(per_port[port] for port in chosen_ports)
                    ):
                        requests.append(MulticastConnection(source, picks))
    requests.sort(key=lambda c: -c.fanout)
    return requests


def _all_covers(
    net: ThreeStageNetwork, request: MulticastConnection
) -> list[dict[int, list[int]]]:
    """Every distinct <= x-middle split the adversary could have used."""
    g = net.topology.input_module_of(request.source.port)
    module_destinations = net._module_destinations(request)
    destinations = sorted(module_destinations)
    required = net._required_out_wavelength(module_destinations)
    if get_routing_kernel() == "reference":
        coverable: dict[int, frozenset[int]] = net._coverable_sets(
            g, request.source.wavelength, frozenset(destinations), required
        )
        options = []
        for p in destinations:
            admissible = [j for j, reach in coverable.items() if p in reach]
            if not admissible:
                return []
            options.append(admissible)
    else:
        coverable_bits = net._coverable_bits(
            g, request.source.wavelength, mask_of(destinations)
        )
        options = []
        for p in destinations:
            bit = 1 << p
            admissible = [j for j, reach in coverable_bits.items() if reach & bit]
            if not admissible:
                return []
            options.append(admissible)
    covers: set[tuple[tuple[int, tuple[int, ...]], ...]] = set()
    results = []
    for assignment in product(*options):
        groups: dict[int, list[int]] = {}
        for p, j in zip(destinations, assignment):
            groups.setdefault(j, []).append(p)
        if len(groups) > net.x:
            continue
        key = tuple(sorted((j, tuple(ps)) for j, ps in groups.items()))
        if key in covers:
            continue
        covers.add(key)
        results.append(groups)
    return results


def _signature(net: ThreeStageNetwork) -> bytes:
    return net.state_signature()


def _first_blocked_request(
    net: ThreeStageNetwork, *, unicast_only: bool = False
) -> MulticastConnection | None:
    """A blocked legal request in the current state, or None.

    The fast victim probe: coverability depends only on the
    destination-module set (plus source endpoint and, for the MSW
    model, the shared wavelength), and a cover of a module set
    restricts to a cover of any subset.  So per (source endpoint,
    wavelength choice) it suffices to probe the *maximal* legal request
    -- it is blocked iff any request from that source is.  In unicast
    mode a singleton is blocked iff its module is coverable by no
    middle, so one probe per module decides all ports in it.
    """
    topo = net.topology
    n_ports, k, n = topo.n_ports, topo.k, topo.n
    input_used = net._input_used
    output_used = net._output_used
    for port in range(n_ports):
        for w in range(k):
            if input_used[port, w]:
                continue
            source = Endpoint(port, w)
            if net.model is MulticastModel.MSW:
                wavelength_choices = [[w]]
            elif net.model is MulticastModel.MSDW:
                wavelength_choices = [[v] for v in range(k)]
            else:
                wavelength_choices = [list(range(k))]
            for allowed in wavelength_choices:
                per_port: dict[int, Endpoint] = {}
                for dest_port in range(n_ports):
                    for v in allowed:
                        if not output_used[dest_port, v]:
                            per_port[dest_port] = Endpoint(dest_port, v)
                            break
                if not per_port:
                    continue
                if unicast_only:
                    probed_modules: set[int] = set()
                    for dest_port in sorted(per_port):
                        module = dest_port // n
                        if module in probed_modules:
                            continue
                        probed_modules.add(module)
                        request = MulticastConnection(
                            source, (per_port[dest_port],)
                        )
                        if net.probe_cover(request) is None:
                            return request
                else:
                    request = MulticastConnection(
                        source,
                        tuple(per_port[p] for p in sorted(per_port)),
                    )
                    if net.probe_cover(request) is None:
                        return request
    return None


def is_blockable(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    state_budget: int = 100_000,
    unicast_only: bool = False,
    canonicalize: bool = True,
) -> BlockableResult:
    """Decide by exhaustive search whether any reachable state blocks.

    Args:
        n, r, m, k: topology under test (keep ``N k <= 8``!).
        construction, model, x: network configuration.
        state_budget: abort (result ``blockable=None``) after exploring
            this many distinct states.
        unicast_only: restrict both the adversary's connections and the
            probed requests to fanout 1 (the classical Clos setting).
        canonicalize: dedup states by canonical signature under
            middle-switch permutation (plus wavelength permutation for
            the MSW model) and use the monotone fast victim probe; the
            verdict is identical to ``canonicalize=False`` (the
            uncanonicalized reference search), but ``states_explored``
            counts symmetry classes instead of raw states and the
            witness may differ.

    Returns:
        The decision, with a witness when blockable.
    """
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    wavelength_symmetry = canonicalize and model is MulticastModel.MSW
    seen: set[bytes] = set()
    explored = 0
    Route = tuple[tuple[int, tuple[int, ...]], ...]
    live: list[tuple[int, MulticastConnection, Route]] = []

    def blocked_request() -> MulticastConnection | None:
        if canonicalize:
            return _first_blocked_request(net, unicast_only=unicast_only)
        for request in _legal_requests(net, unicast_only=unicast_only):
            if net.probe_cover(request) is None:
                return request
        return None

    def dfs() -> (
        tuple[
            tuple[MulticastConnection, ...],
            tuple[Route, ...],
            MulticastConnection,
        ]
        | None
    ):
        nonlocal explored
        if canonicalize:
            signature = net.canonical_signature(
                wavelength_symmetry=wavelength_symmetry
            )
        else:
            signature = _signature(net)
        if signature in seen:
            return None
        seen.add(signature)
        explored += 1
        _obs.inc("exhaustive.states")
        if explored > state_budget:
            raise _BudgetExceeded
        victim = blocked_request()
        if victim is not None:
            return (
                tuple(connection for _, connection, _ in live),
                tuple(route for _, _, route in live),
                victim,
            )
        # Expand small-fanout requests first: blocking states are built
        # from unicast "blockers", so this ordering finds witnesses far
        # sooner (the full space is still explored when none exists).
        expansion = _legal_requests(net, unicast_only=unicast_only)
        for request in sorted(expansion, key=lambda c: c.fanout):
            for cover in _all_covers(net, request):
                cid = net.connect(request, force_middles=cover)
                route: Route = tuple(
                    sorted((j, tuple(ps)) for j, ps in cover.items())
                )
                live.append((cid, request, route))
                result = dfs()
                live.pop()
                net.disconnect(cid)
                if result is not None:
                    return result
        return None

    try:
        witness = dfs()
    except _BudgetExceeded:
        return BlockableResult(
            n=n, r=r, m=m, k=k,
            construction=construction, model=model, x=x,
            blockable=None, states_explored=explored,
        )
    if witness is None:
        return BlockableResult(
            n=n, r=r, m=m, k=k,
            construction=construction, model=model, x=x,
            blockable=False, states_explored=explored,
        )
    state, routes, request = witness
    return BlockableResult(
        n=n, r=r, m=m, k=k,
        construction=construction, model=model, x=x,
        blockable=True, states_explored=explored,
        witness_state=state, witness_request=request,
        witness_routes=routes,
    )


class _BudgetExceeded(Exception):
    pass


def _exact_minimal_m_impl(
    n: int,
    r: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    m_max: int | None = None,
    state_budget: int = 100_000,
    unicast_only: bool = False,
    canonicalize: bool = True,
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
) -> ExactMinimal:
    """Scan ``m`` upward for the true nonblocking threshold.

    Returns the smallest ``m`` whose reachable-state space contains no
    blocking state (``m_exact``), along with the per-``m`` results.  If
    any check hits the budget before a nonblocking ``m`` is found, the
    scan is inconclusive and ``m_exact`` is None.

    With ``jobs > 1`` (or ``"auto"``) every ``m`` candidate is
    model-checked as an independent work unit; the merge walks the
    candidates in ascending order and truncates exactly where the
    serial scan would have stopped, so the result is bit-identical to
    ``jobs=1`` (the parallel scan trades some redundant work above the
    threshold for wall time).

    With a :class:`repro.perf.cache.ResultCache`, each ``m`` cell is
    looked up before being model-checked and stored afterwards, making
    repeated and interrupted scans incremental.
    """
    if m_max is None:
        from repro.core.corrected import min_middle_switches_corrected

        m_max = min_middle_switches_corrected(n, r, k, construction, model, x=x)
    candidates = list(range(1, m_max + 1))
    cell_kwargs = dict(
        construction=construction, model=model, x=x,
        state_budget=state_budget, unicast_only=unicast_only,
        canonicalize=canonicalize,
    )

    def cell_key(m: int) -> str | None:
        if cache is None:
            return None
        return cache.key(
            "is_blockable", dict(n=n, r=r, m=m, k=k, **cell_kwargs)
        )

    if jobs == 1:
        per_m = []
        for m in candidates:
            key = cell_key(m)
            result = cache.get(key) if key is not None else None
            if result is None:
                result = is_blockable(n, r, m, k, **cell_kwargs)
                if key is not None:
                    cache.put(key, result)
            per_m.append(result)
            if result.blockable is not True:
                break
    else:
        sweeper = ParallelSweeper(jobs, chunk_size=1)
        try:
            keyed = sweeper.run_keyed(
                (
                    WorkUnit(
                        unit_id=m,
                        fn=is_blockable,
                        args=(n, r, m, k),
                        kwargs=cell_kwargs,
                        cache_key=cell_key(m),
                    )
                    for m in candidates
                ),
                cache=cache,
            )
        finally:
            sweeper.close()
        per_m = []
        for m in candidates:
            result = keyed[m].value
            per_m.append(result)
            if result.blockable is not True:
                break
    results = []
    for result in per_m:
        results.append(result)
        if result.blockable is False:
            return ExactMinimal(
                n=n, r=r, k=k,
                construction=construction, model=model, x=x,
                m_exact=result.m, per_m=tuple(results),
            )
        if result.blockable is None:
            break
    return ExactMinimal(
        n=n, r=r, k=k,
        construction=construction, model=model, x=x,
        m_exact=None, per_m=tuple(results),
    )


def exact_minimal_m(n: int, r: int, k: int, **kwargs: Any) -> ExactMinimal:
    """Deprecated kwargs entry point; use :func:`repro.api.exact_m`.

    Behaves exactly like the pre-``repro.api`` function (same kwargs,
    same results), so existing callers and golden values are
    unaffected; it just warns.  See :func:`repro.api.exact_m` for the
    typed-config replacement.
    """
    import warnings

    warnings.warn(
        "exact_minimal_m(**kwargs) is deprecated; use repro.api.exact_m"
        "(n, r, k, search=SearchConfig(...), execution=ExecConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _exact_minimal_m_impl(n, r, k, **kwargs)
