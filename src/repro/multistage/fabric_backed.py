"""Physical (component-level) realization of a three-stage network.

This glues the two simulation levels of the reproduction together: the
*state-level* router (:class:`repro.multistage.network.ThreeStageNetwork`)
decides which middle switches and wavelengths a connection uses; the
*fabric-backed* network here builds every module of the ``v(n, r, m, k)``
topology out of real components (gates, splitters, combiners,
converters), wires the inter-stage fibers, mirrors the router's
decisions into gate/converter settings, and propagates actual signals
end to end.

If the router ever produced a physically impossible configuration --
two signals on one link wavelength, a combiner conflict, an MSW module
asked to convert -- the propagation would raise.  The integration tests
drive random traffic through both levels simultaneously, which is the
strongest correctness evidence this reproduction offers for Section 3.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.core.models import Construction, MulticastModel
from repro.fabric.components import InputTerminal, OutputTerminal
from repro.fabric.modules import WDMModule, build_wdm_module
from repro.fabric.network import OpticalFabric, PropagationResult
from repro.fabric.signal import OpticalSignal
from repro.multistage.network import RoutedConnection
from repro.multistage.topology import ThreeStageTopology
from repro.switching.requests import Endpoint

__all__ = ["FabricBackedThreeStage"]


class DeliveryMismatch(RuntimeError):
    """End-to-end propagation delivered the wrong light."""


class FabricBackedThreeStage:
    """A ``v(n, r, m, k)`` network built entirely from optical components."""

    def __init__(
        self,
        n: int,
        r: int,
        m: int,
        k: int,
        *,
        construction: Construction = Construction.MSW_DOMINANT,
        model: MulticastModel = MulticastModel.MSW,
    ):
        self.topology = ThreeStageTopology(n, r, m, k)
        self.construction = construction
        self.model = model
        self.fabric = OpticalFabric(f"v({n},{r},{m},{k})")
        inner = construction.inner_model

        self.input_modules: list[WDMModule] = [
            build_wdm_module(self.fabric, f"in{g}", inner, n, m, k)
            for g in range(r)
        ]
        self.middle_modules: list[WDMModule] = [
            build_wdm_module(self.fabric, f"mid{j}", inner, r, r, k)
            for j in range(m)
        ]
        self.output_modules: list[WDMModule] = [
            build_wdm_module(self.fabric, f"out{p}", model, m, n, k)
            for p in range(r)
        ]

        # Inter-stage fibers: one per module pair in adjacent stages.
        for g in range(r):
            for j in range(m):
                src_name, src_port = self.input_modules[g].exits[j]
                dst_name, dst_port = self.middle_modules[j].entries[g]
                self.fabric.connect(src_name, src_port, dst_name, dst_port)
        for j in range(m):
            for p in range(r):
                src_name, src_port = self.middle_modules[j].exits[p]
                dst_name, dst_port = self.output_modules[p].entries[j]
                self.fabric.connect(src_name, src_port, dst_name, dst_port)

        # External terminals, one per global port.
        self._inputs: list[InputTerminal] = []
        self._outputs: list[OutputTerminal] = []
        for port in range(self.topology.n_ports):
            g = self.topology.input_module_of(port)
            local = self.topology.local_port(port)
            terminal = self.fabric.add(InputTerminal(f"port_in{port}"))
            dst_name, dst_port = self.input_modules[g].entries[local]
            self.fabric.connect(terminal, 0, dst_name, dst_port)
            self._inputs.append(terminal)
        for port in range(self.topology.n_ports):
            p = self.topology.output_module_of(port)
            local = self.topology.local_port(port)
            terminal = self.fabric.add(OutputTerminal(f"port_out{port}"))
            src_name, src_port = self.output_modules[p].exits[local]
            self.fabric.connect(src_name, src_port, terminal, 0)
            self._outputs.append(terminal)
        self.fabric.check_wiring()

    # -- accounting ------------------------------------------------------

    def crosspoint_count(self) -> int:
        """Total SOA gates; must match Section 3.4's stage sums."""
        return self.fabric.crosspoint_count()

    def converter_count(self) -> int:
        """Total converters; must match Section 3.4's converter counts."""
        return self.fabric.converter_count()

    # -- realization ---------------------------------------------------------

    def realize(
        self, routed: Iterable[RoutedConnection]
    ) -> PropagationResult:
        """Mirror routed connections into the fabric and propagate light.

        Args:
            routed: the live connections of a state-level
                :class:`~repro.multistage.network.ThreeStageNetwork` with
                the *same* topology, construction and model.

        Returns:
            The propagation result, after verifying that every requested
            output endpoint received its source's signal on its own
            wavelength and nothing else lit up.

        Raises:
            DeliveryMismatch: wrong/missing/stray light at the outputs.
            repro.fabric.components.FabricError: physical conflict inside
                the fabric (indicates a router bug).
        """
        routed = list(routed)
        for module in (
            self.input_modules + self.middle_modules + self.output_modules
        ):
            module.reset()
        self.fabric.clear_inputs()

        expected: dict[Endpoint, Endpoint] = {}
        per_port_signals: dict[int, list[OpticalSignal]] = defaultdict(list)
        for connection in routed:
            request = connection.request
            g = connection.input_module
            local_source = self.topology.local_port(request.source.port)
            source_wavelength = request.source.wavelength

            # Input module: source channel to the chosen middle fibers.
            self.input_modules[g].route(
                local_source,
                source_wavelength,
                [(branch.middle, branch.in_wavelength) for branch in connection.branches],
            )
            # Middle modules: one pass per branch.
            destinations_by_module: dict[int, list[Endpoint]] = defaultdict(list)
            for destination in request.destinations:
                destinations_by_module[
                    self.topology.output_module_of(destination.port)
                ].append(destination)
            for branch in connection.branches:
                self.middle_modules[branch.middle].route(
                    g,
                    branch.in_wavelength,
                    list(branch.deliveries),
                )
                # Output modules: from the arriving fiber to the ports.
                for p, link_wavelength in branch.deliveries:
                    deliveries = [
                        (self.topology.local_port(d.port), d.wavelength)
                        for d in destinations_by_module[p]
                    ]
                    self.output_modules[p].route(
                        branch.middle, link_wavelength, deliveries
                    )

            per_port_signals[request.source.port].append(
                OpticalSignal.transmit(request.source.port, source_wavelength)
            )
            for destination in request.destinations:
                expected[destination] = request.source

        for port, signals in per_port_signals.items():
            self._inputs[port].inject(signals)
        result = self.fabric.propagate()
        self._verify(expected, result)
        return result

    def _verify(
        self,
        expected: dict[Endpoint, Endpoint],
        result: PropagationResult,
    ) -> None:
        observed: dict[Endpoint, OpticalSignal] = {}
        for port, terminal in enumerate(self._outputs):
            for signal in result.at(terminal.name):
                endpoint = Endpoint(port, signal.wavelength)
                if endpoint in observed:
                    raise DeliveryMismatch(
                        f"two signals at output endpoint {endpoint}"
                    )
                observed[endpoint] = signal
        missing = set(expected) - set(observed)
        stray = set(observed) - set(expected)
        if missing or stray:
            raise DeliveryMismatch(
                f"missing={sorted(missing)} stray={sorted(stray)}"
            )
        for endpoint, source in expected.items():
            signal = observed[endpoint]
            if (signal.source_port, signal.source_wavelength) != (
                source.port,
                source.wavelength,
            ):
                raise DeliveryMismatch(
                    f"wrong origin at {endpoint}: got "
                    f"({signal.source_port}, {signal.source_wavelength}), "
                    f"expected ({source.port}, {source.wavelength})"
                )
