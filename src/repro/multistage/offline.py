"""Offline (batch) routing of complete multicast assignments.

The paper studies *strict-sense* nonblocking: requests arrive one at a
time and must be routed without disturbing existing connections.  The
complementary classical question is **rearrangeable** realizability:
given the complete multicast assignment up front, can the network carry
it if we may choose all routes jointly?

This module routes whole assignments with backtracking over both the
connection order and each connection's <= x-middle split, using the
same :class:`~repro.multistage.network.ThreeStageNetwork` state (so the
routes it finds are real, executable configurations).  Together with
the exhaustive checker it lets the benchmarks separate three
thresholds on tiny networks::

    m_rearrangeable  <=  m_strict(exact)  <=  m_bound(Theorem/corrected)

which the paper's analysis does not distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Construction, MulticastModel
from repro.multistage.exhaustive import _all_covers
from repro.multistage.network import ThreeStageNetwork
from repro.switching.enumeration import iter_assignments
from repro.switching.requests import MulticastAssignment, MulticastConnection

__all__ = [
    "OfflineResult",
    "minimal_rearrangeable_m",
    "route_assignment",
]


class _BudgetExceeded(Exception):
    pass


@dataclass(frozen=True)
class OfflineResult:
    """Result of one offline routing attempt."""

    realizable: bool | None  # None = search budget exhausted
    nodes_explored: int
    routes: dict[MulticastConnection, int] | None  # connection -> id


def route_assignment(
    net: ThreeStageNetwork,
    assignment: MulticastAssignment,
    *,
    node_budget: int = 200_000,
) -> OfflineResult:
    """Try to realize a complete assignment on an idle network.

    Backtracks over connection order (largest fanout first -- the most
    constrained requests claim middles early) and over every distinct
    <= x cover per connection.  On success the network is left carrying
    the assignment; on failure (or budget exhaustion) it is restored to
    idle.

    Args:
        net: an *idle* network (raises if connections are live).
        assignment: the multicast assignment to realize; must be legal
            under the network's model.
        node_budget: abort after this many search nodes.
    """
    if net.active_connections:
        raise ValueError("offline routing needs an idle network")
    connections = sorted(
        assignment.connections, key=lambda c: -c.fanout
    )
    explored = 0
    routes: dict[MulticastConnection, int] = {}

    def backtrack(index: int) -> bool:
        nonlocal explored
        explored += 1
        if explored > node_budget:
            raise _BudgetExceeded
        if index == len(connections):
            return True
        connection = connections[index]
        for cover in _all_covers(net, connection):
            cid = net.connect(connection, force_middles=cover)
            routes[connection] = cid
            if backtrack(index + 1):
                return True
            del routes[connection]
            net.disconnect(cid)
        return False

    try:
        success = backtrack(0)
    except _BudgetExceeded:
        net.disconnect_all()
        return OfflineResult(realizable=None, nodes_explored=explored, routes=None)
    if not success:
        return OfflineResult(realizable=False, nodes_explored=explored, routes=None)
    return OfflineResult(
        realizable=True, nodes_explored=explored, routes=dict(routes)
    )


def minimal_rearrangeable_m(
    n: int,
    r: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    m_max: int = 12,
    node_budget: int = 200_000,
) -> tuple[int | None, dict[int, bool]]:
    """Smallest ``m`` that realizes *every* legal assignment offline.

    Exhausts the assignment space via
    :func:`repro.switching.enumeration.iter_assignments` -- tiny
    networks only (``N k <= 6``).

    Returns:
        ``(m_min or None, {m: all_realizable})``.
    """
    verdicts: dict[int, bool] = {}
    for m in range(1, m_max + 1):
        all_ok = True
        for assignment in iter_assignments(model, n * r, k, full=False):
            net = ThreeStageNetwork(
                n, r, m, k, construction=construction, model=model, x=x
            )
            result = route_assignment(net, assignment, node_budget=node_budget)
            if result.realizable is not True:
                all_ok = False
                break
        verdicts[m] = all_ok
        if all_ok:
            return m, verdicts
    return None, verdicts
