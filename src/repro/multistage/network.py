"""Discrete-event simulator of a three-stage WDM multicast network.

State model
-----------

The simulator tracks exactly the resources the paper's proofs count:

* ``in_mid[g, j, w]``  -- wavelength ``w`` busy on the fiber from input
  module ``g`` to middle module ``j``;
* ``mid_out[j, p, w]`` -- wavelength ``w`` busy on the fiber from middle
  module ``j`` to output module ``p``;
* per-endpoint usage of the network's external input/output wavelength
  channels.

Modules themselves are multicast-capable nonblocking crossbars (the
paper's assumption), so module-internal routing never blocks; all
contention lives on the inter-stage fibers.

The occupancy state is held as packed integer bitmasks -- one small int
per fiber (bits = wavelengths) and one int per endpoint grid (bit =
``port * k + wavelength``).  :class:`_WaveCube` and
:class:`_EndpointGrid` give those masks the array-style ``[g, j, w]``
indexing the tests and the exhaustive checker use, so the simulator has
no third-party dependencies on its hot path.

Wavelength discipline
---------------------

* **MSW-dominant construction**: a connection sourced on wavelength
  ``lambda`` uses ``lambda`` on every first- and second-stage fiber it
  crosses (the input and middle modules are MSW and cannot convert).
  The output module then delivers per the network model (converting if
  the network model is MSDW/MAW).
* **MAW-dominant construction**: first- and second-stage fibers may use
  any free wavelength (the MAW modules convert at will).  If the
  network model is MSW, the fiber into each output module must carry
  the destinations' wavelength, because the MSW output module cannot
  convert -- exactly the distinction Fig. 10 illustrates.

Routing uses the x-middle-switch strategy via
:func:`repro.multistage.routing.find_cover`; a request raises
:class:`BlockedError` only when *no* set of at most ``x`` available
middle switches can reach all requested output modules, so a network
sized by Theorem 1/2 must never raise under legal traffic.
"""

from __future__ import annotations

import os
from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass
from itertools import permutations

from repro import obs as _obs
from repro.combinatorics.multiset import DestinationMultiset
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import is_nonblocking, valid_x_range
from repro.engine.geometry import FabricGeometry
from repro.engine.kernel import block_cause, free_middles, reach_map
from repro.multistage.routing import (
    CoverSearch,
    find_cover,
    find_cover_bits,
    get_routing_kernel,
    iter_bits,
    mask_of,
)
from repro.multistage.topology import ThreeStageTopology
from repro.switching.requests import Endpoint, MulticastConnection
from repro.switching.validity import ValidityError, check_connection

__all__ = ["BlockedError", "RoutedBranch", "RoutedConnection", "ThreeStageNetwork"]


class BlockedError(RuntimeError):
    """No admissible set of middle switches can realize the request."""


#: environment variable that turns on per-event invariant cross-checks
DEBUG_CHECKS_ENV = "WDM_REPRO_DEBUG_CHECKS"


def _debug_checks_default() -> bool:
    """Resolve the debug-checks default from the environment."""
    return os.environ.get(DEBUG_CHECKS_ENV, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


def _permute_wavelengths(mask: int, perm: tuple[int, ...]) -> int:
    """Relabel a wavelength mask: bit ``i`` of the result is old bit ``perm[i]``."""
    out = 0
    for i, w in enumerate(perm):
        if mask >> w & 1:
            out |= 1 << i
    return out


class _WaveRow:
    """One fiber's wavelength occupancy, viewed through :class:`_WaveCube`.

    Supports the slice API the tests and checkers use on a numpy row:
    ``row[w]`` / ``row.sum()`` / ``row.all()`` / iteration.
    """

    __slots__ = ("_row", "_b", "_k")

    def __init__(self, row: list[int], b: int, k: int):
        self._row = row
        self._b = b
        self._k = k

    def sum(self) -> int:
        return self._row[self._b].bit_count()

    def all(self) -> bool:
        return self._row[self._b] == (1 << self._k) - 1

    def __getitem__(self, w: int) -> bool:
        return bool(self._row[self._b] >> w & 1)

    def __iter__(self):
        mask = self._row[self._b]
        return iter([bool(mask >> w & 1) for w in range(self._k)])


class _WaveCube:
    """``(A, B, k)`` boolean occupancy cube backed by per-fiber masks.

    ``wave[a][b]`` is an int whose bit ``w`` says wavelength ``w`` is
    busy on fiber ``(a, b)`` -- the ground-truth state.  Tuple indexing
    (``cube[a, b, w]`` -> bool, ``cube[a, b]`` -> :class:`_WaveRow`)
    keeps the external API of the numpy array it replaces.
    """

    __slots__ = ("wave", "shape")

    def __init__(self, a: int, b: int, k: int):
        self.wave: list[list[int]] = [[0] * b for _ in range(a)]
        self.shape = (a, b, k)

    def __getitem__(self, index):
        if len(index) == 3:
            a, b, w = index
            return bool(self.wave[a][b] >> w & 1)
        a, b = index
        return _WaveRow(self.wave[a], b, self.shape[2])

    def __setitem__(self, index, value) -> None:
        a, b, w = index
        if value:
            self.wave[a][b] |= 1 << w
        else:
            self.wave[a][b] &= ~(1 << w)


class _EndpointGrid:
    """``(n_ports, k)`` endpoint-usage grid backed by a single int mask.

    Bit ``port * k + wavelength`` says the endpoint channel is in use;
    ``grid[port, w]`` tuple indexing keeps the array-style reads the
    traffic generators and exhaustive checker rely on.
    """

    __slots__ = ("mask", "k")

    def __init__(self, n_ports: int, k: int):
        self.mask = 0
        self.k = k

    def __getitem__(self, index) -> bool:
        port, w = index
        return bool(self.mask >> (port * self.k + w) & 1)

    def __setitem__(self, index, value) -> None:
        port, w = index
        bit = 1 << (port * self.k + w)
        if value:
            self.mask |= bit
        else:
            self.mask &= ~bit


@dataclass(frozen=True)
class RoutedBranch:
    """One middle switch's share of a routed connection.

    Attributes:
        middle: index of the middle module.
        in_wavelength: wavelength used on the input-module -> middle fiber.
        deliveries: ``(output_module, wavelength)`` per covered module,
            the wavelength being the one on the middle -> output fiber.
    """

    middle: int
    in_wavelength: int
    deliveries: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class RoutedConnection:
    """A live connection: the request plus the resources it holds."""

    connection_id: int
    request: MulticastConnection
    input_module: int
    branches: tuple[RoutedBranch, ...]

    @property
    def middles_used(self) -> tuple[int, ...]:
        """Indices of the middle switches carrying this connection."""
        return tuple(branch.middle for branch in self.branches)


class ThreeStageNetwork:
    """A ``v(n, r, m, k)`` WDM multicast network with live routing state."""

    #: middle-switch selection strategies for :meth:`connect`
    SELECTIONS = ("greedy", "first_fit", "least_loaded", "most_loaded", "random")
    #: wavelength-assignment policies for MAW-dominant internal fibers
    WAVELENGTH_POLICIES = ("first_fit", "most_used", "least_used", "random")

    def __init__(
        self,
        n: int,
        r: int,
        m: int,
        k: int,
        *,
        construction: Construction = Construction.MSW_DOMINANT,
        model: MulticastModel = MulticastModel.MSW,
        x: int | None = None,
        selection: str = "greedy",
        selection_seed: int = 0,
        wavelength_policy: str = "first_fit",
        debug_checks: bool | None = None,
    ):
        """Build an idle network.

        Args:
            n, r, m, k: topology parameters (Fig. 8).
            construction: MSW-dominant or MAW-dominant (Section 3.1).
            model: the network's multicast model; the output stage runs
                under this model.
            x: routing parameter -- max middle switches per connection.
                Defaults to the largest legal value ``min(n-1, r)`` (the
                most permissive routing; pass the theorem's optimal x to
                study the bounds).
            selection: preference order among admissible middle switches:
                ``greedy``/``first_fit`` (ascending index),
                ``least_loaded`` (spread load), ``most_loaded`` (pack
                load -- the classic strict-sense heuristic), or
                ``random``.  All strategies stay within the <=x routing
                strategy; the theorems' guarantees are
                strategy-independent, and the Monte-Carlo benchmarks
                measure how the strategies differ *below* the bound.
            selection_seed: RNG seed for the ``random`` strategy.
            wavelength_policy: how the MAW-dominant construction picks a
                carrier on an internal fiber when the model leaves it
                free: ``first_fit`` (lowest index, the classic RWA
                default), ``most_used`` (pack onto globally busy
                wavelengths), ``least_used`` (spread), or ``random``
                (seeded by ``selection_seed``).  Ignored by the
                MSW-dominant construction, whose carriers are pinned.
            debug_checks: opt-in per-event self-verification -- when
                True, :meth:`check_invariants` runs after every
                ``connect``/``disconnect``, so any cache leak surfaces at
                the exact event that caused it.  The scan is O(state), so
                hot paths leave it off; None (the default) reads the
                ``WDM_REPRO_DEBUG_CHECKS`` environment variable
                (``1``/``true``/``yes``/``on`` enable it).  Explicit
                :meth:`check_invariants` calls always run regardless.
        """
        self.topology = ThreeStageTopology(n, r, m, k)
        self.construction = construction
        self.model = model
        legal_x = valid_x_range(n, r)
        self.x = legal_x[-1] if x is None else x
        # The geometry validates x (same message as before) and is the
        # engine-facing identity of this fabric.
        self.geometry = FabricGeometry(
            n=n, r=r, k=k, m=m,
            construction=construction, model=model, x=self.x,
        )
        if selection not in self.SELECTIONS:
            raise ValueError(
                f"unknown selection strategy {selection!r}; "
                f"choose from {self.SELECTIONS}"
            )
        self.selection = selection
        if wavelength_policy not in self.WAVELENGTH_POLICIES:
            raise ValueError(
                f"unknown wavelength policy {wavelength_policy!r}; "
                f"choose from {self.WAVELENGTH_POLICIES}"
            )
        self.wavelength_policy = wavelength_policy
        self.debug_checks = (
            _debug_checks_default() if debug_checks is None else debug_checks
        )
        import random as _random

        self._selection_rng = _random.Random(selection_seed)
        # Ground-truth occupancy: per-fiber wavelength masks.
        self._in_mid = _WaveCube(r, m, k)
        self._mid_out = _WaveCube(m, r, k)
        self._input_used = _EndpointGrid(self.topology.n_ports, k)
        self._output_used = _EndpointGrid(self.topology.n_ports, k)
        self._k_full = (1 << k) - 1
        # Coverability cache: transposed/aggregated views of the wave
        # masks, maintained incrementally by connect/disconnect so the
        # cover search never rescans the cube.  check_invariants()
        # cross-checks them against the ground truth.
        self._in_mid_busy = [[0] * k for _ in range(r)]  # [g][w] -> mask over j
        self._in_mid_count = [[0] * m for _ in range(r)]  # [g][j] -> busy count
        self._in_mid_full = [0] * r  # [g] -> mask over j with count == k
        # Transposed [w][j] so one wavelength's blocker row is a flat
        # list the engine kernels index per middle.
        self._mid_out_busy = [[0] * m for _ in range(k)]  # [w][j] -> mask over p
        self._mid_out_count = [[0] * r for _ in range(m)]  # [j][p] -> busy count
        self._mid_out_full = [0] * m  # [j] -> mask over p with count == k
        self._failed_mask = 0
        self._all_middles_mask = (1 << m) - 1
        self._active: dict[int, RoutedConnection] = {}
        self._failed_middles: set[int] = set()
        self._next_id = 0
        self.setups = 0
        self.teardowns = 0
        self.blocks = 0

    # -- inspection -------------------------------------------------------

    @property
    def active_connections(self) -> dict[int, RoutedConnection]:
        """Live connections by id (a copy)."""
        return dict(self._active)

    def is_provably_nonblocking(self, *, corrected: bool = True) -> bool:
        """Does this network's ``m`` meet the sufficient bound at this ``x``?

        Args:
            corrected: if True (default), use the model-aware bound of
                :mod:`repro.core.corrected` -- for MSW-dominant networks
                under MSDW/MAW models this is strictly stronger than the
                paper's Theorem 1, whose reduction misses the k-fold
                output-side interference (see that module's docstring and
                :func:`repro.multistage.adversary.demonstrate_theorem1_gap`).
                With ``corrected=False``, check the paper's theorem as
                printed.
        """
        if corrected:
            from repro.core.corrected import is_nonblocking_corrected

            return is_nonblocking_corrected(
                self.topology.m,
                self.topology.n,
                self.topology.r,
                self.topology.k,
                self.construction,
                self.model,
                self.x,
            )
        return is_nonblocking(
            self.topology.m,
            self.topology.n,
            self.topology.r,
            self.topology.k,
            self.construction,
            self.x,
        )

    def destination_multiset(self, middle: int) -> DestinationMultiset:
        """The paper's ``M_j`` for middle switch ``middle`` (eq. (2)).

        Multiplicity of output module ``p`` = busy wavelengths on the
        fiber ``middle -> p``.
        """
        return DestinationMultiset(
            (mask.bit_count() for mask in self._mid_out.wave[middle]),
            self.topology.k,
        )

    def destination_set(self, middle: int, wavelength: int) -> frozenset[int]:
        """MSW-dominant per-wavelength destination set of a middle switch."""
        return frozenset(iter_bits(self._mid_out_busy[wavelength][middle]))

    def destination_mask(self, middle: int, wavelength: int) -> int:
        """Bitmask form of :meth:`destination_set` (bit ``p`` = busy fiber)."""
        return self._mid_out_busy[wavelength][middle]

    def conversions_of(self, connection_id: int) -> int:
        """Wavelength conversions a live connection undergoes end to end.

        Counts carrier changes at the input module (source wavelength to
        first-stage fiber), the middle modules (first- to second-stage
        fiber) and the output modules (second-stage fiber to destination
        endpoints).  Under the MSW-dominant construction with the MSW
        model this is always zero; the MAW-dominant construction and the
        stronger models spend converters for their flexibility -- the
        trade-off Section 2.3.2 prices.
        """
        routed = self._active[connection_id]
        source_wavelength = routed.request.source.wavelength
        by_module: dict[int, list[int]] = defaultdict(list)
        for destination in routed.request.destinations:
            by_module[self.topology.output_module_of(destination.port)].append(
                destination.wavelength
            )
        conversions = 0
        for branch in routed.branches:
            if branch.in_wavelength != source_wavelength:
                conversions += 1
            for p, out_wavelength in branch.deliveries:
                if out_wavelength != branch.in_wavelength:
                    conversions += 1
                conversions += sum(
                    1 for v in by_module[p] if v != out_wavelength
                )
        return conversions

    def total_conversions(self) -> int:
        """Sum of :meth:`conversions_of` over all live connections."""
        return sum(self.conversions_of(cid) for cid in self._active)

    def link_utilization(self) -> dict[str, float]:
        """Fraction of busy wavelength channels per inter-stage gap."""
        topo = self.topology
        cells = topo.r * topo.m * topo.k
        busy_in = sum(
            mask.bit_count() for row in self._in_mid.wave for mask in row
        )
        busy_out = sum(
            mask.bit_count() for row in self._mid_out.wave for mask in row
        )
        return {
            "input_to_middle": busy_in / cells,
            "middle_to_output": busy_out / cells,
        }

    def available_middles(self, source: Endpoint) -> list[int]:
        """Middle switches reachable from ``source``'s input module now."""
        g = self.topology.input_module_of(source.port)
        if self.construction is Construction.MSW_DOMINANT:
            blocked = self._in_mid_busy[g][source.wavelength]
        else:
            blocked = self._in_mid_full[g]
        free = free_middles(self._all_middles_mask, blocked, self._failed_mask)
        return list(iter_bits(free))

    # -- state signatures ---------------------------------------------------

    def state_signature(self) -> bytes:
        """Raw byte signature of the routed resource state.

        Two networks with identical topology compare equal exactly when
        every fiber wavelength and endpoint channel has the same busy
        status -- the reference dedup key of the exhaustive checker.
        """
        k = self.topology.k
        nbytes = (k + 7) // 8
        ep_bytes = (self.topology.n_ports * k + 7) // 8
        parts = [
            mask.to_bytes(nbytes, "little")
            for cube in (self._in_mid, self._mid_out)
            for row in cube.wave
            for mask in row
        ]
        parts.append(self._input_used.mask.to_bytes(ep_bytes, "little"))
        parts.append(self._output_used.mask.to_bytes(ep_bytes, "little"))
        return b"".join(parts)

    def _permute_endpoint_mask(self, mask: int, perm: tuple[int, ...]) -> int:
        """Apply a wavelength relabeling to an endpoint-usage mask."""
        k = self.topology.k
        k_full = self._k_full
        out = 0
        for port in range(self.topology.n_ports):
            sub = mask >> (port * k) & k_full
            if sub:
                out |= _permute_wavelengths(sub, perm) << (port * k)
        return out

    def canonical_signature(self, *, wavelength_symmetry: bool = False) -> bytes:
        """Signature invariant under middle-switch permutation.

        Middle switches are interchangeable resources: permuting their
        indices (together with their first- and second-stage fibers)
        maps reachable states to reachable states and blocked requests
        to blocked requests.  The canonical form therefore serializes
        each middle switch's column -- failure flag, incoming fibers,
        outgoing fibers -- and sorts the per-middle keys, collapsing the
        up-to-``m!`` symmetric images of a state onto one key.  Failed
        middles get a distinct flag byte, so only like-status middles
        ever trade places.

        With ``wavelength_symmetry`` the signature is additionally
        minimized over the ``k!`` global wavelength relabelings (sound
        when the request distribution is wavelength-symmetric, e.g. the
        MSW model where source and destination wavelengths coincide);
        the lexicographically smallest candidate wins.
        """
        topo = self.topology
        m, r, k = topo.m, topo.r, topo.k
        nbytes = (k + 7) // 8
        ep_bytes = (topo.n_ports * k + 7) // 8
        identity = tuple(range(k))
        if wavelength_symmetry and k > 1:
            perms: Iterable[tuple[int, ...]] = permutations(range(k))
        else:
            perms = (identity,)
        best: bytes | None = None
        for perm in perms:
            if perm == identity:
                in_wave = self._in_mid.wave
                out_wave = self._mid_out.wave
                in_used = self._input_used.mask
                out_used = self._output_used.mask
            else:
                in_wave = [
                    [_permute_wavelengths(mask, perm) for mask in row]
                    for row in self._in_mid.wave
                ]
                out_wave = [
                    [_permute_wavelengths(mask, perm) for mask in row]
                    for row in self._mid_out.wave
                ]
                in_used = self._permute_endpoint_mask(
                    self._input_used.mask, perm
                )
                out_used = self._permute_endpoint_mask(
                    self._output_used.mask, perm
                )
            keys = sorted(
                bytes([1 if j in self._failed_middles else 0])
                + b"".join(
                    in_wave[g][j].to_bytes(nbytes, "little") for g in range(r)
                )
                + b"".join(
                    mask.to_bytes(nbytes, "little") for mask in out_wave[j]
                )
                for j in range(m)
            )
            candidate = (
                b"".join(keys)
                + in_used.to_bytes(ep_bytes, "little")
                + out_used.to_bytes(ep_bytes, "little")
            )
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return best

    # -- request admission --------------------------------------------------

    def _fast_validate(self, request: MulticastConnection) -> bool:
        """True iff ``request`` is a legal addition, checked via the masks.

        Exact (never accepts what :meth:`_validate_request`'s slow path
        rejects), so a False return only means "take the slow path to
        raise the properly worded error".  The bitmask kernel's
        admission check on the Monte-Carlo hot path.
        """
        topology = self.topology
        k = topology.k
        n_ports = topology.n_ports
        source = request.source
        source_wavelength = source.wavelength
        if not (0 <= source.port < n_ports and 0 <= source_wavelength < k):
            return False
        if self._input_used.mask >> (source.port * k + source_wavelength) & 1:
            return False
        destinations = request.destinations
        if not destinations:
            return False
        model = self.model
        output_used = self._output_used.mask
        ports_seen = 0
        first_wavelength = -1
        for destination in destinations:
            port = destination.port
            wavelength = destination.wavelength
            if not (0 <= port < n_ports and 0 <= wavelength < k):
                return False
            bit = 1 << port
            if ports_seen & bit:
                return False
            ports_seen |= bit
            if output_used >> (port * k + wavelength) & 1:
                return False
            if first_wavelength < 0:
                first_wavelength = wavelength
            elif wavelength != first_wavelength and model is not MulticastModel.MAW:
                return False
        if model is MulticastModel.MSW and first_wavelength != source_wavelength:
            return False
        return True

    def _validate_request(self, request: MulticastConnection) -> None:
        if get_routing_kernel() != "reference" and self._fast_validate(request):
            return
        # Slow path: reference kernel, or a request the fast path refused
        # (re-checked here so the error text matches the legacy one).
        try:
            check_connection(
                request, self.model, self.topology.n_ports, self.topology.k
            )
        except ValidityError as exc:
            raise ValidityError(f"illegal request: {exc}") from exc
        source = request.source
        if self._input_used[source.port, source.wavelength]:
            raise ValidityError(f"input endpoint {source} already in use")
        for destination in request.destinations:
            if self._output_used[destination.port, destination.wavelength]:
                raise ValidityError(
                    f"output endpoint {destination} already in use"
                )

    def _module_destinations(
        self, request: MulticastConnection
    ) -> dict[int, list[Endpoint]]:
        by_module: dict[int, list[Endpoint]] = defaultdict(list)
        for destination in request.destinations:
            by_module[self.topology.output_module_of(destination.port)].append(
                destination
            )
        return dict(by_module)

    def _required_out_wavelength(
        self, module_destinations: dict[int, list[Endpoint]]
    ) -> dict[int, int | None]:
        """Wavelength each middle->output fiber must carry (None = any free).

        Pinned only when the output modules cannot convert, i.e. when
        the network model is MSW (output stage is MSW): the fiber must
        carry the destinations' wavelength.
        """
        required: dict[int, int | None] = {}
        for module, destinations in module_destinations.items():
            if self.model is MulticastModel.MSW:
                required[module] = destinations[0].wavelength
            else:
                required[module] = None
        return required

    # -- routing -----------------------------------------------------------

    def _coverable_sets(
        self,
        input_module: int,
        source_wavelength: int,
        destinations: frozenset[int],
        required: dict[int, int | None],
    ) -> dict[int, frozenset[int]]:
        """For each available middle switch, the destination modules it can reach."""
        m = self.topology.m
        k_full = self._k_full
        in_wave = self._in_mid.wave[input_module]
        coverable: dict[int, frozenset[int]] = {}
        msw_dominant = self.construction is Construction.MSW_DOMINANT
        for j in range(m):
            if j in self._failed_middles:
                continue
            # First-stage fiber availability.
            if msw_dominant:
                if in_wave[j] >> source_wavelength & 1:
                    continue
            else:
                if in_wave[j] == k_full:
                    continue
            reach = set()
            out_wave = self._mid_out.wave[j]
            for p in destinations:
                if msw_dominant:
                    # Middle module is MSW: the second-stage fiber carries
                    # the source wavelength, full stop.
                    if not out_wave[p] >> source_wavelength & 1:
                        reach.add(p)
                else:
                    pinned = required[p]
                    if pinned is not None:
                        if not out_wave[p] >> pinned & 1:
                            reach.add(p)
                    elif out_wave[p] != k_full:
                        reach.add(p)
            if reach:
                coverable[j] = frozenset(reach)
        return coverable

    def _admission_rows(
        self, input_module: int, source_wavelength: int
    ) -> tuple[int, list[int]]:
        """The engine-kernel view of this state for one setup.

        Returns ``(blocked, blockers)``: the first-stage blocked-middles
        mask out of ``input_module`` and the per-middle second-stage
        blocker row.  This pair is the *only* place the serial network
        maps its incremental caches onto the per-model admission rule;
        everything downstream (reachability, cover search, cause
        classification) is :mod:`repro.engine.kernel`.

        Under the MSW-dominant construction the source wavelength is
        pinned end to end, so both rows are per-wavelength busy masks.
        Under MAW-dominant the first stage blocks only on a *full*
        fiber; the second stage pins the delivery wavelength to the
        source's exactly when the endpoint model is MSW (validated
        requests have all destination wavelengths equal to it), and
        otherwise converts freely, blocking only on full fibers.
        """
        g = input_module
        if self.construction is Construction.MSW_DOMINANT:
            return (
                self._in_mid_busy[g][source_wavelength],
                self._mid_out_busy[source_wavelength],
            )
        if self.model is MulticastModel.MSW:
            return self._in_mid_full[g], self._mid_out_busy[source_wavelength]
        return self._in_mid_full[g], self._mid_out_full

    def _coverable_bits(
        self,
        input_module: int,
        source_wavelength: int,
        dest_mask: int,
    ) -> dict[int, int]:
        """Bitmask form of :meth:`_coverable_sets`, served from the cache.

        Delegates to the shared engine kernel: keys iterate in ascending
        middle index, matching the sorted candidate order of the
        reference path; values are bitmasks over output modules.
        """
        blocked, blockers = self._admission_rows(input_module, source_wavelength)
        available = free_middles(
            self._all_middles_mask, blocked, self._failed_mask
        )
        return reach_map(available, dest_mask, blockers)

    def _cover_for(
        self,
        request: MulticastConnection,
        *,
        stats: CoverSearch | None = None,
        force_middles: dict[int, list[int]] | None = None,
    ) -> tuple[int, dict[int, list[Endpoint]], dict[int, int | None], dict[int, list[int]] | None]:
        """Run the cover search for ``request`` against the current state.

        Returns ``(input_module, module_destinations, required, cover)``
        without mutating any state; ``cover`` is None when the request
        has no <= x-middle cover.  Dispatches to the active routing
        kernel (bitmask cache by default, the frozenset reference path
        under ``routing_kernel("reference")``).
        """
        if get_routing_kernel() == "reference":
            g = self.topology.input_module_of(request.source.port)
            module_destinations = self._module_destinations(request)
            required = self._required_out_wavelength(module_destinations)
            destinations = frozenset(module_destinations)
            coverable = self._coverable_sets(
                g, request.source.wavelength, destinations, required
            )
            if force_middles is not None:
                cover = self._validated_forced_cover(
                    force_middles, destinations, coverable
                )
            else:
                cover = find_cover(
                    destinations,
                    coverable,
                    self.x,
                    stats=stats,
                    preference=self._middle_preference(),
                )
            return g, module_destinations, required, cover
        # Bitmask kernel: ports were range-checked at admission, so the
        # module mapping inlines the ``port // n`` arithmetic instead of
        # going through the re-validating topology accessors.
        n = self.topology.n
        g = request.source.port // n
        module_destinations = {}
        for destination in request.destinations:
            module_destinations.setdefault(destination.port // n, []).append(
                destination
            )
        pin = self.model is MulticastModel.MSW
        required = {
            module: destinations[0].wavelength if pin else None
            for module, destinations in module_destinations.items()
        }
        dest_mask = mask_of(module_destinations)
        coverable_bits = self._coverable_bits(
            g, request.source.wavelength, dest_mask
        )
        if force_middles is not None:
            cover = self._validated_forced_cover(
                force_middles,
                frozenset(module_destinations),
                {j: frozenset(iter_bits(bits)) for j, bits in coverable_bits.items()},
            )
            return g, module_destinations, required, cover
        cover_bits = find_cover_bits(
            dest_mask,
            coverable_bits,
            self.x,
            stats=stats,
            preference=self._middle_preference(),
        )
        if cover_bits is None:
            cover = None
        else:
            cover = {}
            for j, bits in cover_bits.items():
                modules = []
                while bits:
                    low = bits & -bits
                    modules.append(low.bit_length() - 1)
                    bits ^= low
                cover[j] = modules
        if stats is not None:
            stats.cover = cover
        return g, module_destinations, required, cover

    def probe_cover(
        self, request: MulticastConnection, *, stats: CoverSearch | None = None
    ) -> dict[int, list[int]] | None:
        """The cover :meth:`connect` would use for ``request`` right now.

        Read-only: no resources are allocated.  Returns None when the
        request would block -- the primitive the exhaustive model checker
        probes reachable states with.
        """
        return self._cover_for(request, stats=stats)[3]

    def explain_block(self, request: MulticastConnection) -> dict:
        """Reconstruct *why* ``request`` blocks, from the bitmask caches.

        Read-only.  Classifies the failure into one of four kinds -- the
        contention modes the paper's constructions trade off:

        * ``saturated_wavelength`` -- MSW-dominant: the source wavelength
          is busy on every non-failed first-stage fiber out of the input
          module (the MSW input module cannot convert around it);
        * ``converter_exhaustion`` -- MAW-dominant: every wavelength on
          every non-failed first-stage fiber is busy, so no converter
          assignment at the input module can reach any middle switch;
        * ``full_middles`` -- some requested output module is unreachable
          through *every* available middle switch (its second-stage
          fibers are saturated on the needed wavelength);
        * ``no_cover`` -- every output module is individually reachable,
          but no set of at most ``x`` available middle switches covers
          them all: the Lemma-4 routing budget is what binds.

        The returned dict matches ``repro.obs.trace.CAUSE_SCHEMA``:
        alongside ``kind`` it carries the raw evidence masks
        (``first_stage_blocked_mask``, ``available_middles_mask``,
        ``failed_middles_mask``), the requested ``destination_modules``,
        the ``unreachable_modules`` subset, and ``per_destination``
        pairs ``[module, middles_mask]`` giving the middle switches able
        to reach each module.  Callers should only invoke this on a
        request that actually blocks; on a routable request the kind
        degenerates to ``no_cover`` with full reachability evidence.
        """
        g = self.topology.input_module_of(request.source.port)
        source_wavelength = request.source.wavelength
        dest_mask = mask_of(self._module_destinations(request))
        blocked, blockers = self._admission_rows(g, source_wavelength)
        available = free_middles(
            self._all_middles_mask, blocked, self._failed_mask
        )
        coverable = reach_map(available, dest_mask, blockers)
        return block_cause(
            x=self.x,
            input_module=g,
            source_wavelength=source_wavelength,
            blocked_mask=blocked,
            available=available,
            coverable=coverable,
            dest_mask=dest_mask,
            msw_dominant=self.construction is Construction.MSW_DOMINANT,
            failed_mask=self._failed_mask,
        )

    def _mark_in_mid(self, g: int, j: int, wavelength: int, busy: bool) -> None:
        """Set one first-stage link wavelength and keep the cache in sync."""
        bit = 1 << j
        counts = self._in_mid_count[g]
        wave = self._in_mid.wave[g]
        if busy:
            wave[j] |= 1 << wavelength
            self._in_mid_busy[g][wavelength] |= bit
            counts[j] += 1
            if counts[j] == self.topology.k:
                self._in_mid_full[g] |= bit
        else:
            wave[j] &= ~(1 << wavelength)
            self._in_mid_busy[g][wavelength] &= ~bit
            if counts[j] == self.topology.k:
                self._in_mid_full[g] &= ~bit
            counts[j] -= 1

    def _mark_mid_out(self, j: int, p: int, wavelength: int, busy: bool) -> None:
        """Set one second-stage link wavelength and keep the cache in sync."""
        bit = 1 << p
        counts = self._mid_out_count[j]
        wave = self._mid_out.wave[j]
        if busy:
            wave[p] |= 1 << wavelength
            self._mid_out_busy[wavelength][j] |= bit
            counts[p] += 1
            if counts[p] == self.topology.k:
                self._mid_out_full[j] |= bit
        else:
            wave[p] &= ~(1 << wavelength)
            self._mid_out_busy[wavelength][j] &= ~bit
            if counts[p] == self.topology.k:
                self._mid_out_full[j] &= ~bit
            counts[p] -= 1

    def connect(
        self,
        request: MulticastConnection,
        *,
        stats: CoverSearch | None = None,
        force_middles: dict[int, list[int]] | None = None,
    ) -> int:
        """Set up a multicast connection; returns its connection id.

        Args:
            request: the multicast connection to establish.
            stats: optional cover-search statistics accumulator.
            force_middles: adversarial/test hook -- a specific
                ``{middle switch: [output modules]}`` split to use instead
                of running the cover search.  The forced split must still
                be *feasible* (fibers free, within the ``x`` budget); it
                just overrides the router's free choice.  The nonblocking
                theorems quantify over every choice the routing strategy
                allows, so worst-case demonstrations (necessity
                constructions) legitimately steer this choice.

        Raises:
            repro.switching.validity.ValidityError: the request is not a
                legal addition to the active assignment (caller error).
            BlockedError: the request is legal but the network cannot
                route it with at most ``x`` middle switches -- the event
                the nonblocking theorems forbid when ``m`` meets the bound.
            ValueError: a ``force_middles`` split is malformed or
                infeasible.
        """
        self._validate_request(request)
        g, module_destinations, required, cover = self._cover_for(
            request, stats=stats, force_middles=force_middles
        )
        if cover is None:
            self.blocks += 1
            if _obs.enabled():
                _obs.on_block(self, request, self.explain_block(request), stats)
            raise BlockedError(
                f"request {request} blocked: no <= {self.x}-middle cover "
                "among the available middles"
            )

        branches = []
        msw_dominant = self.construction is Construction.MSW_DOMINANT
        for j, modules in sorted(cover.items()):
            if msw_dominant:
                in_wavelength = request.source.wavelength
            else:
                in_wavelength = self._pick_wavelength(
                    self._k_full & ~self._in_mid.wave[g][j]
                )
            self._mark_in_mid(g, j, in_wavelength, True)
            deliveries = []
            for p in modules:
                pinned = required[p]
                if msw_dominant:
                    out_wavelength = request.source.wavelength
                elif pinned is not None:
                    out_wavelength = pinned
                else:
                    out_wavelength = self._pick_wavelength(
                        self._k_full & ~self._mid_out.wave[j][p]
                    )
                self._mark_mid_out(j, p, out_wavelength, True)
                deliveries.append((p, out_wavelength))
            branches.append(
                RoutedBranch(
                    middle=j,
                    in_wavelength=in_wavelength,
                    deliveries=tuple(deliveries),
                )
            )

        k = self.topology.k
        self._input_used.mask |= 1 << (
            request.source.port * k + request.source.wavelength
        )
        for destination in request.destinations:
            self._output_used.mask |= 1 << (
                destination.port * k + destination.wavelength
            )

        connection_id = self._next_id
        self._next_id += 1
        routed = RoutedConnection(
            connection_id=connection_id,
            request=request,
            input_module=g,
            branches=tuple(branches),
        )
        self._active[connection_id] = routed
        self.setups += 1
        if _obs.enabled():
            _obs.on_admit(self, routed, stats)
        if self.debug_checks:
            self.check_invariants()
        return connection_id

    # -- failure injection -------------------------------------------------

    @property
    def failed_middles(self) -> frozenset[int]:
        """Middle switches currently marked failed."""
        return frozenset(self._failed_middles)

    def fail_middle(self, middle: int, *, drain: bool = False) -> list[MulticastConnection]:
        """Mark a middle switch failed; no new routes will use it.

        Args:
            middle: index of the middle switch.
            drain: if True, live connections routed through the failed
                switch are disconnected and their requests returned so the
                caller can re-route them (the optical-recovery workflow);
                if False (default) the call refuses to fail a middle that
                carries traffic.

        Returns:
            The requests of drained connections (empty without ``drain``).

        Raises:
            ValueError: the middle is out of range, or carries traffic
                and ``drain`` is False.

        Provisioning rule validated by the tests: a network sized at
        ``m >= bound + f`` tolerates any ``f`` concurrent failures with
        zero blocking -- failed switches just count against the spare
        margin.
        """
        if not 0 <= middle < self.topology.m:
            raise ValueError(
                f"middle {middle} outside [0, {self.topology.m})"
            )
        victims = [
            cid
            for cid, routed in self._active.items()
            if middle in routed.middles_used
        ]
        if victims and not drain:
            raise ValueError(
                f"middle {middle} carries {len(victims)} live connections; "
                "pass drain=True to disconnect and reclaim them"
            )
        drained = []
        for cid in victims:
            drained.append(self._active[cid].request)
            self.disconnect(cid)
        self._failed_middles.add(middle)
        self._failed_mask |= 1 << middle
        return drained

    def repair_middle(self, middle: int) -> None:
        """Return a failed middle switch to service."""
        self._failed_middles.discard(middle)
        self._failed_mask &= ~(1 << middle)

    def wavelength_usage(self) -> list[int]:
        """Busy internal channels per wavelength index, network-wide."""
        usage = [0] * self.topology.k
        for cube in (self._in_mid, self._mid_out):
            for row in cube.wave:
                for mask in row:
                    while mask:
                        low = mask & -mask
                        usage[low.bit_length() - 1] += 1
                        mask ^= low
        return usage

    def _pick_wavelength(self, free_mask: int) -> int:
        """Choose a carrier among the ``free_mask`` wavelengths per policy."""
        if self.wavelength_policy == "first_fit" or free_mask & (free_mask - 1) == 0:
            return (free_mask & -free_mask).bit_length() - 1
        free = list(iter_bits(free_mask))
        if self.wavelength_policy == "random":
            return self._selection_rng.choice(free)
        usage = self.wavelength_usage()
        if self.wavelength_policy == "most_used":
            return max(free, key=lambda w: (usage[w], -w))
        # least_used
        return min(free, key=lambda w: (usage[w], w))

    def middle_load(self, middle: int) -> int:
        """Busy wavelength channels on a middle switch's fibers (both sides)."""
        in_load = sum(
            row[middle].bit_count() for row in self._in_mid.wave
        )
        out_load = sum(mask.bit_count() for mask in self._mid_out.wave[middle])
        return in_load + out_load

    def _middle_preference(self) -> list[int] | None:
        """Candidate order implementing the selection strategy."""
        if self.selection in ("greedy", "first_fit"):
            return None  # ascending index, the default
        middles = list(range(self.topology.m))
        if self.selection == "random":
            self._selection_rng.shuffle(middles)
            return middles
        loads = [self.middle_load(j) for j in middles]
        if self.selection == "least_loaded":
            return sorted(middles, key=lambda j: (loads[j], j))
        # most_loaded (packing)
        return sorted(middles, key=lambda j: (-loads[j], j))

    def _validated_forced_cover(
        self,
        force_middles: dict[int, list[int]],
        destinations: frozenset[int],
        coverable: dict[int, frozenset[int]],
    ) -> dict[int, list[int]]:
        """Check a caller-chosen middle-switch split for feasibility."""
        if len(force_middles) > self.x:
            raise ValueError(
                f"forced split uses {len(force_middles)} middles, x={self.x}"
            )
        assigned: list[int] = []
        for j, modules in force_middles.items():
            if j not in coverable:
                raise ValueError(f"middle switch {j} is not available")
            bad = set(modules) - coverable[j]
            if bad:
                raise ValueError(
                    f"middle switch {j} cannot reach output modules {sorted(bad)}"
                )
            assigned.extend(modules)
        if sorted(assigned) != sorted(destinations):
            raise ValueError(
                f"forced split covers {sorted(assigned)}, request needs "
                f"{sorted(destinations)}"
            )
        return {j: sorted(modules) for j, modules in force_middles.items()}

    def try_connect(self, request: MulticastConnection) -> int | None:
        """Like :meth:`connect` but returns None instead of raising on block."""
        try:
            return self.connect(request)
        except BlockedError:
            return None

    def disconnect(self, connection_id: int) -> None:
        """Tear down a live connection and release its resources."""
        routed = self._active.pop(connection_id, None)
        if routed is None:
            raise KeyError(f"no active connection with id {connection_id}")
        g = routed.input_module
        for branch in routed.branches:
            assert self._in_mid.wave[g][branch.middle] >> branch.in_wavelength & 1
            self._mark_in_mid(g, branch.middle, branch.in_wavelength, False)
            for p, out_wavelength in branch.deliveries:
                assert self._mid_out.wave[branch.middle][p] >> out_wavelength & 1
                self._mark_mid_out(branch.middle, p, out_wavelength, False)
        k = self.topology.k
        source = routed.request.source
        self._input_used.mask &= ~(
            1 << (source.port * k + source.wavelength)
        )
        for destination in routed.request.destinations:
            self._output_used.mask &= ~(
                1 << (destination.port * k + destination.wavelength)
            )
        self.teardowns += 1
        if _obs.enabled():
            _obs.on_release(self, connection_id)
        if self.debug_checks:
            self.check_invariants()

    def disconnect_all(self) -> None:
        """Tear everything down (returns the network to idle)."""
        for connection_id in list(self._active):
            self.disconnect(connection_id)

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the link state equals the sum of active connections.

        Used by the fuzz tests after every event: any leak or
        double-booking in setup/teardown shows up immediately.
        """
        topo = self.topology
        r, m, k = topo.r, topo.m, topo.k
        in_wave = [[0] * m for _ in range(r)]
        out_wave = [[0] * r for _ in range(m)]
        input_mask = 0
        output_mask = 0
        for routed in self._active.values():
            g = routed.input_module
            source = routed.request.source
            bit = 1 << (source.port * k + source.wavelength)
            assert not input_mask & bit
            input_mask |= bit
            for destination in routed.request.destinations:
                bit = 1 << (destination.port * k + destination.wavelength)
                assert not output_mask & bit
                output_mask |= bit
            for branch in routed.branches:
                wbit = 1 << branch.in_wavelength
                assert not in_wave[g][branch.middle] & wbit, (
                    "two connections share a first-stage link wavelength"
                )
                in_wave[g][branch.middle] |= wbit
                for p, w in branch.deliveries:
                    assert not out_wave[branch.middle][p] & (1 << w), (
                        "two connections share a second-stage link wavelength"
                    )
                    out_wave[branch.middle][p] |= 1 << w
        assert in_wave == self._in_mid.wave, "first-stage link state leak"
        assert out_wave == self._mid_out.wave, "second-stage link state leak"
        assert input_mask == self._input_used.mask, "input endpoint leak"
        assert output_mask == self._output_used.mask, "output endpoint leak"

        # The incremental coverability cache must mirror the wave masks.
        for g in range(r):
            row = self._in_mid.wave[g]
            for w in range(k):
                expected = mask_of(j for j in range(m) if row[j] >> w & 1)
                assert self._in_mid_busy[g][w] == expected, (
                    "in_mid busy-mask cache out of sync"
                )
            counts = [row[j].bit_count() for j in range(m)]
            assert self._in_mid_count[g] == counts, (
                "in_mid count cache out of sync"
            )
            expected_full = mask_of(j for j in range(m) if counts[j] == k)
            assert self._in_mid_full[g] == expected_full, (
                "in_mid full-mask cache out of sync"
            )
        for j in range(m):
            row = self._mid_out.wave[j]
            for w in range(k):
                expected = mask_of(p for p in range(r) if row[p] >> w & 1)
                assert self._mid_out_busy[w][j] == expected, (
                    "mid_out busy-mask cache out of sync"
                )
            counts = [row[p].bit_count() for p in range(r)]
            assert self._mid_out_count[j] == counts, (
                "mid_out count cache out of sync"
            )
            expected_full = mask_of(p for p in range(r) if counts[p] == k)
            assert self._mid_out_full[j] == expected_full, (
                "mid_out full-mask cache out of sync"
            )
        assert self._failed_mask == mask_of(self._failed_middles), (
            "failed-middle mask out of sync"
        )
