"""The three-stage topology ``v(n, r, m, k)`` of Fig. 8.

* ``r`` input-stage modules of size ``n x m`` -- input module ``g``
  terminates global input ports ``g*n .. g*n + n - 1``;
* ``m`` middle-stage modules of size ``r x r``;
* ``r`` output-stage modules of size ``m x n`` -- output module ``p``
  drives global output ports ``p*n .. p*n + n - 1``;
* exactly one ``k``-wavelength fiber between every pair of modules in
  adjacent stages.

The overall network is ``N x N`` with ``N = n * r``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThreeStageTopology"]


@dataclass(frozen=True)
class ThreeStageTopology:
    """Static shape of a three-stage network.

    Attributes:
        n: ports per input (and output) module.
        r: number of input (and output) modules.
        m: number of middle modules.
        k: wavelengths per fiber.
    """

    n: int
    r: int
    m: int
    k: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"module port count n must be >= 1, got {self.n}")
        if self.r < 1:
            raise ValueError(f"module count r must be >= 1, got {self.r}")
        if self.m < 1:
            raise ValueError(f"middle count m must be >= 1, got {self.m}")
        if self.k < 1:
            raise ValueError(f"wavelength count k must be >= 1, got {self.k}")

    @property
    def n_ports(self) -> int:
        """Overall network size ``N = n r``."""
        return self.n * self.r

    # -- port/module arithmetic ----------------------------------------

    def input_module_of(self, port: int) -> int:
        """Input module terminating global input ``port``."""
        self._check_port(port)
        return port // self.n

    def output_module_of(self, port: int) -> int:
        """Output module driving global output ``port``."""
        self._check_port(port)
        return port // self.n

    def local_port(self, port: int) -> int:
        """Index of ``port`` within its module (0-based)."""
        self._check_port(port)
        return port % self.n

    def ports_of_module(self, module: int) -> range:
        """Global ports of input/output module ``module``."""
        if not 0 <= module < self.r:
            raise ValueError(f"module {module} outside [0, {self.r})")
        return range(module * self.n, (module + 1) * self.n)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ValueError(f"port {port} outside [0, {self.n_ports})")

    # -- link inventory ---------------------------------------------------

    @property
    def first_stage_links(self) -> int:
        """Number of fibers between input and middle stages (``r * m``)."""
        return self.r * self.m

    @property
    def second_stage_links(self) -> int:
        """Number of fibers between middle and output stages (``m * r``)."""
        return self.m * self.r

    @property
    def internal_wavelength_channels(self) -> int:
        """Total internal link-wavelength channels (both inter-stage gaps)."""
        return (self.first_stage_links + self.second_stage_links) * self.k

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"v(n={self.n}, r={self.r}, m={self.m}, k={self.k}): "
            f"{self.n_ports}x{self.n_ports} WDM network, "
            f"{self.r} input modules ({self.n}x{self.m}), "
            f"{self.m} middle modules ({self.r}x{self.r}), "
            f"{self.r} output modules ({self.m}x{self.n})"
        )
