"""Adversarial traffic: making under-provisioned networks block.

Theorems 1-2 are *sufficient* conditions; the paper notes (citing [16])
that matching necessary values of ``m`` exist under common routing
strategies.  This module provides the blocking side of the story:

* :func:`fig10_scenario` -- the paper's Fig. 10: a connection blocked at
  a middle-stage MSW switch because of its pinned wavelength, which the
  MAW-dominant construction routes without trouble.  Both networks see
  the *same* external connection sequence; only the construction differs.
* :func:`minimal_blocking_scenario` -- the smallest deterministic
  blocking witness: with ``m`` below the bound, a legal request the
  MSW-dominant network must refuse.
* :func:`search_blocking_state` -- randomized multi-restart adversary:
  drives a network with fanout-heavy traffic until a legal request
  blocks, returning the witness (or None).  Used by the Monte-Carlo
  analysis and by tests that map how far below the bound blocking
  actually appears.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.models import Construction, MulticastModel
from repro.multistage.network import BlockedError, ThreeStageNetwork
from repro.switching.requests import Endpoint, MulticastConnection

__all__ = [
    "BlockingWitness",
    "Fig10Outcome",
    "Theorem1GapResult",
    "demonstrate_theorem1_gap",
    "fig10_scenario",
    "minimal_blocking_scenario",
    "search_blocking_state",
]


@dataclass(frozen=True)
class BlockingWitness:
    """A reproducible blocking event: prior connections + refused request."""

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    model: MulticastModel
    x: int
    prior: tuple[MulticastConnection, ...]
    blocked_request: MulticastConnection

    def replay(self) -> ThreeStageNetwork:
        """Rebuild the network, route the priors, and verify the block.

        Returns the network in the blocking state.  Raises AssertionError
        if the witness no longer blocks (a routing change regression).
        """
        net = ThreeStageNetwork(
            self.n,
            self.r,
            self.m,
            self.k,
            construction=self.construction,
            model=self.model,
            x=self.x,
        )
        for request in self.prior:
            net.connect(request)
        try:
            net.connect(self.blocked_request)
        except BlockedError:
            return net
        raise AssertionError("witness no longer blocks; routing changed?")

    def explain(self) -> dict:
        """Replay the witness and classify the block through the engine.

        Returns the :func:`repro.engine.kernel.block_cause` dict (shape
        :data:`repro.obs.trace.CAUSE_SCHEMA`) for the refused request --
        the same classification the serial simulator and the lockstep
        batch engine would report, since all three paths share
        :mod:`repro.engine`.
        """
        net = self.replay()
        return net.explain_block(self.blocked_request)


@dataclass(frozen=True)
class Fig10Outcome:
    """Result of the Fig. 10 comparison."""

    connections: tuple[MulticastConnection, ...]
    contested: MulticastConnection
    msw_dominant_blocked: bool
    maw_dominant_blocked: bool


def fig10_scenario() -> Fig10Outcome:
    """Reproduce Fig. 10: MSW middle switches block, MAW ones don't.

    Network: ``v(n=2, r=2, m=2, k=2)`` under the MAW model, ``x = 1``.
    Three single-destination connections arrive in order; the third is
    routable only if the first two stages can change wavelengths.

    Returns the outcome; the reproduction requires
    ``msw_dominant_blocked and not maw_dominant_blocked``.
    """
    lam0, lam1 = 0, 1
    prior = (
        # Module 0's other input, wavelength 0, to output module 1.
        MulticastConnection(Endpoint(1, lam0), [Endpoint(2, lam0)]),
        # Module 1's input, wavelength 0, also to output module 1.
        MulticastConnection(Endpoint(2, lam0), [Endpoint(3, lam0)]),
    )
    # The contested request: port 0 on wavelength 0 to output module 1.
    contested = MulticastConnection(Endpoint(0, lam0), [Endpoint(2, lam1)])

    outcomes = {}
    for construction in Construction:
        net = ThreeStageNetwork(
            2, 2, 2, 2, construction=construction, model=MulticastModel.MAW, x=1
        )
        for request in prior:
            net.connect(request)
        outcomes[construction] = net.try_connect(contested) is None
    return Fig10Outcome(
        connections=prior,
        contested=contested,
        msw_dominant_blocked=outcomes[Construction.MSW_DOMINANT],
        maw_dominant_blocked=outcomes[Construction.MAW_DOMINANT],
    )


def minimal_blocking_scenario() -> BlockingWitness:
    """The smallest deterministic blocking witness.

    ``v(n=2, r=2, m=1, k=1)`` (Theorem 1 requires ``m >= 4``): one prior
    connection saturates the only first-stage fiber wavelength from
    input module 0, so any further request from module 0's other port
    must block.
    """
    witness = BlockingWitness(
        n=2,
        r=2,
        m=1,
        k=1,
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=1,
        prior=(MulticastConnection(Endpoint(1, 0), [Endpoint(2, 0)]),),
        blocked_request=MulticastConnection(Endpoint(0, 0), [Endpoint(3, 0)]),
    )
    witness.replay()  # self-check
    return witness


@dataclass(frozen=True)
class Theorem1GapResult:
    """Outcome of the Theorem-1 gap demonstration (see ``core.corrected``)."""

    n: int
    r: int
    k: int
    model: MulticastModel
    m_paper: int
    m_corrected: int
    blocked_at_paper_bound: bool
    routed_at_corrected_bound: bool


def _gap_attack(
    n: int, r: int, k: int, m: int, model: MulticastModel
) -> tuple[ThreeStageNetwork, MulticastConnection]:
    """Drive an MSW-dominant network into the worst lambda_0 state.

    Every connection is legal, uses one middle switch (x = 1), and the
    middle choices are within the routing strategy's freedom (enforced
    via ``force_middles``, which validates feasibility).  Returns the
    loaded network and the fanout-``r`` probe request.
    """
    net = ThreeStageNetwork(
        n, r, m, k, construction=Construction.MSW_DOMINANT, model=model, x=1
    )
    used_outputs: set[tuple[int, int]] = set()

    def allocate_output(module: int) -> Endpoint:
        for port in range(module * n, (module + 1) * n):
            for wavelength in range(k):
                if (port, wavelength) not in used_outputs:
                    used_outputs.add((port, wavelength))
                    return Endpoint(port, wavelength)
        raise RuntimeError(f"output module {module} exhausted")

    # Stage 1: the request's sibling sources occupy the lambda_0 channel
    # of module 0's fibers to middles 0..n-2 (first-stage kills).
    for index in range(1, n):
        middle = index - 1
        target_module = index % r
        net.connect(
            MulticastConnection(
                Endpoint(index, 0), [allocate_output(target_module)]
            ),
            force_middles={middle: [target_module]},
        )

    # Stage 2: lambda_0 sources from the other modules saturate the
    # lambda_0 channel of one middle->output fiber each (destination
    # kills), spread so no output module exceeds its nk-1 endpoints.
    other_sources = [
        Endpoint(port, 0)
        for module in range(1, r)
        for port in range(module * n, (module + 1) * n)
    ]
    kills_per_module = [0] * r
    source_index = 0
    for middle in range(n - 1, m):
        if source_index >= len(other_sources):
            break  # out of ammunition: the bound holds at this m
        target_module = min(range(r), key=lambda p: kills_per_module[p])
        if kills_per_module[target_module] >= n * k - 1:
            break  # capacity exhausted everywhere relevant
        kills_per_module[target_module] += 1
        net.connect(
            MulticastConnection(
                other_sources[source_index], [allocate_output(target_module)]
            ),
            force_middles={middle: [target_module]},
        )
        source_index += 1

    if model is MulticastModel.MSDW:
        # All probe destinations must share one wavelength: find a
        # wavelength with a free endpoint in every output module.
        for wavelength in range(k):
            candidates = []
            for module in range(r):
                free = [
                    Endpoint(port, wavelength)
                    for port in range(module * n, (module + 1) * n)
                    if (port, wavelength) not in used_outputs
                ]
                if not free:
                    break
                candidates.append(free[0])
            if len(candidates) == r:
                for endpoint in candidates:
                    used_outputs.add((endpoint.port, endpoint.wavelength))
                probe = MulticastConnection(Endpoint(0, 0), candidates)
                break
        else:  # pragma: no cover - sizes are chosen to avoid this
            raise RuntimeError("no common probe wavelength available")
    else:
        probe = MulticastConnection(
            Endpoint(0, 0), [allocate_output(module) for module in range(r)]
        )
    return net, probe


def demonstrate_theorem1_gap(
    n: int = 2, r: int = 3, k: int = 2, model: MulticastModel = MulticastModel.MAW
) -> Theorem1GapResult:
    """Show that Theorem 1's bound is insufficient for MSDW/MAW models.

    Builds the worst-case lambda_0 traffic pattern (legal, x = 1) on an
    MSW-dominant network sized exactly at the paper's Theorem-1 minimum,
    where a fanout-``r`` request must block; then repeats the attack at
    the corrected model-aware minimum
    (:func:`repro.core.corrected.min_middle_switches_corrected`), where
    it must route.

    Args:
        n, r, k: topology; requires ``r >= n + 1`` and ``k >= 2`` (the
            regime where the gap opens) and a non-MSW ``model``.

    Returns:
        The result record; a successful demonstration has
        ``blocked_at_paper_bound and routed_at_corrected_bound``.
    """
    from repro.core.corrected import min_middle_switches_corrected
    from repro.core.multistage import min_middle_switches_msw_dominant

    if model is MulticastModel.MSW:
        raise ValueError("the gap only exists for MSDW/MAW models")
    if k < 2 or r < n + 1:
        raise ValueError(
            f"the demonstration needs k >= 2 and r >= n + 1, got k={k}, "
            f"n={n}, r={r}"
        )
    m_paper = min_middle_switches_msw_dominant(n, r, k, x=1)
    m_corrected = min_middle_switches_corrected(
        n, r, k, Construction.MSW_DOMINANT, model, x=1
    )

    net, probe = _gap_attack(n, r, k, m_paper, model)
    blocked = net.try_connect(probe) is None

    net_corrected, probe_corrected = _gap_attack(n, r, k, m_corrected, model)
    routed = net_corrected.try_connect(probe_corrected) is not None

    return Theorem1GapResult(
        n=n,
        r=r,
        k=k,
        model=model,
        m_paper=m_paper,
        m_corrected=m_corrected,
        blocked_at_paper_bound=blocked,
        routed_at_corrected_bound=routed,
    )


def search_blocking_state(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    seed: int = 0,
    max_events: int = 2000,
    fanout_bias: float = 0.7,
) -> BlockingWitness | None:
    """Randomized adversary hunting for a blocking state.

    Drives the network with randomized setups/teardowns biased toward
    large-fanout requests (which consume middle-switch diversity
    fastest).  Stops at the first legal request the network refuses.

    Args:
        n, r, m, k: topology under attack.
        construction, model, x: network configuration.
        seed: RNG seed (deterministic given all arguments).
        max_events: give up after this many traffic events.
        fanout_bias: probability of requesting the maximum feasible
            fanout rather than a random one.

    Returns:
        A replayable :class:`BlockingWitness`, or None if no blocking
        state was found within the budget.
    """
    rng = random.Random(seed)
    net = ThreeStageNetwork(
        n, r, m, k, construction=construction, model=model, x=x
    )
    n_ports = n * r
    live: dict[int, MulticastConnection] = {}
    history: list[MulticastConnection] = []

    def free_inputs() -> list[Endpoint]:
        used = {c.source for c in live.values()}
        return [
            Endpoint(p, w)
            for p in range(n_ports)
            for w in range(k)
            if Endpoint(p, w) not in used
        ]

    def free_outputs() -> list[Endpoint]:
        used = {d for c in live.values() for d in c.destinations}
        return [
            Endpoint(p, w)
            for p in range(n_ports)
            for w in range(k)
            if Endpoint(p, w) not in used
        ]

    def sample_request() -> MulticastConnection | None:
        sources = free_inputs()
        if not sources:
            return None
        source = rng.choice(sources)
        if model is MulticastModel.MSW:
            allowed = [e for e in free_outputs() if e.wavelength == source.wavelength]
        elif model is MulticastModel.MSDW:
            wavelength = rng.randrange(k)
            allowed = [e for e in free_outputs() if e.wavelength == wavelength]
        else:
            allowed = free_outputs()
        per_port: dict[int, list[Endpoint]] = {}
        for endpoint in allowed:
            per_port.setdefault(endpoint.port, []).append(endpoint)
        if not per_port:
            return None
        max_fanout = len(per_port)
        fanout = (
            max_fanout
            if rng.random() < fanout_bias
            else rng.randint(1, max_fanout)
        )
        ports = rng.sample(sorted(per_port), fanout)
        return MulticastConnection(
            source, [rng.choice(per_port[port]) for port in ports]
        )

    for _ in range(max_events):
        if live and rng.random() < 0.25:
            victim = rng.choice(sorted(live))
            net.disconnect(victim)
            del live[victim]
            continue
        request = sample_request()
        if request is None:
            if not live:
                return None
            victim = rng.choice(sorted(live))
            net.disconnect(victim)
            del live[victim]
            continue
        try:
            connection_id = net.connect(request)
        except BlockedError:
            witness = BlockingWitness(
                n=n,
                r=r,
                m=m,
                k=k,
                construction=construction,
                model=model,
                x=x,
                prior=tuple(live[cid] for cid in sorted(live)),
                blocked_request=request,
            )
            # Replaying the live set fresh (in id order) may route
            # differently than the original interleaved history did; only
            # return witnesses that still block when replayed.
            try:
                witness.replay()
            except (AssertionError, BlockedError):
                continue
            return witness
        live[connection_id] = request
        history.append(request)
    return None
