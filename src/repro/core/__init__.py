"""Core analysis of the paper: models, capacity, cost, nonblocking bounds.

* :mod:`repro.core.models` -- the MSW / MSDW / MAW multicast models.
* :mod:`repro.core.capacity` -- multicast capacities (Lemmas 1-3).
* :mod:`repro.core.cost` -- crossbar crosspoint/converter costs (Table 1).
* :mod:`repro.core.multistage` -- nonblocking conditions for three-stage
  constructions (Theorems 1-2) as exact integer predicates, plus minimal
  middle-stage sizes and optimal routing parameters.
* :mod:`repro.core.asymptotics` -- the closed asymptotic forms of Table 2.
"""

from repro.core.capacity import (
    CapacityResult,
    any_multicast_capacity,
    full_multicast_capacity,
    log10_any_multicast_capacity,
    log10_full_multicast_capacity,
    multicast_capacity,
)
from repro.core.corrected import (
    CorrectedBound,
    destination_kill_capacity,
    is_nonblocking_corrected,
    min_middle_switches_corrected,
)
from repro.core.cost import (
    CrossbarCost,
    crossbar_converters,
    crossbar_cost,
    crossbar_crosspoints,
)
from repro.core.models import Construction, MulticastModel
from repro.core.unicast import clos_unicast_minimum, is_nonblocking_unicast
from repro.core.multistage import (
    MultistageDesign,
    NonblockingBound,
    is_nonblocking_maw_dominant,
    is_nonblocking_msw_dominant,
    min_middle_switches,
    min_middle_switches_maw_dominant,
    min_middle_switches_msw_dominant,
    multistage_cost,
    optimal_design,
    yang_masson_m,
)

__all__ = [
    "CapacityResult",
    "Construction",
    "CorrectedBound",
    "CrossbarCost",
    "MultistageDesign",
    "MulticastModel",
    "NonblockingBound",
    "any_multicast_capacity",
    "clos_unicast_minimum",
    "crossbar_converters",
    "crossbar_cost",
    "crossbar_crosspoints",
    "destination_kill_capacity",
    "full_multicast_capacity",
    "is_nonblocking_corrected",
    "is_nonblocking_unicast",
    "is_nonblocking_maw_dominant",
    "is_nonblocking_msw_dominant",
    "log10_any_multicast_capacity",
    "log10_full_multicast_capacity",
    "min_middle_switches",
    "min_middle_switches_corrected",
    "min_middle_switches_maw_dominant",
    "min_middle_switches_msw_dominant",
    "multicast_capacity",
    "multistage_cost",
    "optimal_design",
    "yang_masson_m",
]
