"""Model-aware (corrected) nonblocking bounds -- a reproduction finding.

The paper's Theorem 1 argues that, under the MSW-dominant construction,
"we can simply ignore other wavelengths and consider multicast routing
using only wavelength lambda_i", reducing the analysis to the
electronic (k = 1) case of [14].  That reduction is airtight when the
*network model is MSW*: destinations then live on the same wavelength,
so an output module can terminate at most ``n - 1`` other connections
competing for any given wavelength (its ``n`` ports each carry that
wavelength once).

For networks whose overall model is **MSDW or MAW**, however, the
output stage can convert: a connection *sourced* on lambda_0 can be
*delivered* on any wavelength.  Up to ``n k - 1`` other lambda_0-sourced
connections can therefore terminate at one output module -- each
arriving on the lambda_0 channel of a *different* middle->output fiber
and consuming one of the module's ``n k`` endpoints.  Each of those
saturates a distinct middle switch with respect to that module, so the
per-element "kill capacity" in the Yang-Masson counting is ``n k - 1``,
not ``n - 1``, and the sufficient condition becomes::

    m  >  (n - 1) x  +  (n k - 1) r^{1/x}        (MSW-dominant, MSDW/MAW)

The gap is real, not just analytical slack:
:func:`repro.multistage.adversary.demonstrate_theorem1_gap` constructs
a legal traffic state (reachable under the paper's own routing
strategy) that blocks a legal request at the paper's Theorem-1 minimum
for ``n=2, r=3, k=2`` under the MAW model, and this module's corrected
minimum provably routes everything (validated by the same adversary and
by fuzzing).

Theorem 2 (MAW-dominant) needs no correction: its destination-multiset
machinery already counts ``n k - 1`` per element and divides by the
``k``-fold link multiplicity, giving ``floor((nk-1)/k) = n - 1`` kills
per element for every output model.

A consequence worth noting (quantified in ``bench_corrected_bounds.py``):
for MSDW/MAW networks the MAW-dominant construction now needs *fewer*
middle switches than the (corrected) MSW-dominant one at equal ``x`` --
the paper's Section 3.4 preference for MSW-dominant is then a trade-off
between middle-stage count and per-module cost rather than a uniform win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.combinatorics.integers import min_base_exceeding, power_exceeds
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    unavailable_middle_bound,
    valid_x_range,
)

__all__ = [
    "CorrectedBound",
    "destination_kill_capacity",
    "is_nonblocking_corrected",
    "min_middle_switches_corrected",
]


def destination_kill_capacity(
    n: int, k: int, construction: Construction, model: MulticastModel
) -> int:
    """Max middle switches one output module can make uncoverable.

    The per-element capacity ``c`` in the Yang-Masson family bound
    ``m' <= c * r^{1/x}``:

    * MSW-dominant, model MSW: ``n - 1`` (the paper's Theorem 1 case);
    * MSW-dominant, model MSDW/MAW: ``n k - 1`` (output stage converts,
      so all ``n k`` endpoints compete -- the corrected case);
    * MAW-dominant, any model: ``n - 1`` (a middle->output fiber only
      saturates when all ``k`` wavelengths are busy:
      ``floor((nk - 1)/k) = n - 1``).
    """
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
    if construction is Construction.MAW_DOMINANT:
        return n - 1
    if model is MulticastModel.MSW:
        return n - 1
    return n * k - 1


def _min_m_with_x(
    n: int,
    r: int,
    k: int,
    x: int,
    construction: Construction,
    model: MulticastModel,
) -> int:
    unavailable = unavailable_middle_bound(n, k, x, construction)
    capacity = destination_kill_capacity(n, k, construction, model)
    if capacity == 0:
        return unavailable + 1
    return unavailable + min_base_exceeding(r * capacity**x, x)


def is_nonblocking_corrected(
    m: int,
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int | None = None,
) -> bool:
    """Model-aware sufficiency check: ``m > unavailable + c * r^{1/x}``.

    Coincides with the paper's Theorems 1-2 except for MSW-dominant
    networks under MSDW/MAW with ``k > 1``, where it is strictly
    stronger (see the module docstring).
    """
    if r < 1:
        raise ValueError(f"need r >= 1, got {r}")
    xs = [x] if x is not None else list(valid_x_range(n, r))
    capacity = destination_kill_capacity(n, k, construction, model)
    for xi in xs:
        headroom = m - unavailable_middle_bound(n, k, xi, construction)
        if headroom <= 0:
            continue
        if capacity == 0 or power_exceeds(headroom, xi, r * capacity**xi):
            return True
    return False


def min_middle_switches_corrected(
    n: int,
    r: int,
    k: int,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int | None = None,
) -> int:
    """Smallest ``m`` passing the model-aware bound."""
    if r < 1:
        raise ValueError(f"need r >= 1, got {r}")
    xs = [x] if x is not None else list(valid_x_range(n, r))
    return min(_min_m_with_x(n, r, k, xi, construction, model) for xi in xs)


@dataclass(frozen=True)
class CorrectedBound:
    """The model-aware ``m(x)`` profile for one configuration."""

    n: int
    r: int
    k: int
    construction: Construction
    model: MulticastModel
    per_x: tuple[tuple[int, int], ...]
    best_x: int
    m_min: int

    @classmethod
    def compute(
        cls,
        n: int,
        r: int,
        k: int,
        construction: Construction,
        model: MulticastModel,
    ) -> CorrectedBound:
        """Evaluate the corrected bound for every legal ``x``."""
        profile = [
            (x, _min_m_with_x(n, r, k, x, construction, model))
            for x in valid_x_range(n, r)
        ]
        best_x, m_min = min(profile, key=lambda pair: (pair[1], pair[0]))
        return cls(
            n=n,
            r=r,
            k=k,
            construction=construction,
            model=model,
            per_x=tuple(profile),
            best_x=best_x,
            m_min=m_min,
        )
