"""Crossbar network cost -- Section 2.3 / Table 1.

The paper measures hardware cost by two counts:

* **crosspoints** -- SOA gates (or MEMS mirrors) in the switching fabric,
  excluding wavelength multiplexers/demultiplexers and the passive
  splitters/combiners;
* **wavelength converters** -- the only other active (and expensive)
  devices.

For an ``N x N`` ``k``-wavelength crossbar-style network:

=======  ===========  ==========
model    crosspoints  converters
=======  ===========  ==========
MSW      ``k N**2``    0
MSDW     ``k**2 N**2`` ``k N``
MAW      ``k**2 N**2`` ``k N``
=======  ===========  ==========

MSW needs only ``k`` parallel single-wavelength ``N x N`` planes
(Fig. 4); MSDW/MAW must connect any of the ``Nk`` input wavelengths to
any of the ``Nk`` output wavelengths (Figs. 6-7), hence the extra factor
of ``k``.  These counts are cross-validated against the component-level
fabric constructions in :mod:`repro.fabric` (the built networks are
walked and their gates/converters counted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import MulticastModel

__all__ = [
    "CrossbarCost",
    "crossbar_converters",
    "crossbar_cost",
    "crossbar_crosspoints",
]


def _check_dimensions(n_ports: int, k: int) -> None:
    if n_ports < 1:
        raise ValueError(f"network size N must be >= 1, got {n_ports}")
    if k < 1:
        raise ValueError(f"wavelength count k must be >= 1, got {k}")


def crossbar_crosspoints(model: MulticastModel, n_ports: int, k: int) -> int:
    """Number of crosspoints of the crossbar construction (Section 2.3.1)."""
    _check_dimensions(n_ports, k)
    if model is MulticastModel.MSW:
        return k * n_ports**2
    return k**2 * n_ports**2


def crossbar_converters(model: MulticastModel, n_ports: int, k: int) -> int:
    """Number of wavelength converters required (Section 2.3.2).

    MSW needs none.  MSDW places one per input wavelength (before the
    splitter); MAW one per output wavelength (after the combiner).  Both
    come to ``N k``.
    """
    _check_dimensions(n_ports, k)
    if model is MulticastModel.MSW:
        return 0
    return n_ports * k


@dataclass(frozen=True)
class CrossbarCost:
    """Cost summary of one crossbar network (a Table 1 row)."""

    model: MulticastModel
    n_ports: int
    k: int
    crosspoints: int
    converters: int

    @classmethod
    def compute(cls, model: MulticastModel, n_ports: int, k: int) -> CrossbarCost:
        """Evaluate Section 2.3 for the given network."""
        return cls(
            model=model,
            n_ports=n_ports,
            k=k,
            crosspoints=crossbar_crosspoints(model, n_ports, k),
            converters=crossbar_converters(model, n_ports, k),
        )


def crossbar_cost(model: MulticastModel, n_ports: int, k: int) -> CrossbarCost:
    """Convenience wrapper for :meth:`CrossbarCost.compute`."""
    return CrossbarCost.compute(model, n_ports, k)
