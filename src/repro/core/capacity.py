"""Multicast capacity of WDM crossbar networks -- Lemmas 1, 2 and 3.

The *multicast capacity* of an ``N x N`` ``k``-wavelength WDM network
under a model is the number of multicast assignments the network can
realize (Section 2.2).  The paper derives closed forms:

=========  ==============================================  =====================================================
model      full-multicast-assignments                      any-multicast-assignments
=========  ==============================================  =====================================================
MSW        ``N**(N k)``                                    ``(N+1)**(N k)``
MSDW       ``sum P(Nk, sum j_i) prod S(N, j_i)``           same with idle outputs: ``C(N, l_i) S(N-l_i, j_i)``
MAW        ``P(Nk, k)**N``                                 ``(sum_j P(Nk, k-j) C(k, j))**N``
=========  ==============================================  =====================================================

All results are exact big integers.  The MSDW sums are evaluated through
a generating polynomial (see :mod:`repro.combinatorics.polynomials`),
which reduces the ``N**k`` index vectors of Lemma 3 to one polynomial
power -- and handles the ``l_i = N`` (idle wavelength class) boundary of
the any-multicast sum as the ``z**0`` coefficient.

A useful sanity anchor (verified in the tests, and stated by the paper):
at ``k = 1`` every model degenerates to a classical electronic multicast
network with capacity ``N**N`` (full) and ``(N+1)**N`` (any).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.combinatorics.integers import binomial, falling_factorial
from repro.combinatorics.polynomials import IntPolynomial
from repro.combinatorics.stirling import stirling2
from repro.core.models import MulticastModel

__all__ = [
    "CapacityResult",
    "any_multicast_capacity",
    "full_multicast_capacity",
    "log10_any_multicast_capacity",
    "log10_full_multicast_capacity",
    "log10_int",
    "multicast_capacity",
]


def _check_dimensions(n_ports: int, k: int) -> None:
    if n_ports < 1:
        raise ValueError(f"network size N must be >= 1, got {n_ports}")
    if k < 1:
        raise ValueError(f"wavelength count k must be >= 1, got {k}")


# ---------------------------------------------------------------------
# MSW -- Lemma 1
# ---------------------------------------------------------------------


def _msw_full(n_ports: int, k: int) -> int:
    """Lemma 1: each of the ``Nk`` output wavelengths picks one of ``N`` sources."""
    return n_ports ** (n_ports * k)


def _msw_any(n_ports: int, k: int) -> int:
    """Lemma 1: each output wavelength may additionally stay idle."""
    return (n_ports + 1) ** (n_ports * k)


# ---------------------------------------------------------------------
# MAW -- Lemma 2
# ---------------------------------------------------------------------


def _maw_full(n_ports: int, k: int) -> int:
    """Lemma 2: per port, an injection of its k wavelengths into Nk sources."""
    return falling_factorial(n_ports * k, k) ** n_ports


def _maw_any(n_ports: int, k: int) -> int:
    """Lemma 2: j of the k wavelengths per port may stay idle."""
    per_port = sum(
        falling_factorial(n_ports * k, k - j) * binomial(k, j) for j in range(k + 1)
    )
    return per_port**n_ports


# ---------------------------------------------------------------------
# MSDW -- Lemma 3 (via generating polynomials)
# ---------------------------------------------------------------------


@lru_cache(maxsize=None)
def _msdw_group_polynomial_full(n_ports: int) -> IntPolynomial:
    """``A(z) = sum_{j=1}^{N} S(N, j) z^j``.

    Coefficient of ``z^j``: ways to split the N same-wavelength output
    copies into the destination sets of ``j`` multicast connections.
    """
    return IntPolynomial(
        [0] + [stirling2(n_ports, j) for j in range(1, n_ports + 1)]
    )


@lru_cache(maxsize=None)
def _msdw_group_polynomial_any(n_ports: int) -> IntPolynomial:
    """``A(z) = sum_j (sum_l C(N, l) S(N-l, j)) z^j``.

    Like the full-assignment polynomial but ``l`` of the N copies may be
    idle.  The ``z^0`` term is 1 (all copies idle: ``l = N``).
    """
    coefficients = []
    for j in range(n_ports + 1):
        coefficients.append(
            sum(
                binomial(n_ports, idle) * stirling2(n_ports - idle, j)
                for idle in range(n_ports + 1)
            )
        )
    return IntPolynomial(coefficients)


def _msdw_capacity(n_ports: int, k: int, polynomial: IntPolynomial) -> int:
    """``sum_t [z^t] polynomial**k * P(Nk, t)`` -- the coupled source choice."""
    combined = polynomial**k
    weights = [
        falling_factorial(n_ports * k, t) for t in range(combined.degree + 1)
    ]
    return combined.weighted_sum(weights)


def _msdw_full(n_ports: int, k: int) -> int:
    return _msdw_capacity(n_ports, k, _msdw_group_polynomial_full(n_ports))


def _msdw_any(n_ports: int, k: int) -> int:
    return _msdw_capacity(n_ports, k, _msdw_group_polynomial_any(n_ports))


# ---------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------

_FULL = {
    MulticastModel.MSW: _msw_full,
    MulticastModel.MSDW: _msdw_full,
    MulticastModel.MAW: _maw_full,
}
_ANY = {
    MulticastModel.MSW: _msw_any,
    MulticastModel.MSDW: _msdw_any,
    MulticastModel.MAW: _maw_any,
}


def full_multicast_capacity(model: MulticastModel, n_ports: int, k: int) -> int:
    """Number of full-multicast-assignments (every output wavelength used).

    Args:
        model: the multicast model (MSW, MSDW or MAW).
        n_ports: the network size ``N``.
        k: the number of wavelengths per fiber.
    """
    _check_dimensions(n_ports, k)
    return _FULL[model](n_ports, k)


def any_multicast_capacity(model: MulticastModel, n_ports: int, k: int) -> int:
    """Number of any-multicast-assignments (output wavelengths may idle)."""
    _check_dimensions(n_ports, k)
    return _ANY[model](n_ports, k)


def multicast_capacity(
    model: MulticastModel, n_ports: int, k: int, *, full: bool
) -> int:
    """Dispatch to :func:`full_multicast_capacity` or :func:`any_multicast_capacity`."""
    if full:
        return full_multicast_capacity(model, n_ports, k)
    return any_multicast_capacity(model, n_ports, k)


def log10_int(value: int) -> float:
    """``log10`` of a positive big integer, safe beyond float range."""
    if value <= 0:
        raise ValueError(f"log10 requires a positive integer, got {value}")
    bits = value.bit_length()
    if bits <= 900:  # well inside float range
        return math.log10(value)
    shift = bits - 60
    return math.log10(value >> shift) + shift * math.log10(2.0)


def log10_full_multicast_capacity(
    model: MulticastModel, n_ports: int, k: int
) -> float:
    """``log10`` of the full-multicast capacity (for plotting/reporting)."""
    return log10_int(full_multicast_capacity(model, n_ports, k))


def log10_any_multicast_capacity(
    model: MulticastModel, n_ports: int, k: int
) -> float:
    """``log10`` of the any-multicast capacity (for plotting/reporting)."""
    return log10_int(any_multicast_capacity(model, n_ports, k))


@dataclass(frozen=True)
class CapacityResult:
    """Both capacities of one network under one model, with log10 views."""

    model: MulticastModel
    n_ports: int
    k: int
    full: int
    any: int

    @classmethod
    def compute(cls, model: MulticastModel, n_ports: int, k: int) -> CapacityResult:
        """Evaluate Lemmas 1-3 for the given network."""
        return cls(
            model=model,
            n_ports=n_ports,
            k=k,
            full=full_multicast_capacity(model, n_ports, k),
            any=any_multicast_capacity(model, n_ports, k),
        )

    @property
    def log10_full(self) -> float:
        """``log10`` of the full-multicast capacity."""
        return log10_int(self.full)

    @property
    def log10_any(self) -> float:
        """``log10`` of the any-multicast capacity."""
        return log10_int(self.any)
