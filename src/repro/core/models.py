"""The paper's multicast models and multistage construction methods.

Section 2.1 defines three ways to assign wavelengths to the endpoints of
a multicast connection in a WDM network:

* **MSW** -- Multicast with Same Wavelength: source and every destination
  use the same wavelength.  No wavelength converters needed.  A
  traditional electronic switch is the ``k = 1`` special case.
* **MSDW** -- Multicast with Same Destination Wavelength: all destinations
  share one wavelength; the source may use a different one.  One
  converter per connection, placed before the splitter (input side).
* **MAW** -- Multicast with Any Wavelength: every endpoint chooses its
  wavelength independently.  One converter per splitter output
  (output side).

Model strength is a strict order: every MSW connection is legal under
MSDW, and every MSDW connection is legal under MAW (Fig. 2).

Section 3.1 defines two ways to build a three-stage network from these
modules: **MSW-dominant** (first two stages MSW) and **MAW-dominant**
(first two stages MAW); the last stage's model determines the model of
the network as a whole.
"""

from __future__ import annotations

import enum

__all__ = [
    "Construction",
    "MulticastModel",
    "parse_construction",
    "parse_multicast_model",
]


class MulticastModel(enum.Enum):
    """Wavelength-assignment discipline for multicast connections."""

    MSW = "MSW"
    MSDW = "MSDW"
    MAW = "MAW"

    @property
    def strength(self) -> int:
        """Strict strength order: MSW (0) < MSDW (1) < MAW (2).

        A connection legal under a model is legal under every stronger
        model (Section 2.1), and multicast capacity is strictly
        increasing in strength for ``k > 1``.
        """
        return _STRENGTH[self]

    def is_at_least(self, other: MulticastModel) -> bool:
        """True if this model admits every connection ``other`` admits."""
        return self.strength >= other.strength

    @property
    def needs_converters(self) -> bool:
        """Whether realizing the model requires wavelength converters."""
        return self is not MulticastModel.MSW

    @property
    def converter_side(self) -> str | None:
        """Where Section 2.3.2 places the converters: 'input', 'output'.

        MSDW converts once per connection before the splitter (input
        side); MAW converts per splitter output (output side); MSW needs
        none.
        """
        if self is MulticastModel.MSW:
            return None
        if self is MulticastModel.MSDW:
            return "input"
        return "output"

    def admits(self, source_wavelength: int, destination_wavelengths: list[int]) -> bool:
        """Check the model's wavelength rule for one connection.

        Args:
            source_wavelength: wavelength index used at the source.
            destination_wavelengths: wavelength index per destination.

        Returns:
            True iff a connection with these wavelengths is legal under
            this model.  (Structural rules -- distinct output ports,
            etc. -- live in :mod:`repro.switching.validity`.)
        """
        if not destination_wavelengths:
            return False
        if self is MulticastModel.MAW:
            return True
        first = destination_wavelengths[0]
        all_same = all(w == first for w in destination_wavelengths)
        if self is MulticastModel.MSDW:
            return all_same
        return all_same and first == source_wavelength

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_STRENGTH = {
    MulticastModel.MSW: 0,
    MulticastModel.MSDW: 1,
    MulticastModel.MAW: 2,
}


class Construction(enum.Enum):
    """Model used by the first two stages of a multistage network."""

    MSW_DOMINANT = "MSW-dominant"
    MAW_DOMINANT = "MAW-dominant"

    @property
    def inner_model(self) -> MulticastModel:
        """The model the input- and middle-stage modules run under."""
        if self is Construction.MSW_DOMINANT:
            return MulticastModel.MSW
        return MulticastModel.MAW

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def parse_multicast_model(value: MulticastModel | str) -> MulticastModel:
    """Coerce a model spelled any reasonable way into the enum.

    Accepts the enum itself, the member name / value (``"MSW"``), or any
    case variant (``"msw"``).  Every entry point that reads a model from
    the outside world -- CLI flags, JSON payloads, cached artifacts --
    funnels through here so the accepted spellings and the error message
    are stated once.

    Raises:
        ValueError: for unknown values, listing the valid names.
    """
    if isinstance(value, MulticastModel):
        return value
    if isinstance(value, str):
        try:
            return MulticastModel(value.upper())
        except ValueError:
            pass
    valid = ", ".join(m.name for m in MulticastModel)
    raise ValueError(f"unknown multicast model {value!r}; choose from: {valid}")


def parse_construction(value: Construction | str) -> Construction:
    """Coerce a construction spelled any reasonable way into the enum.

    Accepts the enum itself, the member name (``"MSW_DOMINANT"``), the
    value (``"MSW-dominant"``), the shorthand (``"msw"``), or any case
    variant of those.  The single home of the coercion previously
    duplicated across the CLI, the multistage serializer and the
    Monte-Carlo cache loader.

    Raises:
        ValueError: for unknown values, listing the valid names.
    """
    if isinstance(value, Construction):
        return value
    if isinstance(value, str):
        lowered = value.lower()
        for member in Construction:
            shorthand = member.value.split("-", 1)[0].lower()
            if lowered in (
                member.name.lower(),
                member.value.lower(),
                shorthand,
            ):
                return member
    valid = ", ".join(c.name for c in Construction)
    raise ValueError(f"unknown construction {value!r}; choose from: {valid}")
