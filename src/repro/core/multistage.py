"""Nonblocking conditions and cost of three-stage WDM networks (Section 3).

A three-stage network ``v(n, r, m, k)`` has ``r`` input modules of size
``n x m``, ``m`` middle modules of size ``r x r`` and ``r`` output
modules of size ``m x n``, with ``N = n r`` and one ``k``-wavelength
fiber between every pair of modules in adjacent stages (Fig. 8).

Routing follows the strategy of [14] (made executable in
:mod:`repro.multistage.routing`): every multicast connection may use at
most ``x`` middle switches, where ``x`` is a free design parameter.
The paper's sufficient nonblocking conditions are:

* **Theorem 1 (MSW-dominant construction)**::

      m > (n - 1) * (x + r**(1/x))        for some 1 <= x <= min(n-1, r)

* **Theorem 2 (MAW-dominant construction)**::

      m > floor((n*k - 1) * x / k) + (n - 1) * r**(1/x)

  (At ``k = 1`` Theorem 2 reduces exactly to Theorem 1, as the paper's
  narrative requires.)

The supplied paper text OCR-mangles both right-hand sides; DESIGN.md
records the reconstruction.  Both conditions are implemented as *exact
integer predicates*: ``m - U > (n-1) r^{1/x}`` is evaluated as
``(m - U)**x > r * (n-1)**x``, so no floating-point root ever enters a
nonblocking decision.

This module also computes the exact crosspoint/converter cost of any
three-stage configuration (Section 3.4 / Table 2) and searches the
``(n, r, x)`` design space for the cheapest nonblocking network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.combinatorics.integers import min_base_exceeding, power_exceeds
from repro.core.models import Construction, MulticastModel

__all__ = [
    "MultistageDesign",
    "NonblockingBound",
    "is_nonblocking",
    "is_nonblocking_maw_dominant",
    "is_nonblocking_msw_dominant",
    "max_available_needed",
    "min_middle_switches",
    "min_middle_switches_maw_dominant",
    "min_middle_switches_msw_dominant",
    "module_converters",
    "module_crosspoints",
    "multistage_cost",
    "optimal_design",
    "unavailable_middle_bound",
    "valid_x_range",
    "yang_masson_m",
    "yang_masson_x",
]


def _check_topology(n: int, r: int, k: int) -> None:
    if n < 1:
        raise ValueError(f"module input size n must be >= 1, got {n}")
    if r < 1:
        raise ValueError(f"module count r must be >= 1, got {r}")
    if k < 1:
        raise ValueError(f"wavelength count k must be >= 1, got {k}")


def valid_x_range(n: int, r: int) -> range:
    """Legal values of the routing parameter ``x``: ``1..min(n-1, r)``.

    The paper's range is ``1 <= x <= min(n-1, r)``; for the degenerate
    ``n = 1`` case (no competing inputs, any ``m >= 1`` works) we keep
    ``x = 1`` available so downstream code needs no special-casing.
    """
    upper = min(n - 1, r)
    return range(1, max(1, upper) + 1)


# ---------------------------------------------------------------------
# Lemma 5 / worst-case counting pieces
# ---------------------------------------------------------------------


def max_available_needed(n: int, r: int, x: int) -> int:
    """Lemma 5's bound ``(n-1) * r**(1/x)``, rounded up to the next integer.

    If strictly more than this many middle switches are *available* to a
    request, some ``x`` of them can always realize it (Corollary 1).
    The returned value is the smallest integer ``B`` such that
    ``B > (n-1) r^{1/x}`` implies the guarantee, i.e. the exact integer
    ceiling of the bound: ``B = min{ s : s**x > r (n-1)**x } - 1``... we
    return the bound itself as the smallest safe integer count:
    ``available > returned value`` guarantees routability.
    """
    _check_topology(n, r, 1)
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if n == 1:
        return 0
    # smallest integer s with s**x > r*(n-1)**x  ==>  s - 1 is the largest
    # integer <= (n-1) r^{1/x}; "more than (n-1) r^{1/x} available" is
    # therefore "available >= s", i.e. "available > s - 1".
    return min_base_exceeding(r * (n - 1) ** x, x) - 1


def unavailable_middle_bound(
    n: int, k: int, x: int, construction: Construction
) -> int:
    """Worst-case number of middle switches made unavailable by other inputs.

    MSW-dominant (Theorem 1): only the ``n - 1`` other inputs carrying
    the *same wavelength* interfere, each using up to ``x`` middles:
    ``(n-1) x``.

    MAW-dominant (Theorem 2): all ``n k - 1`` other input wavelengths
    interfere, but a middle switch only becomes unavailable when all
    ``k`` wavelengths of its input link are busy: ``floor((n k - 1) x / k)``.
    """
    if construction is Construction.MSW_DOMINANT:
        return (n - 1) * x
    return ((n * k - 1) * x) // k


# ---------------------------------------------------------------------
# Theorems 1 and 2 -- exact predicates
# ---------------------------------------------------------------------


def _is_nonblocking_with_x(
    m: int, n: int, r: int, k: int, x: int, construction: Construction
) -> bool:
    """Exact check of ``m > unavailable + (n-1) r^{1/x}`` for one ``x``."""
    headroom = m - unavailable_middle_bound(n, k, x, construction)
    if headroom <= 0:
        return False
    if n == 1:
        return True  # bound reduces to m > 0
    return power_exceeds(headroom, x, r * (n - 1) ** x)


def is_nonblocking_msw_dominant(
    m: int, n: int, r: int, k: int = 1, x: int | None = None
) -> bool:
    """Theorem 1: sufficiency of ``m`` for the MSW-dominant construction.

    Args:
        m: number of middle-stage switches.
        n: inputs per input module.
        r: number of input (and output) modules.
        k: wavelengths per fiber (the bound is independent of ``k`` for
            this construction, kept for interface symmetry).
        x: routing parameter; if None, the condition is checked for every
            legal ``x`` and the best is taken (the paper's ``min`` over x).
    """
    _check_topology(n, r, k)
    xs = [x] if x is not None else list(valid_x_range(n, r))
    return any(
        _is_nonblocking_with_x(m, n, r, k, xi, Construction.MSW_DOMINANT)
        for xi in xs
    )


def is_nonblocking_maw_dominant(
    m: int, n: int, r: int, k: int, x: int | None = None
) -> bool:
    """Theorem 2: sufficiency of ``m`` for the MAW-dominant construction."""
    _check_topology(n, r, k)
    xs = [x] if x is not None else list(valid_x_range(n, r))
    return any(
        _is_nonblocking_with_x(m, n, r, k, xi, Construction.MAW_DOMINANT)
        for xi in xs
    )


def is_nonblocking(
    m: int,
    n: int,
    r: int,
    k: int,
    construction: Construction,
    x: int | None = None,
) -> bool:
    """Dispatch to the appropriate theorem for ``construction``."""
    if construction is Construction.MSW_DOMINANT:
        return is_nonblocking_msw_dominant(m, n, r, k, x)
    return is_nonblocking_maw_dominant(m, n, r, k, x)


# ---------------------------------------------------------------------
# Minimal middle-stage sizes
# ---------------------------------------------------------------------


def _min_m_with_x(n: int, r: int, k: int, x: int, construction: Construction) -> int:
    """Smallest ``m`` passing the theorem's bound for a fixed ``x``."""
    unavailable = unavailable_middle_bound(n, k, x, construction)
    if n == 1:
        return unavailable + 1
    return unavailable + min_base_exceeding(r * (n - 1) ** x, x)


def min_middle_switches_msw_dominant(
    n: int, r: int, k: int = 1, x: int | None = None
) -> int:
    """Smallest ``m`` satisfying Theorem 1 (optionally for a fixed ``x``)."""
    _check_topology(n, r, k)
    xs = [x] if x is not None else list(valid_x_range(n, r))
    return min(_min_m_with_x(n, r, k, xi, Construction.MSW_DOMINANT) for xi in xs)


def min_middle_switches_maw_dominant(
    n: int, r: int, k: int, x: int | None = None
) -> int:
    """Smallest ``m`` satisfying Theorem 2 (optionally for a fixed ``x``)."""
    _check_topology(n, r, k)
    xs = [x] if x is not None else list(valid_x_range(n, r))
    return min(_min_m_with_x(n, r, k, xi, Construction.MAW_DOMINANT) for xi in xs)


def min_middle_switches(
    n: int,
    r: int,
    k: int,
    construction: Construction = Construction.MSW_DOMINANT,
    x: int | None = None,
) -> int:
    """Smallest nonblocking ``m`` for either construction."""
    if construction is Construction.MSW_DOMINANT:
        return min_middle_switches_msw_dominant(n, r, k, x)
    return min_middle_switches_maw_dominant(n, r, k, x)


@dataclass(frozen=True)
class NonblockingBound:
    """The full ``m(x)`` profile of a theorem for one topology."""

    n: int
    r: int
    k: int
    construction: Construction
    per_x: tuple[tuple[int, int], ...]  # (x, minimal m)
    best_x: int
    m_min: int

    @classmethod
    def compute(
        cls, n: int, r: int, k: int, construction: Construction
    ) -> NonblockingBound:
        """Evaluate the theorem for every legal ``x``."""
        _check_topology(n, r, k)
        profile = [
            (x, _min_m_with_x(n, r, k, x, construction))
            for x in valid_x_range(n, r)
        ]
        best_x, m_min = min(profile, key=lambda pair: (pair[1], pair[0]))
        return cls(
            n=n,
            r=r,
            k=k,
            construction=construction,
            per_x=tuple(profile),
            best_x=best_x,
            m_min=m_min,
        )


# ---------------------------------------------------------------------
# The closed-form heuristic of Section 3.4
# ---------------------------------------------------------------------


def yang_masson_x(r: int) -> float:
    """The paper's analytic choice ``x = 2 log r / log log r``.

    Only meaningful for ``r > e`` (so that ``log log r > 0``); we require
    ``r >= 16`` to keep the value in the regime where the closed form is
    a sensible approximation, matching the original analysis in [14].
    """
    if r < 16:
        raise ValueError(
            f"the closed-form x is only meaningful for r >= 16, got {r}"
        )
    return 2.0 * math.log(r) / math.log(math.log(r))


def yang_masson_m(n: int, r: int) -> float:
    """The paper's closed-form sufficient size ``m ~ 3(n-1) log r / log log r``.

    The discrete optimum :func:`min_middle_switches_msw_dominant` is never
    larger than (a ceiling of) this; the benchmark
    ``benchmarks/bench_bounds.py`` regenerates the comparison.
    """
    if r < 16:
        raise ValueError(
            f"the closed-form m is only meaningful for r >= 16, got {r}"
        )
    return 3.0 * (n - 1) * math.log(r) / math.log(math.log(r))


# ---------------------------------------------------------------------
# Section 3.4 -- exact cost of a three-stage configuration
# ---------------------------------------------------------------------


def module_crosspoints(model: MulticastModel, inputs: int, outputs: int, k: int) -> int:
    """Crosspoints of one ``inputs x outputs`` ``k``-wavelength module.

    The crossbar analysis of Section 2.3.1 generalizes from ``N x N`` to
    rectangular modules: MSW needs ``k`` parallel space planes
    (``k * inputs * outputs``), MSDW/MAW need full wavelength reach
    (``k**2 * inputs * outputs``).
    """
    base = inputs * outputs
    if model is MulticastModel.MSW:
        return k * base
    return k**2 * base


def module_converters(model: MulticastModel, inputs: int, outputs: int, k: int) -> int:
    """Wavelength converters of one rectangular module.

    MSDW converts once per *input* wavelength (``inputs * k``); MAW once
    per *output* wavelength (``outputs * k``); MSW none.
    """
    if model is MulticastModel.MSW:
        return 0
    if model is MulticastModel.MSDW:
        return inputs * k
    return outputs * k


@dataclass(frozen=True)
class StageCost:
    """Cost contribution of one stage of a three-stage network."""

    modules: int
    model: MulticastModel
    crosspoints: int
    converters: int


@dataclass(frozen=True)
class MultistageCost:
    """Exact cost of a three-stage configuration, with per-stage breakdown."""

    n: int
    r: int
    m: int
    k: int
    construction: Construction
    output_model: MulticastModel
    input_stage: StageCost
    middle_stage: StageCost
    output_stage: StageCost

    @property
    def crosspoints(self) -> int:
        """Total crosspoints over the three stages."""
        return (
            self.input_stage.crosspoints
            + self.middle_stage.crosspoints
            + self.output_stage.crosspoints
        )

    @property
    def converters(self) -> int:
        """Total wavelength converters over the three stages."""
        return (
            self.input_stage.converters
            + self.middle_stage.converters
            + self.output_stage.converters
        )

    @property
    def n_ports(self) -> int:
        """Overall network size ``N = n r``."""
        return self.n * self.r


def multistage_cost(
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction = Construction.MSW_DOMINANT,
    output_model: MulticastModel = MulticastModel.MSW,
    *,
    msdw_internal_placement: bool = False,
) -> MultistageCost:
    """Exact crosspoint/converter cost of a ``v(n, r, m, k)`` network.

    With the MSW-dominant construction and ``output_model``:

    * MSW:  ``r k n m + m k r**2 + r k m n = k m r (2n + r)``, 0 converters;
    * MSDW: ``k m r ((k+1) n + r)``, ``r m k`` converters (placed on the
      ``m``-link side of each output module, as the paper assumes);
    * MAW:  ``k m r ((k+1) n + r)``, ``r n k = k N`` converters.

    Section 3.4 notes that MSDW's converter count can be reduced "by
    placing the wavelength converters in the middle of the m x n
    switching module", landing at the same ``r n k`` as MAW;
    ``msdw_internal_placement=True`` models that optimized placement.

    The MAW-dominant construction upgrades the first two stages to MAW
    modules (more crosspoints, plus their own converters), which is
    exactly why Section 3.4 concludes MSW-dominant is the better choice
    -- a conclusion the corrected bounds of :mod:`repro.core.corrected`
    qualify for MSDW/MAW-model networks.
    """
    _check_topology(n, r, k)
    if m < 1:
        raise ValueError(f"middle-stage size m must be >= 1, got {m}")
    inner = construction.inner_model
    input_stage = StageCost(
        modules=r,
        model=inner,
        crosspoints=r * module_crosspoints(inner, n, m, k),
        converters=r * module_converters(inner, n, m, k),
    )
    middle_stage = StageCost(
        modules=m,
        model=inner,
        crosspoints=m * module_crosspoints(inner, r, r, k),
        converters=m * module_converters(inner, r, r, k),
    )
    output_converters = r * module_converters(output_model, m, n, k)
    if output_model is MulticastModel.MSDW and msdw_internal_placement:
        output_converters = r * n * k  # mid-module placement, as for MAW
    output_stage = StageCost(
        modules=r,
        model=output_model,
        crosspoints=r * module_crosspoints(output_model, m, n, k),
        converters=output_converters,
    )
    return MultistageCost(
        n=n,
        r=r,
        m=m,
        k=k,
        construction=construction,
        output_model=output_model,
        input_stage=input_stage,
        middle_stage=middle_stage,
        output_stage=output_stage,
    )


# ---------------------------------------------------------------------
# Design-space search
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class MultistageDesign:
    """A fully specified nonblocking three-stage design."""

    n: int
    r: int
    m: int
    x: int
    k: int
    construction: Construction
    output_model: MulticastModel
    cost: MultistageCost = field(compare=False)

    @property
    def n_ports(self) -> int:
        """Overall network size ``N = n r``."""
        return self.n * self.r


def _divisor_pairs(n_ports: int) -> list[tuple[int, int]]:
    """All ``(n, r)`` with ``n * r == n_ports`` and ``n, r >= 2`` when possible."""
    pairs = []
    for n in range(1, n_ports + 1):
        if n_ports % n == 0:
            pairs.append((n, n_ports // n))
    return pairs


def optimal_design(
    n_ports: int,
    k: int,
    output_model: MulticastModel = MulticastModel.MSW,
    construction: Construction = Construction.MSW_DOMINANT,
    *,
    require_proper: bool = True,
    use_paper_bound: bool = False,
) -> MultistageDesign:
    """Cheapest nonblocking three-stage design for an ``N x N`` network.

    Sweeps every factorization ``N = n r`` and every legal routing
    parameter ``x``, computes the minimal ``m`` from the applicable
    bound and the exact cost from Section 3.4, and returns the design
    with the fewest crosspoints (ties broken by converters, then by
    smaller ``m``).

    By default the **corrected model-aware bound** of
    :mod:`repro.core.corrected` sizes the middle stage, so the returned
    design is actually nonblocking for the requested model (the paper's
    Theorem 1 is insufficient for MSDW/MAW models with ``k > 1`` -- see
    that module).  Pass ``use_paper_bound=True`` to reproduce the
    paper's Table 2 numbers as printed.

    Args:
        n_ports: overall network size ``N``.
        k: wavelengths per fiber.
        output_model: model of the output stage (= model of the network).
        construction: MSW-dominant or MAW-dominant.
        require_proper: if True, skip the degenerate factorizations
            ``n = 1`` and ``r = 1`` (which are not real three-stage
            networks) unless ``N`` is prime.
        use_paper_bound: size ``m`` with the paper's theorem as printed
            instead of the corrected bound.
    """
    if n_ports < 2:
        raise ValueError(f"need N >= 2 for a three-stage network, got {n_ports}")
    from repro.core.corrected import _min_m_with_x as _corrected_min_m_with_x

    pairs = _divisor_pairs(n_ports)
    proper = [(n, r) for n, r in pairs if n > 1 and r > 1]
    if require_proper and proper:
        pairs = proper

    best: MultistageDesign | None = None
    for n, r in pairs:
        for x in valid_x_range(n, r):
            if use_paper_bound:
                m = _min_m_with_x(n, r, k, x, construction)
            else:
                m = _corrected_min_m_with_x(
                    n, r, k, x, construction, output_model
                )
            cost = multistage_cost(n, r, m, k, construction, output_model)
            candidate = MultistageDesign(
                n=n,
                r=r,
                m=m,
                x=x,
                k=k,
                construction=construction,
                output_model=output_model,
                cost=cost,
            )
            if best is None or (
                (candidate.cost.crosspoints, candidate.cost.converters, candidate.m)
                < (best.cost.crosspoints, best.cost.converters, best.m)
            ):
                best = candidate
    assert best is not None  # pairs is never empty
    return best
