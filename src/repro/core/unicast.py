"""The unicast special case: classical Clos bounds inside the WDM model.

The paper treats unicast as a special case of multicast (fanout 1).
Specializing the middle-switch counting to fanout-1 requests recovers
the classical strict-sense Clos condition -- and, in the WDM setting,
its model-aware generalization:

* a request's input module can have made at most ``in_kills`` middle
  switches unavailable (first-stage fiber interference);
* its single output module can have made at most ``out_kills`` middle
  switches unreachable (second-stage fiber interference);
* one more middle switch always remains:  ``m >= in_kills + out_kills + 1``.

For the electronic case (``k = 1``) this is Clos's 1953 bound
``m >= 2n - 1``, which is also *necessary* -- so the exhaustive checker
must find blocking states at ``2n - 2``, a sharp end-to-end calibration
of the whole simulator stack (see ``bench_unicast.py``).

The Theorem-1 gap shows up here too: under the MSW-dominant
construction with the MSDW/MAW models, ``out_kills`` is ``nk - 1``
rather than ``n - 1``, so unicast WDM switching already needs
``m >= (n - 1) + (nk - 1) + 1`` -- wavelength conversion at the output
stage is not free even for fanout-1 traffic.
"""

from __future__ import annotations

from repro.core.corrected import destination_kill_capacity
from repro.core.models import Construction, MulticastModel

__all__ = ["clos_unicast_minimum", "is_nonblocking_unicast"]


def clos_unicast_minimum(
    n: int,
    k: int = 1,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
) -> int:
    """Smallest ``m`` that is strict-sense nonblocking for unicast traffic.

    ``m = in_kills + out_kills + 1`` with the per-side interference
    capacities of the WDM analysis; equals the classical ``2n - 1`` for
    ``k = 1`` (any model) and for the MSW model at any ``k``.

    Args:
        n: ports per input/output module.
        k: wavelengths per fiber.
        construction: first-two-stage module model.
        model: the network's multicast model (output stage).
    """
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
    if construction is Construction.MSW_DOMINANT:
        in_kills = n - 1
    else:
        # One middle per unicast connection (x = 1 effectively); a fiber
        # saturates only when all k wavelengths are busy.
        in_kills = (n * k - 1) // k  # = n - 1
    out_kills = destination_kill_capacity(n, k, construction, model)
    return in_kills + out_kills + 1


def is_nonblocking_unicast(
    m: int,
    n: int,
    k: int = 1,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
) -> bool:
    """Whether ``m`` middle switches suffice for unicast-only traffic."""
    return m >= clos_unicast_minimum(n, k, construction, model)
