"""Asymptotic cost forms of Table 2.

Section 3.4 chooses ``n = r = sqrt(N)`` and
``m = Theta((n-1) log r / log log r)`` and reports order-of-growth
costs.  (The supplied text's exponents are OCR-damaged; with those
parameter choices the exact counts ``k m r (2n + r)`` and
``k m r ((k+1) n + r)`` give the forms below -- see DESIGN.md §3.)

==========  =========================================  =============================
network     crosspoints                                converters
==========  =========================================  =============================
MSW / CB    ``k N**2``                                 0
MSW / MS    ``O(k N^{3/2} log N / log log N)``         0
MSDW / CB   ``k**2 N**2``                              ``k N``
MSDW / MS   ``O(k**2 N^{3/2} log N / log log N)``      ``O(k N log N / log log N)``
MAW / CB    ``k**2 N**2``                              ``k N``
MAW / MS    ``O(k**2 N^{3/2} log N / log log N)``      ``k N``
==========  =========================================  =============================

These functions return the asymptotic expressions *with* the paper's
leading constants (from ``m ~ 3(n-1) log r / log log r``), so the
benchmarks can check that the exact optimized designs track them.
"""

from __future__ import annotations

import math

from repro.core.models import MulticastModel

__all__ = [
    "growth_factor",
    "multistage_converters_asymptotic",
    "multistage_crosspoints_asymptotic",
    "crossbar_crosspoints_asymptotic",
    "crossbar_converters_asymptotic",
]

_MIN_N = 256  # below this, log log sqrt(N) <= 0 and the forms are meaningless


def _check(n_ports: int, k: int) -> None:
    if n_ports < _MIN_N:
        raise ValueError(
            f"asymptotic forms require N >= {_MIN_N} (log log sqrt(N) > 0), got {n_ports}"
        )
    if k < 1:
        raise ValueError(f"wavelength count k must be >= 1, got {k}")


def growth_factor(n_ports: int) -> float:
    """The recurring factor ``log r / log log r`` at ``r = sqrt(N)``."""
    r = math.sqrt(n_ports)
    return math.log(r) / math.log(math.log(r))


def crossbar_crosspoints_asymptotic(model: MulticastModel, n_ports: int, k: int) -> float:
    """Crossbar crosspoints -- exact, included for uniform interfaces."""
    if model is MulticastModel.MSW:
        return float(k) * n_ports**2
    return float(k) ** 2 * n_ports**2


def crossbar_converters_asymptotic(model: MulticastModel, n_ports: int, k: int) -> float:
    """Crossbar converters -- exact, included for uniform interfaces."""
    if model is MulticastModel.MSW:
        return 0.0
    return float(k) * n_ports


def multistage_crosspoints_asymptotic(
    model: MulticastModel, n_ports: int, k: int
) -> float:
    """Three-stage crosspoints with ``n = r = sqrt(N)`` and the paper's ``m``.

    Uses ``m = 3 (n-1) log r / log log r`` and the exact stage sums, so
    the value carries the paper's leading constant rather than a bare
    ``O(.)`` envelope.
    """
    _check(n_ports, k)
    n = r = math.sqrt(n_ports)
    m = 3.0 * (n - 1.0) * math.log(r) / math.log(math.log(r))
    if model is MulticastModel.MSW:
        return k * m * r * (2.0 * n + r)
    return k * m * r * ((k + 1.0) * n + r)


def multistage_converters_asymptotic(
    model: MulticastModel, n_ports: int, k: int
) -> float:
    """Three-stage converters with the paper's parameter choice.

    MSW: 0.  MSDW: ``r m k`` (converters sit on the ``m``-link side of
    the output modules).  MAW: ``r n k = k N`` exactly.
    """
    _check(n_ports, k)
    if model is MulticastModel.MSW:
        return 0.0
    if model is MulticastModel.MAW:
        return float(k) * n_ports
    n = r = math.sqrt(n_ports)
    m = 3.0 * (n - 1.0) * math.log(r) / math.log(math.log(r))
    return r * m * k
