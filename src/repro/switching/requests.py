"""Endpoints, multicast connections, and multicast assignments.

Terminology follows Section 2 of the paper:

* an **endpoint** is a ``(port, wavelength)`` pair -- one of the ``N k``
  wavelength channels at the input or output side of an ``N x N``
  ``k``-wavelength network (Fig. 1);
* a **multicast connection** carries the signal from one input endpoint
  to a set of output endpoints, *at most one per output port*;
* a **multicast assignment** is a set of connections in which every
  input endpoint sources at most one connection and every output
  endpoint terminates at most one connection;
* a **full** multicast assignment uses *every* output endpoint; an
  assignment in general ("any-multicast-assignment") may leave output
  endpoints idle.

Ports and wavelengths are 0-based throughout the code (the paper counts
from 1).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

__all__ = ["Endpoint", "MulticastAssignment", "MulticastConnection"]


@dataclass(frozen=True, order=True)
class Endpoint:
    """One wavelength channel at one port: ``(port, wavelength)``."""

    port: int
    wavelength: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")
        if self.wavelength < 0:
            raise ValueError(f"wavelength must be >= 0, got {self.wavelength}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(port {self.port}, lambda_{self.wavelength})"


@dataclass(frozen=True)
class MulticastConnection:
    """A single multicast connection: one source, a fanout of destinations.

    Invariants enforced at construction:

    * the destination set is non-empty;
    * no two destinations share an output port (Section 2.1's first
      restriction: a connection may not use two wavelengths at the same
      output port).

    Wavelength-model rules (same wavelength everywhere, etc.) are *not*
    enforced here -- they belong to the model and are checked by
    :mod:`repro.switching.validity`, so the same connection object can be
    classified under each model.
    """

    source: Endpoint
    destinations: frozenset[Endpoint]

    def __init__(self, source: Endpoint, destinations: Iterable[Endpoint]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "destinations", frozenset(destinations))
        if not self.destinations:
            raise ValueError("a multicast connection needs at least one destination")
        ports = [d.port for d in self.destinations]
        if len(ports) != len(set(ports)):
            raise ValueError(
                "a multicast connection may use at most one wavelength per "
                f"output port; got destinations {sorted(self.destinations)}"
            )

    @property
    def fanout(self) -> int:
        """Number of destinations."""
        return len(self.destinations)

    @property
    def destination_ports(self) -> frozenset[int]:
        """The set of output ports reached."""
        return frozenset(d.port for d in self.destinations)

    @property
    def destination_wavelengths(self) -> tuple[int, ...]:
        """Destination wavelengths in destination order (sorted by port)."""
        return tuple(
            d.wavelength for d in sorted(self.destinations, key=lambda e: e.port)
        )

    def is_unicast(self) -> bool:
        """True if the connection has exactly one destination."""
        return self.fanout == 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dests = ", ".join(str(d) for d in sorted(self.destinations))
        return f"{self.source} -> {{{dests}}}"


class MulticastAssignment:
    """An immutable set of conflict-free multicast connections.

    Invariants enforced at construction:

    * distinct connections have distinct source endpoints (an input
      wavelength carries at most one signal);
    * no output endpoint terminates more than one connection
      (Section 2.1's second restriction).

    Equality is by the induced output-to-input mapping, which uniquely
    determines the assignment.
    """

    __slots__ = ("_connections",)

    def __init__(self, connections: Iterable[MulticastConnection]):
        connections = tuple(
            sorted(connections, key=lambda c: (c.source.port, c.source.wavelength))
        )
        sources = [c.source for c in connections]
        if len(sources) != len(set(sources)):
            raise ValueError("two connections share a source endpoint")
        seen_outputs: set[Endpoint] = set()
        for connection in connections:
            overlap = seen_outputs & connection.destinations
            if overlap:
                raise ValueError(
                    f"output endpoints used twice: {sorted(overlap)}"
                )
            seen_outputs |= connection.destinations
        self._connections = connections

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> MulticastAssignment:
        """The assignment with no connections."""
        return cls(())

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[Endpoint, Endpoint]
    ) -> MulticastAssignment:
        """Build from an output-endpoint -> input-endpoint mapping.

        Output endpoints mapped to the same input endpoint become the
        destinations of a single multicast connection.  This is the
        representation the capacity proofs count, so the enumeration
        oracle works directly on mappings.
        """
        groups: dict[Endpoint, list[Endpoint]] = defaultdict(list)
        for output_endpoint, input_endpoint in mapping.items():
            groups[input_endpoint].append(output_endpoint)
        return cls(
            MulticastConnection(source, destinations)
            for source, destinations in groups.items()
        )

    # -- views ---------------------------------------------------------

    @property
    def connections(self) -> tuple[MulticastConnection, ...]:
        """The connections, sorted by source endpoint."""
        return self._connections

    def to_mapping(self) -> dict[Endpoint, Endpoint]:
        """The induced output-endpoint -> input-endpoint mapping."""
        mapping: dict[Endpoint, Endpoint] = {}
        for connection in self._connections:
            for destination in connection.destinations:
                mapping[destination] = connection.source
        return mapping

    def used_input_endpoints(self) -> frozenset[Endpoint]:
        """Input endpoints sourcing a connection."""
        return frozenset(c.source for c in self._connections)

    def used_output_endpoints(self) -> frozenset[Endpoint]:
        """Output endpoints terminating a connection."""
        return frozenset(
            d for c in self._connections for d in c.destinations
        )

    def is_full(self, n_ports: int, k: int) -> bool:
        """True iff every one of the ``N k`` output endpoints is used."""
        return len(self.used_output_endpoints()) == n_ports * k

    def total_fanout(self) -> int:
        """Sum of connection fanouts (= number of used output endpoints)."""
        return sum(c.fanout for c in self._connections)

    # -- dunder --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._connections)

    def __iter__(self) -> Iterator[MulticastConnection]:
        return iter(self._connections)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MulticastAssignment):
            return NotImplemented
        return self._connections == other._connections

    def __hash__(self) -> int:
        return hash(self._connections)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MulticastAssignment({len(self._connections)} connections)"
