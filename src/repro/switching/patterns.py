"""Canonical multicast traffic patterns.

Structured worst-ish-case workloads classically used to stress
switching fabrics, expressed as legal multicast assignments of an
``N x N`` ``k``-wavelength network:

* **identity / permutation** -- unicast patterns (fanout 1);
* **perfect shuffle** and **bit reversal** -- the classic adversarial
  unicast permutations;
* **broadcast** -- one source per wavelength reaching every port;
* **ring multicast** -- each source multicasts to a window of
  neighbours (models neighbour exchange in parallel computations);
* **saturating multicast** -- a full-multicast-assignment using every
  output endpoint, fanouts as equal as possible.

Every generator returns a valid :class:`MulticastAssignment` under the
requested model; a nonblocking network sized by the corrected bound
must route each of them offline *and* in any arrival order, which the
tests and ``bench_patterns.py`` verify.
"""

from __future__ import annotations

from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection

__all__ = [
    "bit_reversal",
    "broadcast",
    "identity",
    "perfect_shuffle",
    "ring_multicast",
    "saturating_multicast",
]


def _check(n_ports: int, k: int) -> None:
    if n_ports < 1 or k < 1:
        raise ValueError(f"need N >= 1 and k >= 1, got N={n_ports}, k={k}")


def identity(n_ports: int, k: int) -> MulticastAssignment:
    """Every input endpoint to the same-numbered output endpoint."""
    _check(n_ports, k)
    return MulticastAssignment(
        MulticastConnection(Endpoint(p, w), [Endpoint(p, w)])
        for p in range(n_ports)
        for w in range(k)
    )


def perfect_shuffle(n_ports: int, k: int) -> MulticastAssignment:
    """Port ``p`` to port ``(2p) mod (N-1)`` (fixed point at ``N-1``).

    The classic shuffle permutation; requires ``N >= 2``.
    """
    _check(n_ports, k)
    if n_ports < 2:
        raise ValueError("perfect shuffle needs N >= 2")

    def shuffle(p: int) -> int:
        if p == n_ports - 1:
            return p
        return (2 * p) % (n_ports - 1)

    return MulticastAssignment(
        MulticastConnection(Endpoint(p, w), [Endpoint(shuffle(p), w)])
        for p in range(n_ports)
        for w in range(k)
    )


def bit_reversal(n_ports: int, k: int) -> MulticastAssignment:
    """Port ``p`` to the port with reversed bits (``N`` a power of two)."""
    _check(n_ports, k)
    bits = n_ports.bit_length() - 1
    if 2**bits != n_ports:
        raise ValueError(f"bit reversal needs N a power of two, got {n_ports}")

    def reverse(p: int) -> int:
        result = 0
        for _ in range(bits):
            result = (result << 1) | (p & 1)
            p >>= 1
        return result

    return MulticastAssignment(
        MulticastConnection(Endpoint(p, w), [Endpoint(reverse(p), w)])
        for p in range(n_ports)
        for w in range(k)
    )


def broadcast(n_ports: int, k: int) -> MulticastAssignment:
    """Wavelength ``w``'s channel of port ``w mod N`` broadcasts to all ports.

    One broadcast tree per wavelength plane -- ``k`` concurrent
    broadcasts saturating every output endpoint.  (Legal under every
    model: source and destinations share the wavelength.)
    """
    _check(n_ports, k)
    return MulticastAssignment(
        MulticastConnection(
            Endpoint(w % n_ports, w),
            [Endpoint(p, w) for p in range(n_ports)],
        )
        for w in range(k)
    )


def ring_multicast(
    n_ports: int, k: int, *, window: int = 2
) -> MulticastAssignment:
    """Each input endpoint multicasts to the next ``window`` ports (same w).

    Neighbour-exchange traffic; every output endpoint is used exactly
    once (a full-multicast-assignment) when ``window`` divides into the
    ring cleanly -- sources are spaced ``window`` apart per wavelength.
    """
    _check(n_ports, k)
    if not 1 <= window <= n_ports:
        raise ValueError(f"window must be in [1, {n_ports}], got {window}")
    connections = []
    for w in range(k):
        port = 0
        while port < n_ports:
            width = min(window, n_ports - port)
            connections.append(
                MulticastConnection(
                    Endpoint(port, w),
                    [Endpoint((port + i) % n_ports, w) for i in range(width)],
                )
            )
            port += width
    return MulticastAssignment(connections)


def saturating_multicast(
    n_ports: int, k: int, *, sources: int | None = None
) -> MulticastAssignment:
    """A full-multicast-assignment from few sources, fanouts balanced.

    ``sources`` input endpoints per wavelength (default ``max(1, N//4)``)
    split the ``N`` output ports of their wavelength plane as evenly as
    possible -- the high-fanout stress case for middle-switch sharing.
    """
    _check(n_ports, k)
    per_wavelength = sources if sources is not None else max(1, n_ports // 4)
    if not 1 <= per_wavelength <= n_ports:
        raise ValueError(
            f"sources must be in [1, {n_ports}], got {per_wavelength}"
        )
    connections = []
    for w in range(k):
        base, extra = divmod(n_ports, per_wavelength)
        cursor = 0
        for index in range(per_wavelength):
            width = base + (1 if index < extra else 0)
            connections.append(
                MulticastConnection(
                    Endpoint(index, w),
                    [Endpoint(cursor + i, w) for i in range(width)],
                )
            )
            cursor += width
    return MulticastAssignment(connections)
