"""Seeded random assignment and dynamic-traffic generators.

Two kinds of randomness are needed by the reproduction:

* **static assignments** -- random legal multicast assignments of a
  crossbar network, used to exercise the fabric simulator
  (:mod:`repro.fabric`) on inputs it has never seen;
* **dynamic traffic** -- randomized sequences of connection setups and
  teardowns, used to fuzz the three-stage simulator: Theorems 1-2 claim
  the network never blocks under *any* such sequence once ``m`` meets
  the bound, which is exactly the property the fuzz tests assert.

All randomness flows through :class:`random.Random` instances seeded by
the caller, so every test and benchmark is reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Literal

from repro.core.models import MulticastModel
from repro.switching.enumeration import _compatible
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection

__all__ = [
    "AntitheticRandom",
    "AssignmentGenerator",
    "TrafficEvent",
    "draw_connection",
    "dynamic_traffic",
    "stream_rng",
]

#: workload hook: ``(rng, fanout_cap) -> fanout`` (clamped to [1, cap])
FanoutPicker = Callable[[random.Random, int], int]
#: workload hook: ``(rng, port_options, fanout) -> ports`` where
#: ``port_options`` maps each eligible output port to its admissible
#: wavelengths (ascending); must return ``fanout`` distinct keys
PortPicker = Callable[[random.Random, dict[int, list[int]], int], list[int]]


class AntitheticRandom(random.Random):
    """The antithetic mirror of a seeded :class:`random.Random` stream.

    Every primitive draw is complemented -- ``random()`` returns
    ``1 - u`` and ``getrandbits(k)`` returns the bitwise complement --
    so all derived draws (``randrange``, ``choice``, ``sample``, ...)
    come from the mirrored stream.  The marginal distribution of each
    draw is unchanged (``1 - U`` is uniform, the complement of uniform
    ``k``-bit words is uniform, and rejection sampling accepts both
    streams identically in distribution), so an antithetic replication
    is as unbiased as its twin; but the two streams' draws are
    negatively coupled, which is what makes averaging a
    ``(seed, antithetic-seed)`` pair a variance-reduction device for
    the adaptive sweep driver (:mod:`repro.perf.adaptive`).
    """

    def random(self) -> float:
        value = 1.0 - super().random()
        # super().random() is in [0, 1), so the mirror is in (0, 1];
        # fold the measure-zero endpoint back to keep the contract.
        return value if value < 1.0 else 0.0

    def getrandbits(self, k: int) -> int:
        return (1 << k) - 1 - super().getrandbits(k)


def stream_rng(seed: int, antithetic: bool = False) -> random.Random:
    """The RNG stream of one replication: ``seed``'s stream or its mirror.

    The single constructor every traffic path (serial cell, stream
    compiler) uses, so a ``(seed, antithetic)`` pair names the same
    stream everywhere -- the bit-identity contract of the adaptive
    rounds.
    """
    return AntitheticRandom(seed) if antithetic else random.Random(seed)


class AssignmentGenerator:
    """Generates random legal assignments of an ``N x N`` ``k``-wavelength net.

    Sampling walks the output endpoints in random order and picks a
    compatible input endpoint (or idle) uniformly at each step.  The
    distribution is *not* uniform over assignments -- it doesn't need to
    be; it just needs to cover the legal space and be reproducible.
    """

    def __init__(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        rng: random.Random | int | None = None,
    ):
        if n_ports < 1 or k < 1:
            raise ValueError(f"need N >= 1 and k >= 1, got N={n_ports}, k={k}")
        self.model = model
        self.n_ports = n_ports
        self.k = k
        if isinstance(rng, random.Random):
            self._rng = rng
        else:
            self._rng = random.Random(rng)

    def random_mapping(self, idle_probability: float = 0.3) -> dict[Endpoint, Endpoint]:
        """One random output->input endpoint mapping.

        Args:
            idle_probability: chance each output endpoint stays idle
                (0.0 forces an attempt at a full assignment; an output
                may still idle if no compatible input remains, which for
                these models cannot actually happen -- there is always a
                same-wavelength input free -- so 0.0 yields full
                assignments).
        """
        outputs = [
            Endpoint(port, wavelength)
            for port in range(self.n_ports)
            for wavelength in range(self.k)
        ]
        inputs = list(outputs)
        self._rng.shuffle(outputs)
        chosen: dict[Endpoint, Endpoint] = {}
        for output_endpoint in outputs:
            if idle_probability and self._rng.random() < idle_probability:
                continue
            candidates = [
                input_endpoint
                for input_endpoint in inputs
                if _compatible(self.model, output_endpoint, input_endpoint, chosen)
            ]
            if not candidates:
                continue
            chosen[output_endpoint] = self._rng.choice(candidates)
        return chosen

    def random_assignment(self, idle_probability: float = 0.3) -> MulticastAssignment:
        """One random legal :class:`MulticastAssignment`."""
        return MulticastAssignment.from_mapping(
            self.random_mapping(idle_probability)
        )

    def random_full_assignment(self) -> MulticastAssignment:
        """One random legal *full* assignment (every output endpoint used)."""
        return MulticastAssignment.from_mapping(self.random_mapping(0.0))


@dataclass(frozen=True)
class TrafficEvent:
    """One step of a dynamic traffic sequence."""

    kind: Literal["setup", "teardown"]
    connection: MulticastConnection
    connection_id: int


def draw_connection(
    rng: random.Random,
    model: MulticastModel,
    k: int,
    cap: int,
    free_inputs: set[int],
    free_outputs: set[int],
    pick_fanout: FanoutPicker | None = None,
    pick_ports: PortPicker | None = None,
) -> MulticastConnection | None:
    """One feasible random connection over the free endpoint sets.

    The single draw sequence every traffic model shares (source
    endpoint, admissible wavelength, fanout, destination ports,
    per-port wavelength); :func:`dynamic_traffic` and the
    continuous-time Poisson/Erlang workload both route through it, so
    endpoint feasibility is stated once.  Endpoints are int codes
    ``port * k + wavelength``.

    The two hooks are the workload seam: ``pick_fanout`` replaces the
    uniform fanout draw (heavy-tail group sizes), ``pick_ports`` the
    uniform destination-port sample (hotspot skew).  With both ``None``
    the draws -- and hence every stream compiled from them -- are
    bit-identical to the historical generator, which is the uniform
    workload's compatibility contract.

    Returns None when no feasible connection exists (no free input, or
    no output port offers an admissible wavelength).
    """
    if not free_inputs:
        return None
    source_code = rng.choice(sorted(free_inputs))
    source = Endpoint(*divmod(source_code, k))
    if model is MulticastModel.MSW:
        allowed: int | None = source.wavelength
    elif model is MulticastModel.MSDW:
        allowed = rng.randrange(k)
    else:
        allowed = None  # MAW: every wavelength admissible
    # Ports that offer a free endpoint on an allowed wavelength; codes
    # iterate in sorted order so per-port wavelength lists ascend.
    port_options: dict[int, list[int]] = {}
    for code in sorted(free_outputs):
        port, wavelength = divmod(code, k)
        if allowed is None or wavelength == allowed:
            port_options.setdefault(port, []).append(wavelength)
    if not port_options:
        return None
    fanout_cap = min(cap, len(port_options))
    if pick_fanout is None:
        fanout = rng.randint(1, fanout_cap)
    else:
        fanout = max(1, min(fanout_cap, pick_fanout(rng, fanout_cap)))
    if pick_ports is None:
        ports = rng.sample(sorted(port_options), fanout)
    else:
        ports = pick_ports(rng, port_options, fanout)
    destinations = [
        Endpoint(port, rng.choice(port_options[port])) for port in ports
    ]
    return MulticastConnection(source, destinations)


def dynamic_traffic(
    model: MulticastModel,
    n_ports: int,
    k: int,
    *,
    steps: int,
    seed: int | random.Random,
    max_fanout: int | None = None,
    teardown_probability: float = 0.35,
    pick_fanout: FanoutPicker | None = None,
    pick_ports: PortPicker | None = None,
) -> Iterator[TrafficEvent]:
    """Yield a random feasible sequence of connection setups/teardowns.

    Every prefix of the generated sequence keeps the set of active
    connections a legal multicast assignment under ``model``; a
    nonblocking network must therefore accept every setup event.

    Endpoints are tracked internally as int codes ``port * k +
    wavelength`` (whose numeric order equals ``Endpoint`` order), so the
    per-event bookkeeping sorts machine ints instead of dataclasses --
    the generator sits on the hot path of every Monte-Carlo sweep.

    Args:
        model: multicast model the connections must obey.
        n_ports: network size ``N``.
        k: wavelengths per fiber.
        steps: number of events to generate (fewer if the traffic space
            is exhausted, which only happens for degenerate sizes).
        seed: RNG seed; identical seeds give identical sequences.  A
            ``random.Random`` instance is used directly, letting a caller
            thread one stream per replication end-to-end.
        max_fanout: cap on destinations per connection (default ``N``).
        teardown_probability: chance a step tears down an active
            connection instead of setting up a new one.
        pick_fanout, pick_ports: the :func:`draw_connection` workload
            hooks (None keeps the bit-identical uniform draws).
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    cap = n_ports if max_fanout is None else min(max_fanout, n_ports)
    if cap < 1:
        raise ValueError(f"max_fanout must allow at least one destination, got {cap}")

    free_inputs: set[int] = {
        port * k + wavelength
        for port in range(n_ports)
        for wavelength in range(k)
    }
    free_outputs: set[int] = set(free_inputs)
    active: dict[int, MulticastConnection] = {}
    next_id = 0

    def try_setup() -> MulticastConnection | None:
        return draw_connection(
            rng, model, k, cap, free_inputs, free_outputs,
            pick_fanout, pick_ports,
        )

    def release(connection: MulticastConnection) -> None:
        free_inputs.add(connection.source.port * k + connection.source.wavelength)
        free_outputs.update(
            d.port * k + d.wavelength for d in connection.destinations
        )

    for _ in range(steps):
        do_teardown = active and (
            rng.random() < teardown_probability or not free_inputs
        )
        if do_teardown:
            connection_id = rng.choice(sorted(active))
            connection = active.pop(connection_id)
            release(connection)
            yield TrafficEvent("teardown", connection, connection_id)
            continue
        connection = try_setup()
        if connection is None:
            if not active:
                return  # nothing to do in either direction
            connection_id = rng.choice(sorted(active))
            connection = active.pop(connection_id)
            release(connection)
            yield TrafficEvent("teardown", connection, connection_id)
            continue
        free_inputs.discard(
            connection.source.port * k + connection.source.wavelength
        )
        free_outputs.difference_update(
            d.port * k + d.wavelength for d in connection.destinations
        )
        active[next_id] = connection
        yield TrafficEvent("setup", connection, next_id)
        next_id += 1
