"""Exhaustive enumeration of legal multicast assignments.

This is the brute-force oracle for Lemmas 1-3: enumerate *every*
assignment of a small ``N x N`` ``k``-wavelength network under a model
and count them; the counts must equal the closed-form capacities of
:mod:`repro.core.capacity` exactly.

An assignment is represented during the search as a mapping from output
endpoints to input endpoints (or idle).  The mapping view makes the
model rules local:

* **MSW**: an output endpoint ``(p, w)`` may only map to an input
  endpoint with the same wavelength ``w``;
* **MSDW**: two output endpoints with *different* wavelengths may not
  map to the same input endpoint (a source carries one signal, and all
  destinations of a connection share a wavelength);
* **MAW**: two output endpoints at the *same port* may not map to the
  same input endpoint (a connection may not use two wavelengths at one
  output port).

(The MAW same-port rule is implied for MSW/MSDW because same-port
outputs differ in wavelength.)  Everything else is unrestricted, which
is exactly why the counting arguments of the paper's proofs decompose
the way they do.

Complexity is ``O((Nk + 1)**(Nk))`` raw; intended for ``N k <= 8``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.models import MulticastModel
from repro.switching.requests import Endpoint, MulticastAssignment

__all__ = ["count_assignments", "iter_assignments", "iter_mappings"]


def _endpoints(n_ports: int, k: int) -> list[Endpoint]:
    return [
        Endpoint(port, wavelength)
        for port in range(n_ports)
        for wavelength in range(k)
    ]


def _compatible(
    model: MulticastModel,
    output_endpoint: Endpoint,
    input_endpoint: Endpoint,
    chosen: dict[Endpoint, Endpoint],
) -> bool:
    """Can ``output_endpoint`` map to ``input_endpoint`` given ``chosen``?"""
    if model is MulticastModel.MSW:
        if input_endpoint.wavelength != output_endpoint.wavelength:
            return False
    for prior_output, prior_input in chosen.items():
        if prior_input != input_endpoint:
            continue
        if model is MulticastModel.MSDW:
            if prior_output.wavelength != output_endpoint.wavelength:
                return False
        if prior_output.port == output_endpoint.port:
            # Same connection would use two wavelengths at one output port.
            return False
    return True


def iter_mappings(
    model: MulticastModel,
    n_ports: int,
    k: int,
    *,
    full: bool,
) -> Iterator[dict[Endpoint, Endpoint]]:
    """Yield every legal output->input endpoint mapping.

    Args:
        model: multicast model in force.
        n_ports: network size ``N``.
        k: wavelengths per fiber.
        full: if True, every output endpoint must be mapped
            (full-multicast-assignments); otherwise outputs may idle
            (any-multicast-assignments).
    """
    if n_ports < 1 or k < 1:
        raise ValueError(f"need N >= 1 and k >= 1, got N={n_ports}, k={k}")
    outputs = _endpoints(n_ports, k)
    inputs = _endpoints(n_ports, k)
    chosen: dict[Endpoint, Endpoint] = {}

    def recurse(index: int) -> Iterator[dict[Endpoint, Endpoint]]:
        if index == len(outputs):
            yield dict(chosen)
            return
        output_endpoint = outputs[index]
        if not full:
            # Leave this output endpoint idle.
            yield from recurse(index + 1)
        for input_endpoint in inputs:
            if _compatible(model, output_endpoint, input_endpoint, chosen):
                chosen[output_endpoint] = input_endpoint
                yield from recurse(index + 1)
                del chosen[output_endpoint]

    yield from recurse(0)


def iter_assignments(
    model: MulticastModel,
    n_ports: int,
    k: int,
    *,
    full: bool,
) -> Iterator[MulticastAssignment]:
    """Yield every legal assignment as a :class:`MulticastAssignment`."""
    for mapping in iter_mappings(model, n_ports, k, full=full):
        yield MulticastAssignment.from_mapping(mapping)


def count_assignments(
    model: MulticastModel,
    n_ports: int,
    k: int,
    *,
    full: bool,
) -> int:
    """Count legal assignments by exhaustive search (the Lemma 1-3 oracle)."""
    total = 0
    for _ in iter_mappings(model, n_ports, k, full=full):
        total += 1
    return total
