"""Validity rules for connections and assignments under each model.

Structural rules (independent of the multicast model, Section 2.1):

1. within a connection, at most one wavelength per output port
   (enforced by :class:`repro.switching.requests.MulticastConnection`);
2. across an assignment, each output endpoint used at most once and each
   input endpoint sources at most one connection (enforced by
   :class:`repro.switching.requests.MulticastAssignment`);
3. every endpoint must exist: ``0 <= port < N`` and ``0 <= wavelength < k``.

Model rules (Fig. 2):

* **MSW**: source wavelength == every destination wavelength;
* **MSDW**: all destination wavelengths equal (source free);
* **MAW**: no wavelength rule.

This module re-checks *everything* (including what the dataclasses
enforce), so it can serve as an independent oracle for the enumeration
and fabric tests.
"""

from __future__ import annotations

from repro.core.models import MulticastModel
from repro.switching.requests import Endpoint, MulticastAssignment, MulticastConnection

__all__ = [
    "ValidityError",
    "check_assignment",
    "check_connection",
    "is_valid_assignment",
    "is_valid_connection",
]


class ValidityError(ValueError):
    """A connection or assignment violates a structural or model rule."""


def _check_endpoint(endpoint: Endpoint, n_ports: int, k: int, side: str) -> None:
    if not 0 <= endpoint.port < n_ports:
        raise ValidityError(
            f"{side} port {endpoint.port} outside [0, {n_ports})"
        )
    if not 0 <= endpoint.wavelength < k:
        raise ValidityError(
            f"{side} wavelength {endpoint.wavelength} outside [0, {k})"
        )


def check_connection(
    connection: MulticastConnection,
    model: MulticastModel,
    n_ports: int,
    k: int,
) -> None:
    """Raise :class:`ValidityError` if the connection is illegal.

    Checks endpoint ranges, the one-wavelength-per-output-port rule, and
    the model's wavelength rule.
    """
    _check_endpoint(connection.source, n_ports, k, "source")
    ports_seen: set[int] = set()
    for destination in connection.destinations:
        _check_endpoint(destination, n_ports, k, "destination")
        if destination.port in ports_seen:
            raise ValidityError(
                f"two destinations at output port {destination.port}"
            )
        ports_seen.add(destination.port)
    if not model.admits(
        connection.source.wavelength,
        [d.wavelength for d in connection.destinations],
    ):
        raise ValidityError(
            f"wavelengths violate the {model} rule: source "
            f"lambda_{connection.source.wavelength}, destinations "
            f"{sorted(d.wavelength for d in connection.destinations)}"
        )


def check_assignment(
    assignment: MulticastAssignment,
    model: MulticastModel,
    n_ports: int,
    k: int,
) -> None:
    """Raise :class:`ValidityError` if the assignment is illegal.

    Checks every connection plus the cross-connection exclusivity of
    input and output endpoints.
    """
    used_inputs: set[Endpoint] = set()
    used_outputs: set[Endpoint] = set()
    for connection in assignment:
        check_connection(connection, model, n_ports, k)
        if connection.source in used_inputs:
            raise ValidityError(
                f"input endpoint {connection.source} sources two connections"
            )
        used_inputs.add(connection.source)
        for destination in connection.destinations:
            if destination in used_outputs:
                raise ValidityError(
                    f"output endpoint {destination} terminates two connections"
                )
            used_outputs.add(destination)


def is_valid_connection(
    connection: MulticastConnection,
    model: MulticastModel,
    n_ports: int,
    k: int,
) -> bool:
    """Boolean form of :func:`check_connection`."""
    try:
        check_connection(connection, model, n_ports, k)
    except ValidityError:
        return False
    return True


def is_valid_assignment(
    assignment: MulticastAssignment,
    model: MulticastModel,
    n_ports: int,
    k: int,
) -> bool:
    """Boolean form of :func:`check_assignment`."""
    try:
        check_assignment(assignment, model, n_ports, k)
    except ValidityError:
        return False
    return True
