"""Connection-level model of WDM multicast (Section 2).

* :mod:`repro.switching.requests` -- endpoints, multicast connections and
  multicast assignments (Fig. 1's traffic model).
* :mod:`repro.switching.validity` -- the structural and per-model rules a
  legal assignment must satisfy.
* :mod:`repro.switching.enumeration` -- exhaustive enumeration of all
  legal assignments of a small network (the brute-force oracle for
  Lemmas 1-3).
* :mod:`repro.switching.generators` -- seeded random assignment and
  dynamic-traffic generators for simulation and fuzzing.
"""

from repro.switching.requests import (
    Endpoint,
    MulticastAssignment,
    MulticastConnection,
)
from repro.switching.validity import (
    ValidityError,
    check_assignment,
    check_connection,
    is_valid_assignment,
    is_valid_connection,
)
from repro.switching.enumeration import (
    count_assignments,
    iter_assignments,
)
from repro.switching.generators import (
    AssignmentGenerator,
    TrafficEvent,
    dynamic_traffic,
)
from repro.switching.patterns import (
    bit_reversal,
    broadcast,
    identity,
    perfect_shuffle,
    ring_multicast,
    saturating_multicast,
)

__all__ = [
    "AssignmentGenerator",
    "Endpoint",
    "MulticastAssignment",
    "MulticastConnection",
    "TrafficEvent",
    "ValidityError",
    "bit_reversal",
    "broadcast",
    "check_assignment",
    "check_connection",
    "count_assignments",
    "dynamic_traffic",
    "identity",
    "is_valid_assignment",
    "is_valid_connection",
    "iter_assignments",
    "perfect_shuffle",
    "ring_multicast",
    "saturating_multicast",
]
