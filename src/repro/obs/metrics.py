"""Counters, timers and gauges for the observability layer.

A :class:`MetricsRegistry` is a plain in-memory accumulator: counters
are summed integers, timers are ``(count, total_seconds)`` pairs, and
gauges are last-write-wins floats.  The module-level :data:`REGISTRY`
is the process-wide instance every hook writes to while observability
is enabled (see :mod:`repro.obs`).

Two properties make the registry fit the repo's hot paths:

* **mergeable snapshots** -- :meth:`MetricsRegistry.snapshot` returns a
  plain-dict copy and :meth:`MetricsRegistry.merge` folds one back in
  (counters and timers add, gauges overwrite), which is how
  :class:`repro.perf.ParallelSweeper` aggregates metrics collected in
  worker processes into the parent's registry;
* **thread safety** -- mutations take a lock, so the thread executor's
  shared-memory workers can write concurrently without losing counts.

This module is intentionally dependency-free (stdlib only): the hot
paths import it transitively via :mod:`repro.obs`, and any import of a
heavier module here would create cycles with the simulator packages.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = ["REGISTRY", "MetricsRegistry"]


class MetricsRegistry:
    """In-memory metrics accumulator (counters / timers / gauges)."""

    __slots__ = ("_lock", "counters", "timers", "gauges")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> summed integer count
        self.counters: dict[str, int] = {}
        #: name -> (observation count, total seconds)
        self.timers: dict[str, tuple[int, float]] = {}
        #: name -> last observed value
        self.gauges: dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation of ``seconds`` under timer ``name``."""
        with self._lock:
            count, total = self.timers.get(name, (0, 0.0))
            self.timers[name] = (count + 1, total + seconds)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = float(value)

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager recording the block's wall time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- aggregation --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict copy of the current state (JSON-serializable)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    name: [count, total] for name, (count, total) in self.timers.items()
                },
                "gauges": dict(self.gauges),
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this registry.

        Counters and timers accumulate; gauges take the snapshot's value.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, (count, total) in snapshot.get("timers", {}).items():
                have_count, have_total = self.timers.get(name, (0, 0.0))
                self.timers[name] = (have_count + count, have_total + total)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauges[name] = value

    def reset(self) -> None:
        """Drop every recorded metric."""
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.gauges.clear()

    def as_dict(self) -> dict[str, Any]:
        """Alias of :meth:`snapshot` (results-metadata convention)."""
        return self.snapshot()


#: the process-wide registry all hooks write to while obs is enabled
REGISTRY = MetricsRegistry()
