"""Structured event tracing: JSONL records for admit / block / release.

While observability is enabled with an active :class:`Tracer`
(see :func:`repro.obs.capture`), every
:meth:`repro.multistage.network.ThreeStageNetwork.connect` /
``disconnect`` emits one record.  Records are flat JSON objects, one
per line (JSONL), so traces stream to disk or a pipe and are grep- and
``jq``-friendly:

* ``admit`` -- the request plus the middle switches and wavelengths it
  was routed onto;
* ``block`` -- the request plus its **cause**, reconstructed from the
  network's bitmask caches by
  :meth:`~repro.multistage.network.ThreeStageNetwork.explain_block`:
  which middle switches the request could not enter
  (``first_stage_blocked_mask``), which destination modules no
  available middle could reach, and the classification ``kind`` --
  ``saturated_wavelength`` (MSW-dominant: the source wavelength is busy
  on every first-stage fiber), ``converter_exhaustion`` (MAW-dominant:
  every wavelength on every first-stage fiber is busy, so no converter
  assignment can help), ``full_middles`` (some destination module's
  fibers are saturated on every available middle), or ``no_cover``
  (every module is individually reachable but no <= x middle switches
  cover them all -- the Lemma-4 bound binding);
* ``release`` -- a teardown;
* ``summary`` -- aggregate counts appended by
  :meth:`Tracer.summary_record`; per-cause block counts always sum to
  the blocked total, which is the blocking-probability numerator.

The schema is exported as :data:`TRACE_SCHEMA` and enforced by
:func:`validate_record` (used by the tests and the ``repro trace``
CLI).  Dependency-free by design -- the hot paths import this module
transitively via :mod:`repro.obs`, so it pulls in nothing beyond the
stdlib and the (equally dependency-free) :mod:`repro.engine.kernel`
taxonomy.
"""

from __future__ import annotations

import json
from typing import Any, IO

from repro.engine.kernel import ALL_BLOCK_KINDS

__all__ = ["TRACE_SCHEMA", "Tracer", "validate_record"]


#: required fields (and their types) per trace-record event kind
TRACE_SCHEMA: dict[str, dict[str, type | tuple[type, ...]]] = {
    "admit": {
        "event": str,
        "seq": int,
        "connection_id": int,
        "source": list,
        "destinations": list,
        "middles": list,
        "branches": list,
    },
    "block": {
        "event": str,
        "seq": int,
        "source": list,
        "destinations": list,
        "cause": dict,
    },
    "release": {
        "event": str,
        "seq": int,
        "connection_id": int,
    },
    "summary": {
        "event": str,
        "seq": int,
        "attempts": int,
        "admitted": int,
        "blocked": int,
        "released": int,
        "causes": dict,
    },
}

#: required fields of a ``block`` record's ``cause`` object
CAUSE_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "kind": str,
    "x": int,
    "input_module": int,
    "source_wavelength": int,
    "failed_middles_mask": int,
    "first_stage_blocked_mask": int,
    "available_middles_mask": int,
    "destination_modules": list,
    "unreachable_modules": list,
    "per_destination": list,
}

#: the closed set of blocking-cause classifications, defined once by the
#: admission engine (:data:`repro.engine.kernel.ALL_BLOCK_KINDS` -- the
#: Clos taxonomy plus the fabric-specific kinds) so the trace schema can
#: never drift from what the kernels actually emit
CAUSE_KINDS = ALL_BLOCK_KINDS


def validate_record(record: Any) -> None:
    """Raise ``ValueError`` unless ``record`` matches :data:`TRACE_SCHEMA`."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got {type(record).__name__}")
    event = record.get("event")
    if event not in TRACE_SCHEMA:
        raise ValueError(f"unknown trace event {event!r}")
    for name, expected in TRACE_SCHEMA[event].items():
        if name not in record:
            raise ValueError(f"{event} record missing field {name!r}")
        if not isinstance(record[name], expected):
            raise ValueError(
                f"{event} record field {name!r} has type "
                f"{type(record[name]).__name__}, expected {expected}"
            )
    if event == "block":
        cause = record["cause"]
        for name, expected in CAUSE_SCHEMA.items():
            if name not in cause:
                raise ValueError(f"block cause missing field {name!r}")
            if not isinstance(cause[name], expected):
                raise ValueError(
                    f"block cause field {name!r} has type "
                    f"{type(cause[name]).__name__}, expected {expected}"
                )
        if cause["kind"] not in CAUSE_KINDS:
            raise ValueError(f"unknown blocking-cause kind {cause['kind']!r}")
    if event == "summary":
        if sum(record["causes"].values()) != record["blocked"]:
            raise ValueError(
                "summary per-cause counts do not sum to the blocked total"
            )


class Tracer:
    """Collects trace records in memory and/or streams them as JSONL.

    Args:
        sink: a writable text stream receiving one JSON object per
            line, or None to only accumulate records in memory.
        keep_records: retain records on :attr:`records` (default True
            when ``sink`` is None, else False -- long traces should
            stream, not accumulate).
    """

    def __init__(
        self, sink: IO[str] | None = None, *, keep_records: bool | None = None
    ):
        self.sink = sink
        self.keep = keep_records if keep_records is not None else sink is None
        self.records: list[dict[str, Any]] = []
        self.seq = 0
        self.admitted = 0
        self.blocked = 0
        self.released = 0
        #: block count per cause ``kind``
        self.cause_counts: dict[str, int] = {}

    def emit(self, record: dict[str, Any]) -> None:
        """Stamp ``record`` with a sequence number and record/stream it."""
        record["seq"] = self.seq
        self.seq += 1
        event = record.get("event")
        if event == "admit":
            self.admitted += 1
        elif event == "block":
            self.blocked += 1
            kind = record["cause"]["kind"]
            self.cause_counts[kind] = self.cause_counts.get(kind, 0) + 1
        elif event == "release":
            self.released += 1
        if self.keep:
            self.records.append(record)
        if self.sink is not None:
            self.sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    def summary_record(self) -> dict[str, Any]:
        """The aggregate ``summary`` record for everything emitted so far.

        Per-cause block counts sum to ``blocked`` by construction --
        the invariant the ``repro trace`` acceptance check relies on.
        """
        return {
            "event": "summary",
            "attempts": self.admitted + self.blocked,
            "admitted": self.admitted,
            "blocked": self.blocked,
            "released": self.released,
            "causes": dict(sorted(self.cause_counts.items())),
        }

    def close(self, *, summary: bool = True) -> None:
        """Emit the summary record (optional) and flush the sink."""
        if summary:
            self.emit(self.summary_record())
        if self.sink is not None and hasattr(self.sink, "flush"):
            self.sink.flush()
