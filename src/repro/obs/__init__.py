"""Observability layer: zero-cost-when-off metrics, tracing and reports.

The paper's theorems are about *why* a request blocks -- which middle
switches are full, which wavelength is saturated -- but the Monte-Carlo
and exhaustive engines historically reported only aggregate verdicts.
This package instruments every hot path in the repo behind a single
module-level switch:

* :mod:`repro.obs.metrics` -- counters/timers/gauges (admission
  attempts, cover-search node expansions, cache hits/misses, pool
  queue latencies), mergeable across
  :class:`repro.perf.ParallelSweeper` worker processes;
* :mod:`repro.obs.trace` -- a structured JSONL tracer for request
  admit/block/release events, with the blocking *cause* reconstructed
  from :class:`~repro.multistage.network.ThreeStageNetwork`'s bitmask
  caches (``wdm-repro trace`` on the CLI);
* :mod:`repro.obs.report` -- aggregation and export of one run's
  observations;
* :mod:`repro.obs.meta` -- the :class:`~repro.obs.meta.ResultMeta`
  envelope (code version, kernel id, execution plan, obs summary)
  attached to results by :mod:`repro.api`.

**Zero cost when off.**  Every hook site in the simulator guards on
:func:`enabled` -- a read of one module-level boolean -- and the
disabled hook functions return before touching anything, allocating
nothing.  ``benchmarks/bench_perf.py`` asserts the obs-off overhead on
the routing-replay and end-to-end sections stays within noise, and
``tests/obs`` asserts the disabled admit path performs zero
allocations.

Typical use::

    from repro import api, obs

    with obs.capture() as run:                 # metrics only
        estimate = api.blocking(3, 3, 4, 1)
    print(run.metrics.snapshot()["counters"])

    import sys
    with obs.capture(sink=sys.stdout):         # metrics + JSONL trace
        api.blocking(3, 3, 2, 1)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, IO, Iterator

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA, Tracer, validate_record

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.multistage.network import (
        MulticastConnection,
        RoutedConnection,
        ThreeStageNetwork,
    )
    from repro.multistage.routing import CoverSearch

__all__ = [
    "Capture",
    "MetricsRegistry",
    "REGISTRY",
    "TRACE_SCHEMA",
    "Tracer",
    "capture",
    "disable",
    "enable",
    "enabled",
    "inc",
    "observe",
    "on_admit",
    "on_block",
    "on_release",
    "reset",
    "summary",
    "tracer",
    "validate_record",
]

#: the master switch -- hot paths read this via :func:`enabled`
_ENABLED = False
#: the active tracer, or None for metrics-only observation
_TRACER: Tracer | None = None


def enabled() -> bool:
    """Is observability on?  The hot-path guard; reads one boolean."""
    return _ENABLED


def enable(tracer: Tracer | None = None) -> None:
    """Turn observability on (metrics always; tracing if ``tracer`` given)."""
    global _ENABLED, _TRACER
    _TRACER = tracer
    _ENABLED = True


def disable() -> None:
    """Turn observability off (recorded metrics are kept until :func:`reset`)."""
    global _ENABLED, _TRACER
    _ENABLED = False
    _TRACER = None


def tracer() -> Tracer | None:
    """The active tracer, or None."""
    return _TRACER


def reset() -> None:
    """Clear the process-wide metrics registry."""
    REGISTRY.reset()


@dataclass(frozen=True)
class Capture:
    """Handle yielded by :func:`capture`: the registry plus the tracer."""

    metrics: MetricsRegistry
    tracer: Tracer | None

    def summary(self) -> dict[str, Any]:
        """Metrics snapshot plus trace summary for this capture."""
        out: dict[str, Any] = {"metrics": self.metrics.snapshot()}
        if self.tracer is not None:
            out["trace"] = self.tracer.summary_record()
        return out


@contextmanager
def capture(
    sink: IO[str] | None = None,
    *,
    tracer: Tracer | None = None,
    reset_metrics: bool = True,
) -> Iterator[Capture]:
    """Enable observability for a ``with`` block and yield a :class:`Capture`.

    Args:
        sink: writable text stream to receive the JSONL trace; None
            (default) with no ``tracer`` means metrics only.
        tracer: a preconfigured :class:`Tracer` (overrides ``sink``).
        reset_metrics: start the block from an empty registry.
    """
    active = tracer if tracer is not None else (Tracer(sink) if sink is not None else None)
    if reset_metrics:
        REGISTRY.reset()
    previous = (_ENABLED, _TRACER)
    enable(active)
    try:
        yield Capture(metrics=REGISTRY, tracer=active)
    finally:
        if previous[0]:
            enable(previous[1])
        else:
            disable()


def summary() -> dict[str, Any]:
    """Snapshot of the process-wide registry plus active-trace summary."""
    out: dict[str, Any] = {"metrics": REGISTRY.snapshot()}
    if _TRACER is not None:
        out["trace"] = _TRACER.summary_record()
    return out


# -- guarded recording helpers (no-ops while disabled) -----------------------


def inc(name: str, value: int = 1) -> None:
    """Counter increment that is a no-op (and allocation-free) when off."""
    if not _ENABLED:
        return
    REGISTRY.inc(name, value)


def observe(name: str, seconds: float) -> None:
    """Timer observation that is a no-op (and allocation-free) when off."""
    if not _ENABLED:
        return
    REGISTRY.observe(name, seconds)


# -- hot-path hooks ----------------------------------------------------------
#
# The simulator calls these behind its own ``if obs.enabled():`` guard,
# but each hook re-checks the flag so a direct call is equally safe; the
# disabled path returns before allocating anything.


def _record_cover_stats(stats: "CoverSearch | None") -> None:
    if stats is None:
        return
    if stats.greedy_hit:
        REGISTRY.inc("route.cover.greedy_hits")
    if stats.exact_nodes:
        REGISTRY.inc("route.cover.exact_nodes", stats.exact_nodes)


def on_admit(
    net: "ThreeStageNetwork",
    routed: "RoutedConnection",
    stats: "CoverSearch | None" = None,
) -> None:
    """Record one admitted connection (and trace it if tracing)."""
    if not _ENABLED:
        return
    REGISTRY.inc("net.admit.attempts")
    REGISTRY.inc("net.admit.admitted")
    _record_cover_stats(stats)
    if _TRACER is not None:
        request = routed.request
        _TRACER.emit(
            {
                "event": "admit",
                "connection_id": routed.connection_id,
                "source": [request.source.port, request.source.wavelength],
                "destinations": [
                    [d.port, d.wavelength] for d in request.destinations
                ],
                "middles": [branch.middle for branch in routed.branches],
                "branches": [
                    [
                        branch.middle,
                        branch.in_wavelength,
                        [[p, w] for p, w in branch.deliveries],
                    ]
                    for branch in routed.branches
                ],
            }
        )


def on_block(
    net: "ThreeStageNetwork",
    request: "MulticastConnection",
    cause: dict[str, Any],
    stats: "CoverSearch | None" = None,
) -> None:
    """Record one blocked request with its reconstructed cause."""
    if not _ENABLED:
        return
    REGISTRY.inc("net.admit.attempts")
    REGISTRY.inc("net.admit.blocked")
    REGISTRY.inc(f"net.block.cause.{cause['kind']}")
    _record_cover_stats(stats)
    if _TRACER is not None:
        _TRACER.emit(
            {
                "event": "block",
                "source": [request.source.port, request.source.wavelength],
                "destinations": [
                    [d.port, d.wavelength] for d in request.destinations
                ],
                "cause": cause,
            }
        )


def on_release(net: "ThreeStageNetwork", connection_id: int) -> None:
    """Record one teardown."""
    if not _ENABLED:
        return
    REGISTRY.inc("net.release")
    if _TRACER is not None:
        _TRACER.emit({"event": "release", "connection_id": connection_id})


# -- lazy heavy exports ------------------------------------------------------
#
# ``meta`` and ``report`` pull in repro.perf (and through it the
# multistage package); importing them eagerly here would cycle with the
# simulator modules that import repro.obs for their hook guards.

_LAZY = {"meta", "report", "ResultMeta", "ObsReport"}


def __getattr__(name: str) -> Any:  # pragma: no cover - thin import shim
    if name in _LAZY:
        import importlib

        meta = importlib.import_module("repro.obs.meta")
        report = importlib.import_module("repro.obs.report")
        values = {
            "meta": meta,
            "report": report,
            "ResultMeta": meta.ResultMeta,
            "ObsReport": report.ObsReport,
        }
        globals().update(values)
        return values[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
