"""The shared result-metadata envelope (:class:`ResultMeta`).

Every result the public facade (:mod:`repro.api`) returns --
:class:`~repro.analysis.montecarlo.BlockingEstimate`, the exact-search
summaries, sweep tables -- carries one :class:`ResultMeta` describing
*how* the numbers were produced: the cache code version, the routing
kernel that ran, the executor plan the sweeper resolved, and (when
observability was on) the obs summary.  One envelope instead of ad-hoc
metadata dicts means every result answers the same provenance
questions the same way, and ``to_json()``/``from_json()`` round-trips
make results self-describing on disk.

The plan and obs summary are stored as canonical JSON *strings*
(``plan_json`` / ``obs_json``), not dicts: results embedding a
:class:`ResultMeta` stay frozen-dataclass hashable and equality is
content equality.  The parsed views are the :attr:`ResultMeta.plan`
and :attr:`ResultMeta.obs` properties.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.multistage.routing import get_routing_kernel
from repro.perf.cache import CODE_VERSION

__all__ = ["ResultMeta"]


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ResultMeta:
    """Provenance envelope shared by every :mod:`repro.api` result.

    Attributes:
        code_version: :data:`repro.perf.cache.CODE_VERSION` at compute
            time -- the cache-compatibility generation of the numbers.
        kernel: the routing kernel id that produced them
            (``"bitmask"`` / ``"reference"``).
        plan_json: canonical JSON of the
            :class:`~repro.perf.sweeper.ExecutionPlan` that ran the
            sweep, or None when no sweeper was involved.
        obs_json: canonical JSON of the observability summary captured
            during the run, or None when observability was off.
        workload_json: canonical JSON of the tagged
            :meth:`repro.workloads.WorkloadConfig.as_dict` form of the
            traffic model that produced the numbers, or None for
            results predating the workload library (or paths that
            bypass it); ``repro.workloads.workload_from_dict`` rebuilds
            the config, so a result names exactly the traffic that
            produced it.
    """

    code_version: str
    kernel: str
    plan_json: str | None = None
    obs_json: str | None = None
    workload_json: str | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def capture(
        cls,
        plan: Any = None,
        *,
        obs_summary: dict[str, Any] | None = None,
        workload: Any = None,
    ) -> "ResultMeta":
        """Snapshot the current process state into an envelope.

        Args:
            plan: an :class:`~repro.perf.sweeper.ExecutionPlan`, an
                equivalent dict, or None.
            obs_summary: an explicit observability summary; by default
                the envelope captures :func:`repro.obs.summary` when
                observability is enabled, nothing otherwise.
            workload: the :class:`repro.workloads.WorkloadConfig` the
                run sampled (its tagged ``as_dict`` form is stored), an
                equivalent dict, or None.
        """
        from repro import obs

        if obs_summary is None and obs.enabled():
            obs_summary = obs.summary()
        plan_dict = plan.as_dict() if hasattr(plan, "as_dict") else plan
        workload_dict = (
            workload.as_dict() if hasattr(workload, "as_dict") else workload
        )
        return cls(
            code_version=CODE_VERSION,
            kernel=get_routing_kernel(),
            plan_json=_canonical(plan_dict) if plan_dict is not None else None,
            obs_json=_canonical(obs_summary) if obs_summary is not None else None,
            workload_json=(
                _canonical(workload_dict) if workload_dict is not None else None
            ),
        )

    # -- parsed views --------------------------------------------------------

    @property
    def plan(self) -> dict[str, Any] | None:
        """The execution plan as a dict, or None."""
        return json.loads(self.plan_json) if self.plan_json is not None else None

    @property
    def obs(self) -> dict[str, Any] | None:
        """The observability summary as a dict, or None."""
        return json.loads(self.obs_json) if self.obs_json is not None else None

    @property
    def workload(self) -> dict[str, Any] | None:
        """The tagged workload-config dict, or None."""
        return (
            json.loads(self.workload_json)
            if self.workload_json is not None
            else None
        )

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Fully parsed dict form (plan/obs expanded)."""
        return {
            "code_version": self.code_version,
            "kernel": self.kernel,
            "plan": self.plan,
            "obs": self.obs,
            "workload": self.workload,
        }

    def to_json(self) -> str:
        """Canonical JSON; inverse of :meth:`from_json`."""
        return _canonical(
            {
                "code_version": self.code_version,
                "kernel": self.kernel,
                "plan_json": self.plan_json,
                "obs_json": self.obs_json,
                "workload_json": self.workload_json,
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ResultMeta":
        """Rebuild an envelope from :meth:`to_json` output.

        Backward compatible: payloads written before ``workload_json``
        existed load with it as None.
        """
        data = json.loads(payload)
        return cls(
            code_version=data["code_version"],
            kernel=data["kernel"],
            plan_json=data.get("plan_json"),
            obs_json=data.get("obs_json"),
            workload_json=data.get("workload_json"),
        )
