"""Aggregation and export of one run's observations (:class:`ObsReport`).

The raw observability state is spread over the process-wide metrics
registry (already merged across :class:`repro.perf.ParallelSweeper`
worker processes by the sweeper's obs-aware chunk runner), the active
:class:`~repro.obs.trace.Tracer`, and the sweeper's resolved
:class:`~repro.perf.sweeper.ExecutionPlan`.  :func:`ObsReport.collect`
snapshots all three into one JSON-serializable object that the CLI
renders (``wdm-repro trace``), the benches export, and
:class:`repro.obs.meta.ResultMeta` embeds into results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ObsReport", "merge_snapshots"]


def merge_snapshots(snapshots: list[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold worker-process metrics snapshots into one combined snapshot.

    Counters and timers accumulate; gauges take the last snapshot's
    value -- the same semantics as
    :meth:`repro.obs.metrics.MetricsRegistry.merge`, but as a pure
    function over plain dicts (usable on snapshots that crossed a
    pickle boundary without touching the live registry).
    """
    from repro.obs.metrics import MetricsRegistry

    combined = MetricsRegistry()
    for snapshot in snapshots:
        combined.merge(snapshot)
    return combined.snapshot()


@dataclass(frozen=True)
class ObsReport:
    """One run's merged observations: metrics + trace summary + plan."""

    metrics: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] | None = None
    plan: dict[str, Any] | None = None

    @classmethod
    def collect(cls, plan: Any = None) -> "ObsReport":
        """Snapshot the current process's observability state.

        Args:
            plan: an :class:`~repro.perf.sweeper.ExecutionPlan` (or
                dict) to embed; defaults to the process's most recent
                plan (:func:`repro.perf.sweeper.last_plan`).
        """
        from repro import obs
        from repro.perf.sweeper import last_plan

        if plan is None:
            plan = last_plan()
        active = obs.tracer()
        return cls(
            metrics=obs.REGISTRY.snapshot(),
            trace=active.summary_record() if active is not None else None,
            plan=plan.as_dict() if hasattr(plan, "as_dict") else plan,
        )

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {"metrics": self.metrics, "trace": self.trace, "plan": self.plan}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "ObsReport":
        data = json.loads(payload)
        return cls(
            metrics=data.get("metrics", {}),
            trace=data.get("trace"),
            plan=data.get("plan"),
        )

    def render(self) -> str:
        """Human-readable multi-line summary (CLI footer format)."""
        lines: list[str] = []
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        timers = self.metrics.get("timers", {})
        if timers:
            lines.append("timers:")
            for name in sorted(timers):
                count, total = timers[name]
                mean = total / count if count else 0.0
                lines.append(
                    f"  {name}: n={count} total={total:.6f}s mean={mean:.6f}s"
                )
        gauges = self.metrics.get("gauges", {})
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]}")
        if self.trace is not None:
            causes = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.trace.get("causes", {}).items())
            ) or "none"
            lines.append(
                "trace: attempts={attempts} admitted={admitted} "
                "blocked={blocked} released={released}".format(**self.trace)
            )
            lines.append(f"  causes: {causes}")
        if self.plan is not None:
            lines.append(
                "plan: executor={executor} jobs={resolved_jobs} "
                "units={units} dispatched={dispatched} "
                "cache_hits={cache_hits}".format(**self.plan)
            )
        return "\n".join(lines) if lines else "no observations recorded"
