"""Exact integer primitives used throughout the reproduction.

The paper's capacity formulas (Lemmas 1-3) are products of falling
factorials, binomials and Stirling numbers; its nonblocking conditions
(Theorems 1-2) involve the real quantity ``r**(1/x)``.  To keep every
result exact (and therefore property-testable without epsilon fudging),
this module provides:

* :func:`falling_factorial` -- the paper's ``P(x, i)``;
* :func:`binomial` -- binomial coefficients;
* :func:`integer_root` -- exact floor of the x-th root of an integer;
* :func:`power_exceeds` / :func:`min_base_exceeding` -- the exact integer
  comparisons that replace floating-point evaluation of ``r**(1/x)`` in
  the nonblocking predicates (see :mod:`repro.core.multistage`).
"""

from __future__ import annotations

import math

__all__ = [
    "binomial",
    "falling_factorial",
    "integer_root",
    "min_base_exceeding",
    "power_exceeds",
]


def falling_factorial(x: int, i: int) -> int:
    """The paper's ``P(x, i) = x (x-1) ... (x-i+1)``.

    ``P(x, 0) = 1`` (empty product), which Lemma 2's any-multicast sum
    relies on at the ``j = k`` term.  For ``i > x >= 0`` the product hits
    zero, matching the combinatorial meaning (no injections exist).

    Args:
        x: the upper argument (number of items to choose from).
        i: the number of factors (length of the injection).

    Returns:
        The exact integer value of the falling factorial.

    Raises:
        ValueError: if ``i`` is negative.
    """
    if i < 0:
        raise ValueError(f"falling factorial length must be >= 0, got {i}")
    result = 1
    for term in range(x, x - i, -1):
        if term <= 0:
            return 0
        result *= term
    return result


def binomial(n: int, j: int) -> int:
    """Binomial coefficient ``C(n, j)``; zero outside ``0 <= j <= n``."""
    if j < 0 or j > n or n < 0:
        return 0
    return math.comb(n, j)


def integer_root(value: int, degree: int) -> int:
    """Exact ``floor(value ** (1/degree))`` for non-negative integers.

    Uses Newton iteration on integers, so the result is exact for
    arbitrarily large ``value`` (unlike ``value ** (1.0 / degree)``).

    Args:
        value: the radicand, ``>= 0``.
        degree: the root degree, ``>= 1``.

    Returns:
        The largest integer ``s`` with ``s ** degree <= value``.

    Raises:
        ValueError: if ``value < 0`` or ``degree < 1``.
    """
    if degree < 1:
        raise ValueError(f"root degree must be >= 1, got {degree}")
    if value < 0:
        raise ValueError(f"radicand must be >= 0, got {value}")
    if value in (0, 1) or degree == 1:
        return value
    # Integer seed from the bit length (floats overflow on big values),
    # then integer Newton to correct rounding.
    guess = 1 << -(-value.bit_length() // degree)  # 2**ceil(bits/degree)
    guess = max(guess, 1)
    while True:
        # Newton step for f(s) = s**degree - value.
        better = ((degree - 1) * guess + value // guess ** (degree - 1)) // degree
        if better >= guess:
            break
        guess = better
    while guess**degree > value:
        guess -= 1
    while (guess + 1) ** degree <= value:
        guess += 1
    return guess


def power_exceeds(base: int, exponent: int, bound: int) -> bool:
    """Exact test ``base ** exponent > bound`` without huge intermediates.

    For the sizes in this project a direct power would be fine, but the
    short-circuiting keeps adversarial property-test inputs cheap.
    """
    if base <= 0:
        return 0 > bound if base == 0 and exponent > 0 else (exponent == 0 and 1 > bound)
    if exponent == 0:
        return 1 > bound
    if bound < 0:
        return True
    # bit_length bound: base**exponent >= 2**((bl-1)*exponent)
    if (base.bit_length() - 1) * exponent > bound.bit_length():
        return True
    return base**exponent > bound


def min_base_exceeding(bound: int, exponent: int) -> int:
    """Smallest non-negative integer ``s`` with ``s ** exponent > bound``.

    This is the exact-integer replacement for ``floor(bound**(1/exponent)) + 1``
    used when computing minimal middle-stage sizes: Theorem 1 requires
    ``m - (n-1)x > (n-1) * r**(1/x)``, i.e. the smallest integer strictly
    greater than ``(n-1) r^{1/x}``, which (after clearing the root) is
    ``min_base_exceeding(r * (n-1)**x, x)`` -- see
    :func:`repro.core.multistage.min_middle_switches_msw_dominant`.

    Args:
        bound: the integer to exceed, ``>= 0``.
        exponent: the exponent ``x >= 1``.

    Returns:
        The smallest ``s >= 0`` with ``s ** exponent > bound``.
    """
    if bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    if exponent < 1:
        raise ValueError(f"exponent must be >= 1, got {exponent}")
    root = integer_root(bound, exponent)
    # root**exponent <= bound < (root+1)**exponent, so root+1 is the answer.
    return root + 1
