"""Dense integer polynomials as generating functions.

Lemma 3's MSDW capacity is a sum over ``k`` independent per-wavelength
partition choices coupled only through the total number of connections
``t = sum_i j_i`` (which picks ``P(Nk, t)`` source wavelengths).  Writing
the per-wavelength choice counts as a polynomial ``A(z) = sum_j a_j z^j``
turns the k-fold sum into a single coefficient extraction:

    capacity = sum_t  [z^t] A(z)**k  *  P(Nk, t)

which is dramatically cheaper than iterating over all ``N**k`` index
vectors and keeps everything in exact integers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["IntPolynomial"]


class IntPolynomial:
    """An immutable dense polynomial with exact integer coefficients.

    Coefficients are stored low-degree-first; trailing zeros are
    normalized away so equality is structural.
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coefficients: Iterable[int] = ()):
        coeffs = list(coefficients)
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self._coeffs: tuple[int, ...] = tuple(coeffs)

    # -- constructors -------------------------------------------------

    @classmethod
    def zero(cls) -> IntPolynomial:
        """The zero polynomial."""
        return cls(())

    @classmethod
    def one(cls) -> IntPolynomial:
        """The constant polynomial 1."""
        return cls((1,))

    @classmethod
    def monomial(cls, degree: int, coefficient: int = 1) -> IntPolynomial:
        """``coefficient * z**degree``."""
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        return cls((0,) * degree + (coefficient,))

    # -- inspection ---------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self._coeffs) - 1

    @property
    def coefficients(self) -> tuple[int, ...]:
        """Coefficients low-degree-first (empty for the zero polynomial)."""
        return self._coeffs

    def coefficient(self, degree: int) -> int:
        """The coefficient of ``z**degree`` (0 beyond the stored degree)."""
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        if degree >= len(self._coeffs):
            return 0
        return self._coeffs[degree]

    def __iter__(self) -> Iterator[int]:
        return iter(self._coeffs)

    def __len__(self) -> int:
        return len(self._coeffs)

    def __bool__(self) -> bool:
        return bool(self._coeffs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntPolynomial):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __repr__(self) -> str:
        return f"IntPolynomial({list(self._coeffs)!r})"

    def __call__(self, point: int) -> int:
        """Evaluate at an integer point (Horner's scheme)."""
        result = 0
        for coeff in reversed(self._coeffs):
            result = result * point + coeff
        return result

    # -- arithmetic ---------------------------------------------------

    def __add__(self, other: IntPolynomial) -> IntPolynomial:
        if not isinstance(other, IntPolynomial):
            return NotImplemented
        longer, shorter = self._coeffs, other._coeffs
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        summed = list(longer)
        for index, coeff in enumerate(shorter):
            summed[index] += coeff
        return IntPolynomial(summed)

    def __mul__(self, other: IntPolynomial | int) -> IntPolynomial:
        if isinstance(other, int):
            return IntPolynomial(coeff * other for coeff in self._coeffs)
        if not isinstance(other, IntPolynomial):
            return NotImplemented
        if not self._coeffs or not other._coeffs:
            return IntPolynomial.zero()
        product = [0] * (len(self._coeffs) + len(other._coeffs) - 1)
        for i, a in enumerate(self._coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other._coeffs):
                product[i + j] += a * b
        return IntPolynomial(product)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> IntPolynomial:
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        result = IntPolynomial.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            exponent >>= 1
            if exponent:
                base = base * base
        return result

    # -- convolutions with weights -------------------------------------

    def weighted_sum(self, weights: Iterable[int]) -> int:
        """``sum_t coeff[t] * weight[t]`` over the stored coefficients.

        ``weights`` must provide at least ``degree + 1`` values; extra
        values are ignored.  This is the coefficient-extraction step of
        the MSDW capacity computation.
        """
        total = 0
        weight_iter = iter(weights)
        for coeff in self._coeffs:
            try:
                weight = next(weight_iter)
            except StopIteration as exc:
                raise ValueError(
                    f"need at least {len(self._coeffs)} weights, ran out early"
                ) from exc
            total += coeff * weight
        return total
