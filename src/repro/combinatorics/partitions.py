"""Enumeration of set partitions.

Used by the brute-force cross-checks of Lemma 3: the MSDW capacity proof
groups the ``N`` output copies of each wavelength into the destination
sets of multicast connections, i.e. into set partitions.  Enumerating the
partitions directly and counting assignments must reproduce the
closed-form capacity exactly; see ``tests/test_capacity_enumeration.py``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TypeVar

from repro.combinatorics.stirling import stirling2

T = TypeVar("T")

__all__ = ["count_partitions_into", "iter_set_partitions", "iter_set_partitions_into"]


def iter_set_partitions(items: Sequence[T]) -> Iterator[list[list[T]]]:
    """Yield every set partition of ``items`` (blocks in canonical order).

    The canonical order lists blocks by their smallest element's position,
    which makes the output deterministic and duplicate-free.  The number
    of partitions yielded is the Bell number ``B(len(items))``.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in iter_set_partitions(rest):
        # Insert `first` into each existing block, or as a new first block.
        yield [[first], *partial]
        for index in range(len(partial)):
            grown = [list(block) for block in partial]
            grown[index] = [first, *grown[index]]
            yield grown


def iter_set_partitions_into(items: Sequence[T], blocks: int) -> Iterator[list[list[T]]]:
    """Yield set partitions of ``items`` with exactly ``blocks`` blocks.

    Yields ``S(len(items), blocks)`` partitions (Stirling number of the
    second kind), the quantity Lemma 3 sums over.
    """
    for partition in iter_set_partitions(items):
        if len(partition) == blocks:
            yield partition


def count_partitions_into(n: int, blocks: int) -> int:
    """Closed-form count matching :func:`iter_set_partitions_into`."""
    return stirling2(n, blocks)
