"""Stirling numbers of the second kind and Bell numbers.

Lemma 3 expresses the MSDW multicast capacity in terms of ``S(N, j)``,
the number of ways to partition ``N`` labelled elements into ``j``
non-empty unlabelled groups.  The values are computed once per row via
the standard triangle recurrence and cached.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["bell_number", "stirling2", "stirling2_row"]


@lru_cache(maxsize=None)
def stirling2_row(n: int) -> tuple[int, ...]:
    """Row ``n`` of the Stirling-number triangle: ``(S(n,0), ..., S(n,n))``.

    ``S(0, 0) = 1`` (the empty partition), ``S(n, 0) = 0`` for ``n > 0``.
    Computed iteratively with the recurrence
    ``S(n, j) = j S(n-1, j) + S(n-1, j-1)`` (no recursion, so large rows
    -- N in the thousands -- do not hit the interpreter stack limit).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    prev: tuple[int, ...] = (1,)
    for size in range(1, n + 1):
        row = [0] * (size + 1)
        for j in range(1, size + 1):
            above = prev[j] if j < len(prev) else 0
            row[j] = j * above + prev[j - 1]
        prev = tuple(row)
    return prev


def stirling2(n: int, j: int) -> int:
    """``S(n, j)``: partitions of an ``n``-set into ``j`` non-empty blocks.

    Returns 0 outside ``0 <= j <= n`` (and for ``j = 0`` with ``n > 0``),
    matching the combinatorial convention used by Lemma 3.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if j < 0 or j > n:
        return 0
    return stirling2_row(n)[j]


def bell_number(n: int) -> int:
    """``B(n) = sum_j S(n, j)``: the number of set partitions of an n-set."""
    return sum(stirling2_row(n))
