"""Destination multiset algebra -- the paper's equations (2)-(5).

In the MAW-dominant construction, the state of a middle-stage switch ``j``
is summarized by a *destination multiset* ``M_j`` over the base set
``O = {1, ..., r}`` of output-stage switches: the multiplicity of ``p`` in
``M_j`` is the number of multicast connections currently routed from
``j`` to ``p`` (equivalently: busy wavelengths on the link ``j -> p``),
bounded by the link's wavelength count ``k``.

The paper redefines the usual multiset operations so Lemma 4 carries over:

* eq. (2): ``M_j = {1^{i_1}, ..., r^{i_r}}`` with ``0 <= i_p <= k``;
* eq. (3): intersection is *element-wise minimum* of multiplicities --
  an output switch is unusable through a set of middle switches only if
  its link is saturated at every one of them;
* eq. (4): the cardinality ``|M_j|`` counts elements whose multiplicity
  equals ``k`` (saturated elements, which "cannot be used");
* eq. (5): ``M_j`` is *null* iff ``|M_j| = 0``, i.e. no element saturated.

With these definitions, a new request with destination set ``D`` can be
realized through middle switches ``j_1..j_x`` iff the intersection of
their multisets, restricted to ``D``, is null (generalized Lemma 4).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["DestinationMultiset"]


class DestinationMultiset:
    """A multiset over output-switch indices ``0..r-1``, capped at ``k``.

    Immutable; all mutating operations return new instances.  Indices are
    0-based internally (the paper numbers output switches from 1).
    """

    __slots__ = ("_counts", "_k")

    def __init__(self, counts: Iterable[int], k: int):
        counts = tuple(counts)
        if k < 1:
            raise ValueError(f"wavelength count k must be >= 1, got {k}")
        for p, count in enumerate(counts):
            if not 0 <= count <= k:
                raise ValueError(
                    f"multiplicity of element {p} is {count}, outside [0, {k}]"
                )
        self._counts = counts
        self._k = k

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls, r: int, k: int) -> DestinationMultiset:
        """The all-zero multiset over ``r`` elements."""
        return cls((0,) * r, k)

    @classmethod
    def from_elements(cls, elements: Iterable[int], r: int, k: int) -> DestinationMultiset:
        """Build from a stream of element indices (repeats add multiplicity)."""
        counts = [0] * r
        for element in elements:
            if not 0 <= element < r:
                raise ValueError(f"element {element} outside [0, {r})")
            counts[element] += 1
            if counts[element] > k:
                raise ValueError(
                    f"element {element} appears more than k={k} times"
                )
        return cls(counts, k)

    # -- inspection ---------------------------------------------------

    @property
    def k(self) -> int:
        """Multiplicity cap (wavelengths per link)."""
        return self._k

    @property
    def r(self) -> int:
        """Size of the base set ``O``."""
        return len(self._counts)

    @property
    def counts(self) -> tuple[int, ...]:
        """Multiplicity vector ``(i_1, ..., i_r)`` of eq. (2)."""
        return self._counts

    def multiplicity(self, element: int) -> int:
        """Multiplicity of ``element`` (number of connections to it)."""
        return self._counts[element]

    def total(self) -> int:
        """Total number of connections represented (sum of multiplicities)."""
        return sum(self._counts)

    def saturated_elements(self) -> frozenset[int]:
        """Elements with multiplicity exactly ``k`` -- unusable per eq. (4)."""
        return frozenset(
            p for p, count in enumerate(self._counts) if count == self._k
        )

    def usable_elements(self) -> frozenset[int]:
        """Elements with spare multiplicity -- the maximal realizable fanout."""
        return frozenset(
            p for p, count in enumerate(self._counts) if count < self._k
        )

    def cardinality(self) -> int:
        """The paper's ``|M_j|`` (eq. (4)): the number of saturated elements."""
        return sum(1 for count in self._counts if count == self._k)

    def is_null(self) -> bool:
        """The paper's null test (eq. (5)): true iff no element is saturated."""
        return self.cardinality() == 0

    # -- algebra ------------------------------------------------------

    def intersect(self, other: DestinationMultiset) -> DestinationMultiset:
        """Element-wise minimum (eq. (3)).

        The maximal multicast connection realizable through two middle
        switches with multisets ``A`` and ``B`` equals the one realizable
        through a single switch with multiset ``A.intersect(B)``.
        """
        self._check_compatible(other)
        return DestinationMultiset(
            (min(a, b) for a, b in zip(self._counts, other._counts)),
            self._k,
        )

    def restrict(self, elements: Iterable[int]) -> DestinationMultiset:
        """Zero out multiplicities outside ``elements``.

        Used to apply Lemma 4 to a specific request: only the requested
        destinations matter for the null test.
        """
        keep = set(elements)
        return DestinationMultiset(
            (count if p in keep else 0 for p, count in enumerate(self._counts)),
            self._k,
        )

    def add(self, element: int, amount: int = 1) -> DestinationMultiset:
        """Return a copy with ``amount`` added to ``element``'s multiplicity."""
        counts = list(self._counts)
        counts[element] += amount
        return DestinationMultiset(counts, self._k)

    def remove(self, element: int, amount: int = 1) -> DestinationMultiset:
        """Return a copy with ``amount`` removed from ``element``."""
        return self.add(element, -amount)

    def _check_compatible(self, other: DestinationMultiset) -> None:
        if self.r != other.r or self._k != other._k:
            raise ValueError(
                f"incompatible multisets: (r={self.r}, k={self._k}) vs "
                f"(r={other.r}, k={other._k})"
            )

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DestinationMultiset):
            return NotImplemented
        return self._counts == other._counts and self._k == other._k

    def __hash__(self) -> int:
        return hash((self._counts, self._k))

    def __iter__(self) -> Iterator[int]:
        """Iterate elements with multiplicity (each repeated that many times)."""
        for p, count in enumerate(self._counts):
            for _ in range(count):
                yield p

    def __repr__(self) -> str:
        parts = [
            f"{p}^{count}" for p, count in enumerate(self._counts) if count
        ]
        return f"DestinationMultiset({{{', '.join(parts)}}}, k={self._k})"

    @staticmethod
    def intersect_all(multisets: Iterable[DestinationMultiset]) -> DestinationMultiset:
        """Intersection (element-wise min) of a non-empty collection."""
        iterator = iter(multisets)
        try:
            result = next(iterator)
        except StopIteration as exc:
            raise ValueError("intersect_all needs at least one multiset") from exc
        for multiset in iterator:
            result = result.intersect(multiset)
        return result
