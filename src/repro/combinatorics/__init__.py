"""Exact integer combinatorics substrate.

Everything the paper's capacity and nonblocking analysis needs, computed
with exact Python integers:

* :mod:`repro.combinatorics.integers` -- falling factorials ``P(x, i)``,
  binomial coefficients, exact integer k-th roots, and the exact power
  comparisons used by the nonblocking predicates.
* :mod:`repro.combinatorics.stirling` -- Stirling numbers of the second
  kind ``S(N, j)`` and Bell numbers.
* :mod:`repro.combinatorics.partitions` -- enumeration of set partitions
  (used to cross-check Lemma 3 by brute force).
* :mod:`repro.combinatorics.polynomials` -- dense integer polynomials
  (used as generating functions for the MSDW capacity sums).
* :mod:`repro.combinatorics.multiset` -- the destination multiset algebra
  of the paper's equations (2)-(5).
"""

from repro.combinatorics.integers import (
    binomial,
    falling_factorial,
    integer_root,
    min_base_exceeding,
    power_exceeds,
)
from repro.combinatorics.multiset import DestinationMultiset
from repro.combinatorics.partitions import (
    count_partitions_into,
    iter_set_partitions,
    iter_set_partitions_into,
)
from repro.combinatorics.polynomials import IntPolynomial
from repro.combinatorics.stirling import bell_number, stirling2

__all__ = [
    "DestinationMultiset",
    "IntPolynomial",
    "bell_number",
    "binomial",
    "count_partitions_into",
    "falling_factorial",
    "integer_root",
    "iter_set_partitions",
    "iter_set_partitions_into",
    "min_base_exceeding",
    "power_exceeds",
    "stirling2",
]
