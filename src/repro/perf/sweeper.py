"""Deterministic parallel sweep engine.

The engine runs a list of :class:`WorkUnit`\\ s -- top-level callables
plus arguments -- either inline (``jobs=1``, no process spawn, no
pickling) or across a ``ProcessPoolExecutor``.  Three properties make
it safe to drop under every sweep in the repo:

* **deterministic merging** -- results are returned in work-unit order
  regardless of which worker finished first, so a parallel sweep is
  bit-identical to the serial one (each unit must itself be a pure
  function of its arguments, which all sweeps here guarantee by seeding
  their own RNG streams per unit);
* **chunking** -- units are dispatched in contiguous chunks to amortize
  inter-process overhead over many small cells;
* **timing capture** -- every unit's wall time is recorded in its
  :class:`SweepResult`, so benchmarks get per-cell timings for free.

Worker functions must be module-level (picklable); if the platform
refuses to give us a process pool (restricted containers), the engine
degrades to serial execution rather than failing the sweep.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ParallelSweeper", "SweepResult", "WorkUnit", "resolve_jobs", "sweep"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: None or <= 0 means all CPUs."""
    if jobs is None or jobs <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class WorkUnit:
    """One independent cell of a sweep: ``fn(*args, **kwargs)``.

    ``fn`` must be a module-level callable so worker processes can
    unpickle it.  ``unit_id`` keys the deterministic merge; ids must be
    unique within one sweep.
    """

    unit_id: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one work unit: its value plus wall time in seconds."""

    unit_id: Any
    value: Any
    seconds: float


def _run_unit(unit: WorkUnit) -> SweepResult:
    start = time.perf_counter()
    value = unit.fn(*unit.args, **unit.kwargs)
    return SweepResult(unit.unit_id, value, time.perf_counter() - start)


def _run_chunk(units: list[WorkUnit]) -> list[SweepResult]:
    return [_run_unit(unit) for unit in units]


class ParallelSweeper:
    """Fans independent work units across processes; merges deterministically.

    Args:
        jobs: worker processes.  ``1`` (default) runs inline in this
            process with zero spawn/pickle overhead; None or <= 0 uses
            every available CPU.
        chunk_size: units per dispatched task.  Default: enough chunks
            for ~4 tasks per worker, so stragglers rebalance.
    """

    def __init__(self, jobs: int | None = 1, *, chunk_size: int | None = None):
        self.jobs = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def run(self, units: Iterable[WorkUnit]) -> list[SweepResult]:
        """Execute all units; results come back in input order.

        The unit ids additionally key the results (see
        :meth:`run_keyed`), so callers can merge by id instead of
        position when that reads better.
        """
        units = list(units)
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work-unit ids must be unique within a sweep")
        if self.jobs == 1 or len(units) <= 1:
            return [_run_unit(unit) for unit in units]
        chunk = self.chunk_size or max(1, -(-len(units) // (self.jobs * 4)))
        chunks = [units[i : i + chunk] for i in range(0, len(units), chunk)]
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks))
            ) as executor:
                futures = [executor.submit(_run_chunk, c) for c in chunks]
                # Collect in submission order: the merge is positional,
                # never completion-ordered.
                return [result for future in futures for result in future.result()]
        except (OSError, PermissionError):  # pragma: no cover - sandboxed hosts
            return [_run_unit(unit) for unit in units]

    def run_keyed(self, units: Iterable[WorkUnit]) -> dict[Any, SweepResult]:
        """Like :meth:`run` but keyed by unit id."""
        return {result.unit_id: result for result in self.run(units)}

    def map(
        self,
        fn: Callable[..., Any],
        argtuples: Sequence[tuple],
        **kwargs: Any,
    ) -> list[Any]:
        """Apply ``fn`` to each argument tuple; values in input order."""
        units = [
            WorkUnit(unit_id=index, fn=fn, args=tuple(args), kwargs=dict(kwargs))
            for index, args in enumerate(argtuples)
        ]
        return [result.value for result in self.run(units)]


def sweep(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple],
    *,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ParallelSweeper.map`."""
    return ParallelSweeper(jobs, chunk_size=chunk_size).map(fn, argtuples, **kwargs)
