"""Deterministic parallel sweep engine with an adaptive executor.

The engine runs a list of :class:`WorkUnit`\\ s -- top-level callables
plus arguments -- inline, across a ``ProcessPoolExecutor``, or across a
``ThreadPoolExecutor``.  Four properties make it safe to drop under
every sweep in the repo:

* **deterministic merging** -- results are returned in work-unit order
  regardless of which worker finished first, so a parallel sweep is
  bit-identical to the serial one (each unit must itself be a pure
  function of its arguments, which all sweeps here guarantee by seeding
  their own RNG streams per unit);
* **adaptive execution** -- ``jobs="auto"`` resolves to
  ``min(effective CPUs, work units)``, and any plan that a pool cannot
  win (a single effective CPU, one pending unit, or an explicit jobs
  request exceeding the unit count, where spawn overhead dominates)
  falls back to inline serial execution.  The resolved plan is recorded
  in :attr:`ParallelSweeper.last_plan` so benchmarks and sweeps can put
  the executor that actually ran into their results metadata;
* **persistent pools** -- a sweeper reuses its pool across ``run``
  calls (multi-stage sweeps pay the spawn cost once); ``close()`` or
  the context-manager form shuts it down;
* **chunking and timing capture** -- units are dispatched in contiguous
  chunks to amortize inter-process overhead, and every unit's wall time
  is recorded in its :class:`SweepResult`.

``run(units, cache=...)`` additionally consults a
:class:`repro.perf.cache.ResultCache`: units carrying a ``cache_key``
are looked up first and only the misses are dispatched (results are
stored back), which makes repeated and interrupted sweeps incremental.

Worker functions must be module-level (picklable) for the process
executor; if the platform refuses to give us a pool (restricted
containers), the engine degrades to serial execution rather than
failing the sweep.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro import obs as _obs

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from concurrent.futures import Executor

    from repro.perf.cache import ResultCache

__all__ = [
    "ExecutionPlan",
    "ParallelSweeper",
    "SweepResult",
    "WorkUnit",
    "last_plan",
    "resolve_jobs",
    "sweep",
]


def _effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``jobs`` request: None, ``"auto"`` or <= 0 mean all CPUs."""
    if jobs is None or jobs == "auto":
        return _effective_cpus()
    if isinstance(jobs, str):
        raise ValueError(f"jobs must be an int, None or 'auto', got {jobs!r}")
    if jobs <= 0:
        return _effective_cpus()
    return jobs


@dataclass(frozen=True)
class WorkUnit:
    """One independent cell of a sweep: ``fn(*args, **kwargs)``.

    ``fn`` must be a module-level callable so worker processes can
    unpickle it.  ``unit_id`` keys the deterministic merge; ids must be
    unique within one sweep.  ``cache_key`` (optional) is the unit's
    content address in a :class:`~repro.perf.cache.ResultCache`; units
    without one are always executed.
    """

    unit_id: Any
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    cache_key: str | None = None


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one work unit: its value plus wall time in seconds.

    ``cached`` marks results served from a :class:`ResultCache` instead
    of executed (their ``seconds`` is 0.0 -- no work was done).
    """

    unit_id: Any
    value: Any
    seconds: float
    cached: bool = False


@dataclass(frozen=True)
class ExecutionPlan:
    """The executor resolution of one ``run`` call (results metadata).

    Attributes:
        requested_jobs: the caller's ``jobs`` argument, verbatim.
        resolved_jobs: worker count after ``auto``/CPU/unit clamping.
        executor: ``"serial"``, ``"process"`` or ``"thread"`` -- what
            actually ran.
        units: total work units in the sweep.
        dispatched: units actually executed (the rest were cache hits).
        cache_hits: units served from the result cache.
        reason: one-line explanation of a serial fallback ("" when the
            requested parallel plan ran as asked).
    """

    requested_jobs: int | str | None
    resolved_jobs: int
    executor: str
    units: int
    dispatched: int
    cache_hits: int
    reason: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "requested_jobs": self.requested_jobs,
            "resolved_jobs": self.resolved_jobs,
            "executor": self.executor,
            "units": self.units,
            "dispatched": self.dispatched,
            "cache_hits": self.cache_hits,
            "reason": self.reason,
        }

    def to_json(self) -> str:
        """Canonical JSON; inverse of :meth:`from_json`."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        return cls(**json.loads(payload))


#: the most recent plan resolved by any sweeper in this process
_LAST_PLAN: ExecutionPlan | None = None


def last_plan() -> ExecutionPlan | None:
    """The :class:`ExecutionPlan` of the most recent ``run`` in this process."""
    return _LAST_PLAN


def _run_unit(unit: WorkUnit) -> SweepResult:
    start = time.perf_counter()
    value = unit.fn(*unit.args, **unit.kwargs)
    return SweepResult(unit.unit_id, value, time.perf_counter() - start)


def _run_chunk(units: list[WorkUnit]) -> list[SweepResult]:
    return [_run_unit(unit) for unit in units]


def _run_chunk_obs(units: list[WorkUnit]) -> tuple[list[SweepResult], dict[str, Any]]:
    """Chunk runner for worker processes while observability is on.

    A worker process has its own (empty, disabled) obs state, so
    metrics recorded by the units' hook points would be lost.  This
    wrapper enables metrics-only observation around the chunk (tracers
    do not cross the pickle boundary) and ships a registry snapshot
    back for the parent to merge -- each chunk starts from a reset
    registry, so snapshots are per-chunk deltas even on a persistent
    pool worker.
    """
    _obs.REGISTRY.reset()
    was_enabled = _obs.enabled()
    _obs.enable()
    try:
        results = _run_chunk(units)
    finally:
        if not was_enabled:
            _obs.disable()
    return results, _obs.REGISTRY.snapshot()


class ParallelSweeper:
    """Fans independent work units across workers; merges deterministically.

    Args:
        jobs: worker count.  ``1`` (default) runs inline in this process
            with zero spawn/pickle overhead; ``"auto"``, None or <= 0
            resolve to the effective CPU count (clamped to the unit
            count at run time).
        chunk_size: units per dispatched task.  Default: enough chunks
            for ~4 tasks per worker, so stragglers rebalance.
        executor: ``"process"`` (default; true parallelism, arguments
            and results cross a pickle boundary) or ``"thread"``
            (shared-memory workers for workloads that release the GIL
            or block on I/O -- e.g. replay-dominated sweeps reading
            memory-mapped traces).  Serial fallback applies to both.

    The sweeper keeps its pool alive across ``run`` calls; use
    ``close()`` (or the context-manager form) to shut it down.
    """

    def __init__(
        self,
        jobs: int | str | None = 1,
        *,
        chunk_size: int | None = None,
        executor: str = "process",
    ):
        self.requested_jobs = jobs
        self.jobs = resolve_jobs(jobs)
        #: was the jobs request adaptive (auto/all-CPUs) rather than explicit?
        self._auto_jobs = jobs is None or jobs == "auto" or (
            isinstance(jobs, int) and jobs <= 0
        )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if executor not in ("process", "thread"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'process' or 'thread'"
            )
        self.executor = executor
        self.last_plan: ExecutionPlan | None = None
        self._pool: Executor | None = None
        self._pool_workers = 0

    # -- pool lifecycle -----------------------------------------------------

    def _acquire_pool(self, workers: int) -> "Executor":
        """The persistent pool, (re)created when more workers are needed."""
        if self._pool is not None and self._pool_workers >= workers:
            return self._pool
        self.close()
        if self.executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=workers)
        else:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=workers)
        self._pool_workers = workers
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "ParallelSweeper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------

    def _resolve_plan(self, pending: int) -> tuple[int, str, str]:
        """``(workers, executor, reason)`` for ``pending`` executable units."""
        workers = min(self.jobs, pending) if pending else 1
        cpus = _effective_cpus()
        if workers <= 1 or pending <= 1:
            if self.jobs == 1 and not self._auto_jobs:
                reason = ""  # serial was asked for, not fallen back to
            elif pending <= 1:
                reason = (
                    "single pending unit"
                    if pending
                    else "all units served from cache"
                )
            elif cpus == 1:
                reason = "single effective CPU; a pool cannot win"
            else:
                reason = ""
            return 1, "serial", reason
        if cpus == 1:
            return 1, "serial", "single effective CPU; a pool cannot win"
        if not self._auto_jobs and self.jobs > pending:
            return 1, "serial", (
                f"jobs={self.jobs} exceeds {pending} work units; "
                "spawn overhead would dominate"
            )
        return workers, self.executor, ""

    def run(
        self,
        units: Iterable[WorkUnit],
        *,
        cache: "ResultCache | None" = None,
    ) -> list[SweepResult]:
        """Execute all units; results come back in input order.

        The unit ids additionally key the results (see
        :meth:`run_keyed`), so callers can merge by id instead of
        position when that reads better.  With ``cache``, units whose
        ``cache_key`` resolves to a stored entry are served from disk
        (marked ``cached=True``) and only the misses are dispatched;
        executed results carrying a key are stored back.
        """
        global _LAST_PLAN
        units = list(units)
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work-unit ids must be unique within a sweep")

        merged: dict[int, SweepResult] = {}
        if cache is not None:
            for index, unit in enumerate(units):
                if unit.cache_key is None:
                    continue
                hit, value = cache.lookup(unit.cache_key)
                if hit:
                    merged[index] = SweepResult(
                        unit.unit_id, value, 0.0, cached=True
                    )
        pending = [
            (index, unit)
            for index, unit in enumerate(units)
            if index not in merged
        ]

        workers, executor, reason = self._resolve_plan(len(pending))
        self.last_plan = _LAST_PLAN = ExecutionPlan(
            requested_jobs=self.requested_jobs,
            resolved_jobs=workers,
            executor=executor,
            units=len(units),
            dispatched=len(pending),
            cache_hits=len(merged),
            reason=reason,
        )
        if _obs.enabled():
            _obs.inc("sweep.units", len(units))
            _obs.inc("sweep.dispatched", len(pending))
            _obs.inc("sweep.cache_hits", len(merged))

        if executor == "serial":
            executed = [_run_unit(unit) for _, unit in pending]
        else:
            executed = self._run_pooled(
                [unit for _, unit in pending], workers, executor
            )
        if _obs.enabled():
            for result in executed:
                _obs.observe("sweep.unit_seconds", result.seconds)
        for (index, unit), result in zip(pending, executed):
            merged[index] = result
            if cache is not None and unit.cache_key is not None:
                cache.put(unit.cache_key, result.value)
        return [merged[index] for index in range(len(units))]

    def _run_pooled(
        self, units: list[WorkUnit], workers: int, executor: str
    ) -> list[SweepResult]:
        chunk = self.chunk_size or max(1, -(-len(units) // (workers * 4)))
        chunks = [units[i : i + chunk] for i in range(0, len(units), chunk)]
        observing = _obs.enabled()
        # Process workers have their own obs state, so their chunks run
        # under the snapshot-returning wrapper; thread workers share the
        # parent's registry and need no merging.
        ship_snapshots = observing and executor == "process"
        runner = _run_chunk_obs if ship_snapshots else _run_chunk
        try:
            pool = self._acquire_pool(workers)
            submitted = time.perf_counter()
            futures = [pool.submit(runner, c) for c in chunks]
            # Collect in submission order: the merge is positional,
            # never completion-ordered.
            results: list[SweepResult] = []
            for future in futures:
                payload = future.result()
                if ship_snapshots:
                    chunk_results, snapshot = payload
                    _obs.REGISTRY.merge(snapshot)
                else:
                    chunk_results = payload
                if observing:
                    queued = (time.perf_counter() - submitted) - sum(
                        r.seconds for r in chunk_results
                    )
                    _obs.observe("sweep.pool.queue_seconds", max(0.0, queued))
                results.extend(chunk_results)
            return results
        except (OSError, PermissionError):  # pragma: no cover - sandboxed hosts
            self.last_plan = ExecutionPlan(
                requested_jobs=self.requested_jobs,
                resolved_jobs=1,
                executor="serial",
                units=self.last_plan.units if self.last_plan else len(units),
                dispatched=len(units),
                cache_hits=self.last_plan.cache_hits if self.last_plan else 0,
                reason="platform refused a worker pool",
            )
            global _LAST_PLAN
            _LAST_PLAN = self.last_plan
            return [_run_unit(unit) for unit in units]

    def run_keyed(
        self,
        units: Iterable[WorkUnit],
        *,
        cache: "ResultCache | None" = None,
    ) -> dict[Any, SweepResult]:
        """Like :meth:`run` but keyed by unit id."""
        return {result.unit_id: result for result in self.run(units, cache=cache)}

    def run_adaptive(
        self,
        next_units: Callable[[list[SweepResult] | None], Iterable[WorkUnit] | None],
        *,
        cache: "ResultCache | None" = None,
    ) -> list[SweepResult]:
        """Run waves of units until the caller stops enqueueing more.

        The sequential-stopping protocol of :mod:`repro.perf.adaptive`:
        ``next_units(None)`` produces the first wave, every subsequent
        call receives the previous wave's results and returns the next
        wave -- typically one sampling *round* for every cell that has
        not yet converged -- or ``None`` to stop.  An *empty* wave is
        legal and does not stop the loop: it means every unit of that
        round was satisfied elsewhere (e.g. served from a warm result
        cache), and the caller still gets a callback to decide whether
        another round is needed.  All executed results are returned in
        execution order; each wave individually obeys the deterministic
        merge and serial-fallback contracts of :meth:`run`, so an
        adaptive sweep is bit-identical for any ``jobs`` value.
        """
        results: list[SweepResult] = []
        wave = next_units(None)
        while wave is not None:
            executed = self.run(list(wave), cache=cache)
            results.extend(executed)
            wave = next_units(executed)
        return results

    def map(
        self,
        fn: Callable[..., Any],
        argtuples: Sequence[tuple],
        **kwargs: Any,
    ) -> list[Any]:
        """Apply ``fn`` to each argument tuple; values in input order."""
        units = [
            WorkUnit(unit_id=index, fn=fn, args=tuple(args), kwargs=dict(kwargs))
            for index, args in enumerate(argtuples)
        ]
        return [result.value for result in self.run(units)]


def sweep(
    fn: Callable[..., Any],
    argtuples: Sequence[tuple],
    *,
    jobs: int | str | None = 1,
    chunk_size: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """One-shot convenience wrapper around :class:`ParallelSweeper.map`."""
    with ParallelSweeper(jobs, chunk_size=chunk_size) as sweeper:
        return sweeper.map(fn, argtuples, **kwargs)
