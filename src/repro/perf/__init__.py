"""Performance layer: sweep engine, result cache and routing-kernel tools.

Every expensive computation in the reproduction decomposes into
independent work units -- (seed, m, config) cells of the Monte-Carlo
sweeps, adversary seeds, m-candidates of the exact model checker,
benchmark grid points.  :class:`ParallelSweeper` fans those units out
across worker processes (or threads) with chunking and merges the
results deterministically (keyed by work-unit id), so parallel output
is bit-identical to serial output; ``jobs="auto"`` adapts the worker
count to the host and falls back to inline serial execution whenever a
pool cannot win (the resolved :class:`ExecutionPlan` is recorded for
results metadata).

:class:`ResultCache` persists per-cell results content-addressed by
``(config hash, seed, kernel id, code version)`` with atomic writes and
corrupted-entry recovery, making repeated and interrupted sweeps
incremental and resumable (``--cache`` on the CLI).

The third piece is the routing/simulation kernel selection of
:mod:`repro.multistage.routing`: :func:`routing_kernel` /
:func:`set_routing_kernel` pick between the bitmask cover search (the
default), the frozenset reference implementation (the correctness
oracle of the equivalence tests and the ``bench_perf`` baseline), and
``"batched"`` -- bitmask routing plus the lockstep
structure-of-arrays Monte-Carlo engine of :mod:`repro.perf.batch`,
which compiles each seed's traffic stream once and replays it against
every ``m`` value of a sweep in a single pass (common random numbers,
batch-per-process work units, per-replication bit-identity with the
serial simulator).
"""

from repro.multistage.routing import (
    get_routing_kernel,
    routing_kernel,
    set_routing_kernel,
)
from repro.perf.batch import (
    BACKEND_ENV,
    CellOutcome,
    available_backends,
    compile_stream,
    replay_cell,
    resolve_backend,
    simulate_batch,
)
from repro.perf.cache import CODE_VERSION, CacheStats, ResultCache
from repro.perf.sweeper import (
    ExecutionPlan,
    ParallelSweeper,
    SweepResult,
    WorkUnit,
    last_plan,
    resolve_jobs,
    sweep,
)

__all__ = [
    "BACKEND_ENV",
    "CODE_VERSION",
    "CacheStats",
    "CellOutcome",
    "ExecutionPlan",
    "ParallelSweeper",
    "ResultCache",
    "SweepResult",
    "WorkUnit",
    "available_backends",
    "compile_stream",
    "get_routing_kernel",
    "last_plan",
    "replay_cell",
    "resolve_backend",
    "resolve_jobs",
    "routing_kernel",
    "set_routing_kernel",
    "simulate_batch",
    "sweep",
]
