"""Performance layer: sweep engine, result cache and routing-kernel tools.

Every expensive computation in the reproduction decomposes into
independent work units -- (seed, m, config) cells of the Monte-Carlo
sweeps, adversary seeds, m-candidates of the exact model checker,
benchmark grid points.  :class:`ParallelSweeper` fans those units out
across worker processes (or threads) with chunking and merges the
results deterministically (keyed by work-unit id), so parallel output
is bit-identical to serial output; ``jobs="auto"`` adapts the worker
count to the host and falls back to inline serial execution whenever a
pool cannot win (the resolved :class:`ExecutionPlan` is recorded for
results metadata).

:class:`ResultCache` persists per-cell results content-addressed by
``(config hash, seed, kernel id, code version)`` with atomic writes and
corrupted-entry recovery, making repeated and interrupted sweeps
incremental and resumable (``--cache`` on the CLI).

The third piece is the bitmask routing kernel of
:mod:`repro.multistage.routing`; :func:`routing_kernel` /
:func:`set_routing_kernel` select between it and the frozenset
reference implementation (used by ``benchmarks/bench_perf.py`` to track
the speedup and by the equivalence tests).
"""

from repro.multistage.routing import (
    get_routing_kernel,
    routing_kernel,
    set_routing_kernel,
)
from repro.perf.cache import CODE_VERSION, CacheStats, ResultCache
from repro.perf.sweeper import (
    ExecutionPlan,
    ParallelSweeper,
    SweepResult,
    WorkUnit,
    last_plan,
    resolve_jobs,
    sweep,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "ExecutionPlan",
    "ParallelSweeper",
    "ResultCache",
    "SweepResult",
    "WorkUnit",
    "get_routing_kernel",
    "last_plan",
    "resolve_jobs",
    "routing_kernel",
    "set_routing_kernel",
    "sweep",
]
