"""Performance layer: parallel sweep engine and routing-kernel tools.

Every expensive computation in the reproduction decomposes into
independent work units -- (seed, m, config) cells of the Monte-Carlo
sweeps, adversary seeds, m-candidates of the exact model checker,
benchmark grid points.  :class:`ParallelSweeper` fans those units out
across worker processes with chunking and merges the results
deterministically (keyed by work-unit id), so parallel output is
bit-identical to serial output; ``jobs=1`` bypasses process spawn
entirely.

The second half of the layer is the bitmask routing kernel of
:mod:`repro.multistage.routing`; :func:`routing_kernel` /
:func:`set_routing_kernel` select between it and the frozenset
reference implementation (used by ``benchmarks/bench_perf.py`` to track
the speedup and by the equivalence tests).
"""

from repro.multistage.routing import (
    get_routing_kernel,
    routing_kernel,
    set_routing_kernel,
)
from repro.perf.sweeper import (
    ParallelSweeper,
    SweepResult,
    WorkUnit,
    resolve_jobs,
    sweep,
)

__all__ = [
    "ParallelSweeper",
    "SweepResult",
    "WorkUnit",
    "get_routing_kernel",
    "resolve_jobs",
    "routing_kernel",
    "set_routing_kernel",
    "sweep",
]
