"""Lockstep structure-of-arrays Monte-Carlo engine (``batched`` kernel).

:func:`repro.analysis.montecarlo._traffic_cell` replays one traffic
stream against one :class:`~repro.multistage.network.ThreeStageNetwork`;
a sweep over ``m x seeds`` cells therefore pays the full per-event
Python overhead (object construction, admission validation, cache
bookkeeping) once per cell.  This module removes that multiplier two
ways:

* **common random numbers** -- the traffic stream depends only on
  ``(model, n*r, k, steps, seed, max_fanout)``, never on ``m``, so
  :func:`compile_stream` pre-generates each seed's stream *once* as a
  flat list of integer ops and every ``m`` value replays the same
  stream (which also shrinks the cross-``m`` variance of the curve);
* **lockstep replay** -- :func:`simulate_batch` advances all B
  replications of a seed through each event together, holding the
  fabric state as packed integer bitplanes (middle-switch occupancy,
  per-fiber wavelength masks, converter pools), so the per-event work
  is a handful of mask operations per replication instead of a network
  object call stack.

The replay reproduces the serial simulator *bit for bit*: the traffic
generator's RNG stream, the greedy/exact cover search of
:func:`repro.multistage.routing.find_cover_bits`, first-fit wavelength
assignment, ascending-middle allocation order and the
``explain_block`` cause classification are all replicated exactly, and
the property tests plus ``bench_perf.py`` assert per-replication
equality of ``(attempts, blocked)`` and causes against the bitmask
kernel.

Two state backends share the event loop:

* ``python`` -- nested lists of unbounded ints (bitplanes); no
  dependencies, and the fastest backend on CPython for paper-scale
  networks, so it is what ``auto`` resolves to;
* ``numpy`` -- the same masks packed into ``int64`` structure-of-arrays
  (one row per replication), which vectorizes the per-event
  availability/reachability precomputation across the batch; it
  requires ``m, r, k <= 62`` (one machine word) and NumPy installed.

``WDM_REPRO_BATCH_BACKEND`` overrides ``auto`` resolution.  The engine
is wired in as ``routing_kernel("batched")``: single-request routing is
untouched (identical to ``bitmask``), but the Monte-Carlo estimators
dispatch whole seed-batches here instead of one cell at a time.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro import obs as _obs
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.multistage.routing import find_cover_bits, iter_bits
from repro.switching.generators import dynamic_traffic

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "CellOutcome",
    "available_backends",
    "compile_stream",
    "replay_cell",
    "resolve_backend",
    "simulate_batch",
]

#: environment override for ``backend="auto"`` resolution.
BACKEND_ENV = "WDM_REPRO_BATCH_BACKEND"
#: selectable state backends (``auto`` resolves to one of these).
BACKENDS = ("python", "numpy")
#: widest mask the numpy backend can pack into one signed int64 word.
_WORD_BITS = 62

_SETUP = 1
_TEARDOWN = 0


def available_backends() -> tuple[str, ...]:
    """The state backends usable in this process."""
    return BACKENDS if _np is not None else ("python",)


def resolve_backend(backend: str = "auto", *, m_max: int, r: int, k: int) -> str:
    """Resolve a backend request to a concrete backend name.

    ``auto`` honours the ``WDM_REPRO_BATCH_BACKEND`` environment
    variable, then defaults to ``python`` -- the int-bitplane replay
    beats the int64 structure-of-arrays on CPython for paper-scale
    networks (the numpy backend's per-replication cover search still
    crosses the scalar boundary on every event).  Asking for ``numpy``
    explicitly raises if NumPy is missing or the configuration does not
    fit the 62-bit word gate.
    """
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "auto"
    if backend == "auto":
        if _np is not None and max(m_max, r, k) <= _WORD_BITS:
            # Either backend is valid here; python wins on CPython (see
            # EXPERIMENTS.md P4), so auto picks it even with numpy around.
            return "python"
        return "python"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown batch backend {backend!r}; choose from "
            f"('auto', 'python', 'numpy')"
        )
    if backend == "numpy":
        if _np is None:
            raise ValueError(
                "batch backend 'numpy' requested but numpy is not installed"
            )
        if max(m_max, r, k) > _WORD_BITS:
            raise ValueError(
                f"batch backend 'numpy' packs masks into int64 words and "
                f"needs m, r, k <= {_WORD_BITS}; got m={m_max}, r={r}, k={k}"
            )
    return backend


def compile_stream(
    model: MulticastModel,
    n: int,
    r: int,
    k: int,
    steps: int,
    seed: int,
    max_fanout: int | None = None,
) -> list[tuple[int, int, int, int, int]]:
    """Pre-generate one seed's traffic stream as flat replay ops.

    The generator's own endpoint bookkeeping is independent of the
    fabric (blocked setups keep their endpoints busy until teardown),
    so the stream -- and hence this compilation -- depends only on
    ``(model, n*r, k, steps, seed, max_fanout)``: one compile serves
    every ``m`` of a sweep.  Each op is
    ``(tag, connection_id, input_module, source_wavelength, dest_mask)``
    with ``tag`` 1 for setup and 0 for teardown (``dest_mask`` is a
    bitmask over output modules; teardown ops carry the setup's module
    and wavelength so releases need no lookup).  Every setup is a
    *guaranteed-legal* addition for the same reason, so the replay can
    skip admission validation entirely.
    """
    rng = random.Random(seed)
    ops: list[tuple[int, int, int, int, int]] = []
    for event in dynamic_traffic(
        model, n * r, k, steps=steps, seed=rng, max_fanout=max_fanout
    ):
        source = event.connection.source
        g = source.port // n
        if event.kind == "setup":
            dest_mask = 0
            for destination in event.connection.destinations:
                dest_mask |= 1 << (destination.port // n)
            ops.append(
                (_SETUP, event.connection_id, g, source.wavelength, dest_mask)
            )
        else:
            ops.append(
                (_TEARDOWN, event.connection_id, g, source.wavelength, 0)
            )
    return ops


@dataclass(frozen=True)
class CellOutcome:
    """One replication's result, with optional blocking causes."""

    m: int
    attempts: int
    blocked: int
    #: per blocked request (in stream order) the ``explain_block``-shaped
    #: cause dict; empty unless ``record_causes=True``.
    causes: tuple[dict, ...] = ()


class _Replication:
    """Mutable per-replication accumulator for one lockstep replay."""

    __slots__ = ("blocked", "releases", "kind_counts", "causes")

    def __init__(self) -> None:
        self.blocked = 0
        self.releases = 0
        self.kind_counts: dict[str, int] = {}
        self.causes: list[dict] = []


def _classify(avail: int, coverable: dict[int, int], dest_mask: int, msw_dominant: bool) -> str:
    """The ``explain_block`` cause kind, from the replay's own masks."""
    if avail == 0:
        return "saturated_wavelength" if msw_dominant else "converter_exhaustion"
    union = 0
    for reach in coverable.values():
        union |= reach
    if dest_mask & ~union:
        return "full_middles"
    return "no_cover"


def _cause_dict(
    x: int,
    g: int,
    sw: int,
    blocked_mask: int,
    avail: int,
    coverable: dict[int, int],
    dest_mask: int,
    msw_dominant: bool,
) -> dict:
    """The full ``explain_block`` evidence dict for one blocked setup."""
    per_destination = []
    reachable_union = 0
    for p in iter_bits(dest_mask):
        middles = 0
        for j, reach in coverable.items():
            if reach >> p & 1:
                middles |= 1 << j
        per_destination.append([p, middles])
        if middles:
            reachable_union |= 1 << p
    unreachable = dest_mask & ~reachable_union
    if avail == 0:
        kind = "saturated_wavelength" if msw_dominant else "converter_exhaustion"
    elif unreachable:
        kind = "full_middles"
    else:
        kind = "no_cover"
    return {
        "kind": kind,
        "x": x,
        "input_module": g,
        "source_wavelength": sw,
        "failed_middles_mask": 0,
        "first_stage_blocked_mask": blocked_mask,
        "available_middles_mask": avail,
        "destination_modules": list(iter_bits(dest_mask)),
        "unreachable_modules": list(iter_bits(unreachable)),
        "per_destination": per_destination,
    }


def _record_block(
    rep: _Replication,
    cid: int,
    dropped: set[int],
    want_kinds: bool,
    want_causes: bool,
    x: int,
    g: int,
    sw: int,
    blocked_mask: int,
    avail: int,
    coverable: dict[int, int],
    dest_mask: int,
    msw_dominant: bool,
) -> None:
    rep.blocked += 1
    dropped.add(cid)
    if want_kinds:
        if want_causes:
            cause = _cause_dict(
                x, g, sw, blocked_mask, avail, coverable, dest_mask, msw_dominant
            )
            rep.causes.append(cause)
            kind = cause["kind"]
        else:
            kind = _classify(avail, coverable, dest_mask, msw_dominant)
        rep.kind_counts[kind] = rep.kind_counts.get(kind, 0) + 1


def _replay_msw_dominant_python(
    ops: list[tuple[int, int, int, int, int]],
    m_values: list[int],
    r: int,
    k: int,
    x: int,
    want_kinds: bool,
    want_causes: bool,
) -> tuple[int, list[_Replication]]:
    """Lockstep replay, MSW-dominant fabric, int-bitplane state.

    Per replication ``b`` the whole fabric is two bitplanes -- the
    MSW-dominant construction pins every internal hop to the source
    wavelength, so occupancy is fully described by
    ``in_busy[b][g][w]`` (middle switches whose first-stage fiber from
    input module ``g`` carries ``w``) and ``out_busy[b][j][w]`` (output
    modules whose second-stage fiber from middle ``j`` carries ``w``).
    These are exactly the network's ``_in_mid_busy``/``_mid_out_busy``
    caches, so availability and reachability reads match the serial
    simulator mask for mask.
    """
    batch = len(m_values)
    replications = [_Replication() for _ in range(batch)]
    all_masks = [(1 << m) - 1 for m in m_values]
    in_busy = [[[0] * k for _ in range(r)] for _ in range(batch)]
    out_busy = [[[0] * k for _ in range(m)] for m in m_values]
    live: list[dict[int, tuple]] = [{} for _ in range(batch)]
    dropped: list[set[int]] = [set() for _ in range(batch)]
    attempts = 0
    indices = range(batch)
    for op in ops:
        tag, cid, g, sw, dest_mask = op
        if tag:
            attempts += 1
            for b in indices:
                row = in_busy[b][g]
                busy = row[sw]
                avail = all_masks[b] & ~busy
                out = out_busy[b]
                cover = None
                coverable: dict[int, int] = {}
                if avail:
                    scan = avail
                    while scan:
                        low = scan & -scan
                        scan ^= low
                        j = low.bit_length() - 1
                        reach = dest_mask & ~out[j][sw]
                        if reach == dest_mask:
                            # One middle reaches everything: greedy picks
                            # the lowest such j with the full gain --
                            # identical to find_cover_bits, minus the call.
                            cover = {j: dest_mask}
                            break
                        if reach:
                            coverable[j] = reach
                    else:
                        if coverable:
                            cover = find_cover_bits(dest_mask, coverable, x)
                if cover is None:
                    _record_block(
                        replications[b], cid, dropped[b], want_kinds,
                        want_causes, x, g, sw, busy, avail, coverable,
                        dest_mask, True,
                    )
                else:
                    branches = []
                    for j in sorted(cover):
                        assigned = cover[j]
                        busy |= 1 << j
                        out[j][sw] |= assigned
                        branches.append((j, assigned))
                    row[sw] = busy
                    live[b][cid] = tuple(branches)
        else:
            for b in indices:
                gone = dropped[b]
                if cid in gone:
                    gone.remove(cid)
                    continue
                branches = live[b].pop(cid)
                row = in_busy[b][g]
                out = out_busy[b]
                busy = row[sw]
                for j, assigned in branches:
                    busy &= ~(1 << j)
                    out[j][sw] &= ~assigned
                row[sw] = busy
                replications[b].releases += 1
    return attempts, replications


def _replay_maw_dominant_python(
    ops: list[tuple[int, int, int, int, int]],
    m_values: list[int],
    r: int,
    k: int,
    x: int,
    model: MulticastModel,
    want_kinds: bool,
    want_causes: bool,
) -> tuple[int, list[_Replication]]:
    """Lockstep replay, MAW-dominant fabric, int-bitplane state.

    MAW-dominant middles convert freely, so a first-stage fiber blocks
    only when *all* ``k`` wavelengths are busy; the state per
    replication is the per-fiber wavelength masks ``in_wave[b][g][j]``
    / ``out_wave[b][j][p]`` with their aggregated full-fiber bitplanes
    (the network's ``_in_mid_full``/``_mid_out_full`` caches).  Under
    the MSW endpoint model the delivery wavelength is pinned to the
    source's, so ``out_busy[b][j][w]`` (the ``_mid_out_busy`` cache) is
    maintained too and drives reachability; otherwise reachability is
    just not-full.  Wavelength picks replicate first-fit (lowest free
    bit), the Monte-Carlo networks' policy.
    """
    batch = len(m_values)
    replications = [_Replication() for _ in range(batch)]
    all_masks = [(1 << m) - 1 for m in m_values]
    k_full = (1 << k) - 1
    model_msw = model is MulticastModel.MSW
    in_wave = [[[0] * m for _ in range(r)] for m in m_values]
    in_full = [[0] * r for _ in range(batch)]
    out_wave = [[[0] * r for _ in range(m)] for m in m_values]
    out_full = [[0] * m for m in m_values]
    out_busy = [[[0] * k for _ in range(m)] for m in m_values]
    live: list[dict[int, tuple]] = [{} for _ in range(batch)]
    dropped: list[set[int]] = [set() for _ in range(batch)]
    attempts = 0
    indices = range(batch)
    for op in ops:
        tag, cid, g, sw, dest_mask = op
        if tag:
            attempts += 1
            for b in indices:
                full_row = in_full[b]
                blocked_mask = full_row[g]
                avail = all_masks[b] & ~blocked_mask
                cover = None
                coverable: dict[int, int] = {}
                if avail:
                    busy_planes = out_busy[b]
                    full_plane = out_full[b]
                    scan = avail
                    while scan:
                        low = scan & -scan
                        scan ^= low
                        j = low.bit_length() - 1
                        if model_msw:
                            reach = dest_mask & ~busy_planes[j][sw]
                        else:
                            reach = dest_mask & ~full_plane[j]
                        if reach == dest_mask:
                            cover = {j: dest_mask}
                            break
                        if reach:
                            coverable[j] = reach
                    else:
                        if coverable:
                            cover = find_cover_bits(dest_mask, coverable, x)
                if cover is None:
                    _record_block(
                        replications[b], cid, dropped[b], want_kinds,
                        want_causes, x, g, sw, blocked_mask, avail,
                        coverable, dest_mask, False,
                    )
                else:
                    waves = in_wave[b][g]
                    branches = []
                    for j in sorted(cover):
                        free = k_full & ~waves[j]
                        in_w = (free & -free).bit_length() - 1
                        waves[j] |= 1 << in_w
                        if waves[j] == k_full:
                            full_row[g] |= 1 << j
                        fiber = out_wave[b][j]
                        deliveries = []
                        assigned = cover[j]
                        while assigned:
                            low = assigned & -assigned
                            assigned ^= low
                            p = low.bit_length() - 1
                            if model_msw:
                                out_w = sw
                            else:
                                free_out = k_full & ~fiber[p]
                                out_w = (free_out & -free_out).bit_length() - 1
                            fiber[p] |= 1 << out_w
                            if fiber[p] == k_full:
                                out_full[b][j] |= 1 << p
                            out_busy[b][j][out_w] |= 1 << p
                            deliveries.append((p, out_w))
                        branches.append((j, in_w, tuple(deliveries)))
                    live[b][cid] = tuple(branches)
        else:
            for b in indices:
                gone = dropped[b]
                if cid in gone:
                    gone.remove(cid)
                    continue
                branches = live[b].pop(cid)
                waves = in_wave[b][g]
                full_row = in_full[b]
                for j, in_w, deliveries in branches:
                    if waves[j] == k_full:
                        full_row[g] &= ~(1 << j)
                    waves[j] &= ~(1 << in_w)
                    fiber = out_wave[b][j]
                    for p, out_w in deliveries:
                        if fiber[p] == k_full:
                            out_full[b][j] &= ~(1 << p)
                        fiber[p] &= ~(1 << out_w)
                        out_busy[b][j][out_w] &= ~(1 << p)
                replications[b].releases += 1
    return attempts, replications


def _replay_numpy(
    ops: list[tuple[int, int, int, int, int]],
    m_values: list[int],
    r: int,
    k: int,
    x: int,
    construction: Construction,
    model: MulticastModel,
    want_kinds: bool,
    want_causes: bool,
) -> tuple[int, list[_Replication]]:
    """Lockstep replay over int64 structure-of-arrays state.

    Same event loop and bit-identical decisions as the python backend;
    the batch dimension is the leading axis of every array, so the
    per-event availability and reachability masks for *all*
    replications come out of two vectorized expressions (then the cover
    search itself runs per replication on plain ints via
    ``.tolist()``).  Gated to ``m, r, k <= 62`` so every mask fits one
    signed word.
    """
    np = _np
    batch = len(m_values)
    m_max = max(m_values)
    replications = [_Replication() for _ in range(batch)]
    msw_dominant = construction is Construction.MSW_DOMINANT
    model_msw = model is MulticastModel.MSW
    k_full = (1 << k) - 1
    all_masks = [(1 << m) - 1 for m in m_values]
    all_vec = np.array(all_masks, dtype=np.int64)
    if msw_dominant:
        in_busy = np.zeros((batch, r, k), dtype=np.int64)
        out_busy = np.zeros((batch, m_max, k), dtype=np.int64)
    else:
        in_wave = np.zeros((batch, r, m_max), dtype=np.int64)
        in_full = np.zeros((batch, r), dtype=np.int64)
        out_wave = np.zeros((batch, m_max, r), dtype=np.int64)
        out_full = np.zeros((batch, m_max), dtype=np.int64)
        out_busy = np.zeros((batch, m_max, k), dtype=np.int64)
    live: list[dict[int, tuple]] = [{} for _ in range(batch)]
    dropped: list[set[int]] = [set() for _ in range(batch)]
    attempts = 0
    for op in ops:
        tag, cid, g, sw, dest_mask = op
        if tag:
            attempts += 1
            if msw_dominant:
                blocked_vec = in_busy[:, g, sw]
                reach_rows = (dest_mask & ~out_busy[:, :, sw]).tolist()
            else:
                blocked_vec = in_full[:, g]
                if model_msw:
                    reach_rows = (dest_mask & ~out_busy[:, :, sw]).tolist()
                else:
                    reach_rows = (dest_mask & ~out_full).tolist()
            blocked_list = blocked_vec.tolist()
            avail_list = (all_vec & ~blocked_vec).tolist()
            for b in range(batch):
                avail = avail_list[b]
                row = reach_rows[b]
                cover = None
                coverable: dict[int, int] = {}
                if avail:
                    scan = avail
                    while scan:
                        low = scan & -scan
                        scan ^= low
                        j = low.bit_length() - 1
                        reach = row[j]
                        if reach == dest_mask:
                            cover = {j: dest_mask}
                            break
                        if reach:
                            coverable[j] = reach
                    else:
                        if coverable:
                            cover = find_cover_bits(dest_mask, coverable, x)
                if cover is None:
                    _record_block(
                        replications[b], cid, dropped[b], want_kinds,
                        want_causes, x, g, sw, blocked_list[b], avail,
                        coverable, dest_mask, msw_dominant,
                    )
                    continue
                if msw_dominant:
                    branches = []
                    busy = blocked_list[b]
                    for j in sorted(cover):
                        assigned = cover[j]
                        busy |= 1 << j
                        out_busy[b, j, sw] |= assigned
                        branches.append((j, assigned))
                    in_busy[b, g, sw] = busy
                    live[b][cid] = tuple(branches)
                else:
                    branches = []
                    for j in sorted(cover):
                        waves = int(in_wave[b, g, j])
                        free = k_full & ~waves
                        in_w = (free & -free).bit_length() - 1
                        waves |= 1 << in_w
                        in_wave[b, g, j] = waves
                        if waves == k_full:
                            in_full[b, g] |= 1 << j
                        deliveries = []
                        assigned = cover[j]
                        while assigned:
                            low = assigned & -assigned
                            assigned ^= low
                            p = low.bit_length() - 1
                            fiber = int(out_wave[b, j, p])
                            if model_msw:
                                out_w = sw
                            else:
                                free_out = k_full & ~fiber
                                out_w = (free_out & -free_out).bit_length() - 1
                            fiber |= 1 << out_w
                            out_wave[b, j, p] = fiber
                            if fiber == k_full:
                                out_full[b, j] |= 1 << p
                            out_busy[b, j, out_w] |= 1 << p
                            deliveries.append((p, out_w))
                        branches.append((j, in_w, tuple(deliveries)))
                    live[b][cid] = tuple(branches)
        else:
            for b in range(batch):
                gone = dropped[b]
                if cid in gone:
                    gone.remove(cid)
                    continue
                branches = live[b].pop(cid)
                if msw_dominant:
                    busy = int(in_busy[b, g, sw])
                    for j, assigned in branches:
                        busy &= ~(1 << j)
                        out_busy[b, j, sw] &= ~assigned
                    in_busy[b, g, sw] = busy
                else:
                    for j, in_w, deliveries in branches:
                        waves = int(in_wave[b, g, j])
                        if waves == k_full:
                            in_full[b, g] &= ~(1 << j)
                        in_wave[b, g, j] = waves & ~(1 << in_w)
                        for p, out_w in deliveries:
                            fiber = int(out_wave[b, j, p])
                            if fiber == k_full:
                                out_full[b, j] &= ~(1 << p)
                            out_wave[b, j, p] = fiber & ~(1 << out_w)
                            out_busy[b, j, out_w] &= ~(1 << p)
                replications[b].releases += 1
    return attempts, replications


def _simulate(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    seed: int,
    m_values: list[int],
    backend: str,
    record_causes: bool,
) -> tuple[int, list[_Replication]]:
    """Compile seed ``seed`` once and replay it against every ``m``."""
    legal_x = valid_x_range(n, r)
    if x not in legal_x:
        raise ValueError(
            f"x={x} outside the legal range "
            f"[{legal_x[0]}, {legal_x[-1]}] for n={n}, r={r}"
        )
    if not m_values:
        return 0, []
    for m in m_values:
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
    backend = resolve_backend(backend, m_max=max(m_values), r=r, k=k)
    want_kinds = record_causes or _obs.enabled()
    ops = compile_stream(model, n, r, k, steps, seed, max_fanout)
    if backend == "numpy":
        attempts, replications = _replay_numpy(
            ops, m_values, r, k, x, construction, model,
            want_kinds, record_causes,
        )
    elif construction is Construction.MSW_DOMINANT:
        attempts, replications = _replay_msw_dominant_python(
            ops, m_values, r, k, x, want_kinds, record_causes
        )
    else:
        attempts, replications = _replay_maw_dominant_python(
            ops, m_values, r, k, x, model, want_kinds, record_causes
        )
    if _obs.enabled():
        # Aggregate increments, guarded on nonzero so the counter *set*
        # (not just the totals) matches a serial run's -- serial counters
        # only exist once incremented.
        for rep in replications:
            _obs.inc("mc.cells")
            if attempts:
                _obs.inc("net.admit.attempts", attempts)
            admitted = attempts - rep.blocked
            if admitted:
                _obs.inc("net.admit.admitted", admitted)
            if rep.blocked:
                _obs.inc("net.admit.blocked", rep.blocked)
            for kind in sorted(rep.kind_counts):
                _obs.inc(f"net.block.cause.{kind}", rep.kind_counts[kind])
            if rep.releases:
                _obs.inc("net.release", rep.releases)
    return attempts, replications


def simulate_batch(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    seed: int,
    m_values: tuple[int, ...] | list[int],
    backend: str = "auto",
) -> list[tuple[int, tuple[int, int]]]:
    """All of one seed's ``(m, (attempts, blocked))`` cells, in lockstep.

    This is the work-unit function the Monte-Carlo estimators hand to
    :class:`repro.perf.ParallelSweeper` under the ``batched`` kernel
    (batch-per-process instead of cell-per-process): module-level and
    picklable, and every returned cell is bit-identical to
    ``_traffic_cell`` run serially with the same arguments.
    """
    attempts, replications = _simulate(
        n, r, k, construction, model, x, steps, max_fanout, seed,
        list(m_values), backend, record_causes=False,
    )
    return [
        (m, (attempts, rep.blocked))
        for m, rep in zip(m_values, replications)
    ]


def replay_cell(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int,
    seed: int,
    max_fanout: int | None = None,
    backend: str = "auto",
    record_causes: bool = False,
) -> CellOutcome:
    """One ``(m, seed)`` replication through the batch engine.

    With ``record_causes=True`` the outcome carries, for each blocked
    setup in stream order, the same cause dict
    :meth:`~repro.multistage.network.ThreeStageNetwork.explain_block`
    would produce at that event -- the hook the equivalence property
    tests compare against the serial simulator.
    """
    attempts, replications = _simulate(
        n, r, k, construction, model, x, steps, max_fanout, seed, [m],
        backend, record_causes=record_causes,
    )
    rep = replications[0]
    return CellOutcome(
        m=m,
        attempts=attempts,
        blocked=rep.blocked,
        causes=tuple(rep.causes),
    )
