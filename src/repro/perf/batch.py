"""Lockstep structure-of-arrays Monte-Carlo engine (``batched`` kernel).

:func:`repro.analysis.montecarlo._traffic_cell` replays one traffic
stream against one :class:`~repro.multistage.network.ThreeStageNetwork`;
a sweep over ``m x seeds`` cells therefore pays the full per-event
Python overhead (object construction, admission validation, cache
bookkeeping) once per cell.  This module removes that multiplier two
ways:

* **common random numbers** -- the traffic stream depends only on
  ``(model, n*r, k, steps, seed, max_fanout)``, never on ``m``, so
  :func:`compile_stream` pre-generates each seed's stream *once* as a
  flat list of integer ops and every ``m`` value replays the same
  stream (which also shrinks the cross-``m`` variance of the curve);
* **lockstep replay** -- :func:`simulate_batch` advances all B
  replications of a seed through each event together, holding the
  fabric state as packed integer bitplanes (middle-switch occupancy,
  per-fiber wavelength masks, converter pools), so the per-event work
  is a handful of mask operations per replication instead of a network
  object call stack.

The replay reproduces the serial simulator *bit for bit* because both
run the same code: one backend-parameterized event loop
(:func:`_replay`) drives the shared admission kernels of
:mod:`repro.engine` (``probe_cover`` for routing, ``block_cause`` for
``explain_block``-identical causes) against a
:class:`~repro.engine.state.FabricState` -- the traffic generator's RNG
stream, first-fit wavelength assignment and ascending-middle allocation
order are all properties of those kernels, and the property tests plus
``bench_perf.py`` assert per-replication equality of ``(attempts,
blocked)`` and causes against the bitmask kernel.

The state backends (``python`` int bitplanes, optional ``numpy`` int64
structure-of-arrays, and the fused ``numba`` backend -- the numpy-based
pair packing masks wider than
:data:`~repro.engine.backends.NUMPY_WORD_BITS` bits into multi-word
planes per :class:`~repro.engine.planes.PlaneLayout`) live in
:mod:`repro.engine.state` / :mod:`repro.engine.fused` behind the
:mod:`repro.engine.backends` registry; ``auto`` prefers ``numba`` when
importable (at any plane width), else ``python``, and
``WDM_REPRO_BATCH_BACKEND`` overrides.  For the fused backend the
per-event loop is bypassed entirely: :func:`lower_stream` flattens the
compiled stream to int64 arrays (dest masks become ``[events, W]``
word columns when the module family is wider than one word) and
:meth:`~repro.engine.fused.FusedState.replay_ops` executes the whole
replay in one ``@njit`` kernel -- same decisions, bit-identical counts
and causes.
The engine is wired in as ``routing_kernel("batched")``: single-request
routing is untouched (identical to ``bitmask``), but the Monte-Carlo
estimators dispatch whole seed-batches here instead of one cell at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs as _obs
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.engine.backends import (
    BACKEND_ENV,
    BACKENDS,
    available_backends,
    make_state,
    resolve_backend,
)
from repro.engine.fabrics import get_fabric
from repro.engine.fused import FusedReplay
from repro.engine.geometry import FabricGeometry
from repro.engine.kernel import block_cause, classify_kind, probe_cover
from repro.engine.planes import WORD_BITS as _WORD_BITS
from repro.engine.planes import WORD_MASK as _WORD_MASK
from repro.engine.state import FabricState
from repro.switching.generators import dynamic_traffic, stream_rng

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.workloads.base import WorkloadConfig

try:  # NumPy is optional; only the fused lowering needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "CellOutcome",
    "LoweredStream",
    "available_backends",
    "compile_stream",
    "lower_stream",
    "replay_cell",
    "resolve_backend",
    "simulate_batch",
]

_SETUP = 1
_TEARDOWN = 0


def compile_stream(
    model: MulticastModel,
    n: int,
    r: int,
    k: int,
    steps: int,
    seed: int,
    max_fanout: int | None = None,
    antithetic: bool = False,
    workload: "WorkloadConfig | None" = None,
) -> list[tuple[int, int, int, int, int]]:
    """Pre-generate one seed's traffic stream as flat replay ops.

    The generator's own endpoint bookkeeping is independent of the
    fabric (blocked setups keep their endpoints busy until teardown),
    so the stream -- and hence this compilation -- depends only on
    ``(model, n*r, k, steps, seed, max_fanout, antithetic)``: one
    compile serves every ``m`` of a sweep.  With ``antithetic=True``
    the stream is generated from the seed's antithetic mirror
    (:func:`repro.switching.generators.stream_rng`) -- because the
    variance-reduction seam sits here, in the stream compiler, every
    kernel and backend that replays compiled streams gets antithetic
    sampling for free.  Each op is
    ``(tag, connection_id, input_module, source_wavelength, dest_mask)``
    with ``tag`` 1 for setup and 0 for teardown (``dest_mask`` is a
    bitmask over output modules; teardown ops carry the setup's module
    and wavelength so releases need no lookup).  Every setup is a
    *guaranteed-legal* addition for the same reason, so the replay can
    skip admission validation entirely.

    ``workload`` swaps in a registered traffic model from
    :mod:`repro.workloads` (None keeps the uniform generator, the
    historical behaviour): because this compiler is the one producer of
    replay ops, a workload plugged in here automatically reaches every
    kernel and backend -- the stream contract, not the generator, is
    the interface.  Callers must mix ``workload.token()`` into any key
    derived from the stream.
    """
    rng = stream_rng(seed, antithetic)
    if workload is None:
        events = dynamic_traffic(
            model, n * r, k, steps=steps, seed=rng, max_fanout=max_fanout
        )
    else:
        events = workload.events(
            model, n * r, k, steps=steps, rng=rng, max_fanout=max_fanout
        )
    ops: list[tuple[int, int, int, int, int]] = []
    for event in events:
        source = event.connection.source
        g = source.port // n
        if event.kind == "setup":
            dest_mask = 0
            for destination in event.connection.destinations:
                dest_mask |= 1 << (destination.port // n)
            ops.append(
                (_SETUP, event.connection_id, g, source.wavelength, dest_mask)
            )
        else:
            ops.append(
                (_TEARDOWN, event.connection_id, g, source.wavelength, 0)
            )
    return ops


@dataclass(frozen=True)
class LoweredStream:
    """One compiled stream lowered to flat int64 arrays (fused form).

    The array program every model (MSW/MSDW/MAW) and both constructions
    compile to: per-event ``tag``/``g``/``sw``/``dest`` columns plus
    ``slot``, the dense connection index (one slot per connection id,
    shared by its setup and teardown ops) that lets the fused kernel
    store live branches in fixed-shape arrays instead of dicts.
    ``dest`` is 1-D int64 in the historical single-word layout
    (``r_words == 1``) and ``[events, r_words]`` little-endian word
    columns when the output-module family is wider than one word.
    Satisfies :class:`repro.engine.fused.LoweredOps`.
    """

    tag: object
    slot: object
    g: object
    sw: object
    dest: object
    n_slots: int
    n_setups: int
    r_words: int = 1


def lower_stream(
    ops: list[tuple[int, int, int, int, int]],
    r_words: int = 1,
) -> LoweredStream:
    """Lower :func:`compile_stream` ops to the fused kernel's arrays.

    ``r_words`` is the output-module mask family's plane width
    (:attr:`~repro.engine.planes.PlaneLayout.r_words`): 1 keeps the
    historical 1-D ``dest`` column, wider splits each dest mask into
    ``[events, r_words]`` little-endian int64 words.
    """
    if _np is None:  # pragma: no cover - fused backend gates first
        raise ValueError("lower_stream requires numpy")
    n = len(ops)
    tag = _np.zeros(n, dtype=_np.int64)
    slot = _np.zeros(n, dtype=_np.int64)
    g = _np.zeros(n, dtype=_np.int64)
    sw = _np.zeros(n, dtype=_np.int64)
    if r_words == 1:
        dest = _np.zeros(n, dtype=_np.int64)
    else:
        dest = _np.zeros((n, r_words), dtype=_np.int64)
    slots: dict[int, int] = {}
    n_setups = 0
    for i, (op_tag, cid, op_g, op_sw, op_dest) in enumerate(ops):
        if op_tag == _SETUP:
            n_setups += 1
        tag[i] = op_tag
        cid_slot = slots.get(cid)
        if cid_slot is None:
            cid_slot = len(slots)
            slots[cid] = cid_slot
        slot[i] = cid_slot
        g[i] = op_g
        sw[i] = op_sw
        if r_words == 1:
            dest[i] = op_dest
        else:
            for wi in range(r_words):
                dest[i, wi] = (op_dest >> (_WORD_BITS * wi)) & _WORD_MASK
    return LoweredStream(
        tag=tag, slot=slot, g=g, sw=sw, dest=dest,
        n_slots=len(slots), n_setups=n_setups, r_words=r_words,
    )


@dataclass(frozen=True)
class CellOutcome:
    """One replication's result, with optional blocking causes."""

    m: int
    attempts: int
    blocked: int
    #: per blocked request (in stream order) the ``explain_block``-shaped
    #: cause dict; empty unless ``record_causes=True``.
    causes: tuple[dict, ...] = ()


class _Replication:
    """Mutable per-replication accumulator for one lockstep replay."""

    __slots__ = ("blocked", "releases", "kind_counts", "causes")

    def __init__(self) -> None:
        self.blocked = 0
        self.releases = 0
        self.kind_counts: dict[str, int] = {}
        self.causes: list[dict] = []


def _record_block(
    rep: _Replication,
    cid: int,
    dropped: set[int],
    want_kinds: bool,
    want_causes: bool,
    x: int,
    g: int,
    sw: int,
    blocked_mask: int,
    avail: int,
    coverable: dict[int, int],
    dest_mask: int,
    msw_dominant: bool,
    fabric: str | None = None,
    static_unreachable: int = 0,
) -> None:
    rep.blocked += 1
    dropped.add(cid)
    if want_kinds:
        if want_causes:
            cause = block_cause(
                x=x,
                input_module=g,
                source_wavelength=sw,
                blocked_mask=blocked_mask,
                available=avail,
                coverable=coverable,
                dest_mask=dest_mask,
                msw_dominant=msw_dominant,
                fabric=fabric,
                static_unreachable=static_unreachable,
            )
            rep.causes.append(cause)
            kind = cause["kind"]
        else:
            kind = classify_kind(
                avail, coverable, dest_mask, msw_dominant, static_unreachable
            )
        rep.kind_counts[kind] = rep.kind_counts.get(kind, 0) + 1


def _replay(
    ops: list[tuple[int, int, int, int, int]],
    state: FabricState,
    want_kinds: bool,
    want_causes: bool,
) -> tuple[int, list[_Replication]]:
    """The single lockstep event loop, parameterized by the state backend.

    Every setup op drives one :func:`repro.engine.kernel.probe_cover`
    per replication against the backend's ``setup_views`` -- the same
    kernel the serial network and the exhaustive checker route through
    -- so this loop owns no admission semantics of its own: MSW- vs
    MAW-dominance, endpoint models and wavelength picks all live in the
    engine.

    A state that offers the whole-stream ``replay_ops`` entry point
    (the fused ``numba`` backend) takes the entire loop instead: the
    stream is lowered to flat arrays once and every per-event decision
    above runs inside the one compiled kernel, bit-identically.
    """
    fused_entry = getattr(state, "replay_ops", None)
    if fused_entry is not None:
        r_words = getattr(state, "plane_layout", None)
        replay: FusedReplay = fused_entry(
            lower_stream(ops, r_words.r_words if r_words else 1),
            want_kinds,
            want_causes,
        )
        replications = []
        for b in range(state.batch):
            rep = _Replication()
            rep.blocked = replay.blocked[b]
            rep.releases = replay.releases[b]
            rep.kind_counts = replay.kind_counts[b]
            rep.causes = replay.causes[b]
            replications.append(rep)
        return replay.attempts, replications
    batch = state.batch
    x = state.x
    msw_dominant = state.msw_dominant
    all_masks = state.all_masks
    # The fabric model's static reach constraint (one family per batch,
    # enforced by the state's _check_family): None on the Clos, so the
    # legacy path stays untouched.
    su = getattr(state, "static_unreach_masks", None)
    fabric_name = state.geometries[0].fabric
    fab_token = None if fabric_name == "clos" else fabric_name
    replications = [_Replication() for _ in range(batch)]
    live: list[dict[int, tuple]] = [{} for _ in range(batch)]
    dropped: list[set[int]] = [set() for _ in range(batch)]
    attempts = 0
    indices = range(batch)
    views = state.setup_views
    allocate = state.allocate
    free = state.free
    probe = probe_cover
    for op in ops:
        tag, cid, g, sw, dest_mask = op
        if tag:
            attempts += 1
            blocked_row, blocker_rows = views(g, sw)
            for b in indices:
                blocked = blocked_row[b]
                avail = all_masks[b] & ~blocked
                cover, coverable = probe(avail, dest_mask, x, blocker_rows[b])
                if cover is None:
                    _record_block(
                        replications[b], cid, dropped[b], want_kinds,
                        want_causes, x, g, sw, blocked, avail, coverable,
                        dest_mask, msw_dominant, fab_token,
                        0 if su is None else su[b][sw],
                    )
                else:
                    live[b][cid] = allocate(b, g, sw, cover)
        else:
            for b in indices:
                gone = dropped[b]
                if cid in gone:
                    gone.remove(cid)
                    continue
                free(b, g, sw, live[b].pop(cid))
                replications[b].releases += 1
    return attempts, replications


def _simulate(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    seed: int,
    m_values: list[int],
    backend: str,
    record_causes: bool,
    antithetic: bool = False,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> tuple[int, list[_Replication]]:
    """Compile seed ``seed`` once and replay it against every ``m``."""
    legal_x = valid_x_range(n, r)
    if x not in legal_x:
        raise ValueError(
            f"x={x} outside the legal range "
            f"[{legal_x[0]}, {legal_x[-1]}] for n={n}, r={r}"
        )
    if not m_values:
        return 0, []
    for m in m_values:
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
    spec = get_fabric(fabric)
    geometries = [
        FabricGeometry(
            n=n, r=r, k=k, m=m,
            construction=construction, model=model, x=x, fabric=fabric,
        )
        for m in m_values
    ]
    want_kinds = record_causes or _obs.enabled()
    ops = compile_stream(
        model, n, r, k, steps, seed, max_fanout, antithetic, workload
    )
    if spec.nonblocking:
        # Single-stage nonblocking fabric: every compiled setup is a
        # legal request and the fabric admits it by construction, so
        # there is no middle-stage state to replay -- attempts are the
        # stream's setup count, blocked is exactly zero (the live
        # oracle property), and every teardown releases.  The backend
        # is still resolved so unknown-backend errors stay uniform.
        resolve_backend(backend, m_max=max(m_values), r=r, k=k)
        attempts = sum(1 for op in ops if op[0] == _SETUP)
        teardowns = len(ops) - attempts
        replications = []
        for _ in m_values:
            rep = _Replication()
            rep.releases = teardowns
            replications.append(rep)
    else:
        state = make_state(geometries, backend)
        attempts, replications = _replay(
            ops, state, want_kinds, record_causes
        )
    if _obs.enabled():
        # Aggregate increments, guarded on nonzero so the counter *set*
        # (not just the totals) matches a serial run's -- serial counters
        # only exist once incremented.
        for rep in replications:
            _obs.inc("mc.cells")
            if attempts:
                _obs.inc("net.admit.attempts", attempts)
            admitted = attempts - rep.blocked
            if admitted:
                _obs.inc("net.admit.admitted", admitted)
            if rep.blocked:
                _obs.inc("net.admit.blocked", rep.blocked)
            for kind in sorted(rep.kind_counts):
                _obs.inc(f"net.block.cause.{kind}", rep.kind_counts[kind])
            if rep.releases:
                _obs.inc("net.release", rep.releases)
    return attempts, replications


def simulate_batch(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    seed: int,
    m_values: tuple[int, ...] | list[int],
    backend: str = "auto",
    antithetic: bool = False,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> list[tuple[int, tuple[int, int]]]:
    """All of one seed's ``(m, (attempts, blocked))`` cells, in lockstep.

    This is the work-unit function the Monte-Carlo estimators hand to
    :class:`repro.perf.ParallelSweeper` under the ``batched`` kernel
    (batch-per-process instead of cell-per-process): module-level and
    picklable, and every returned cell is bit-identical to
    ``_traffic_cell`` run serially with the same arguments (including
    ``antithetic``, which swaps in the seed's mirrored stream, and
    ``workload``, which swaps in a registered traffic model).
    ``fabric`` selects the registered fabric model the stream replays
    through (:mod:`repro.engine.fabrics`); the default Clos path is
    bit-identical to the pre-seam engine.
    """
    attempts, replications = _simulate(
        n, r, k, construction, model, x, steps, max_fanout, seed,
        list(m_values), backend, record_causes=False, antithetic=antithetic,
        workload=workload, fabric=fabric,
    )
    return [
        (m, (attempts, rep.blocked))
        for m, rep in zip(m_values, replications)
    ]


def replay_cell(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int,
    seed: int,
    max_fanout: int | None = None,
    backend: str = "auto",
    record_causes: bool = False,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> CellOutcome:
    """One ``(m, seed)`` replication through the batch engine.

    With ``record_causes=True`` the outcome carries, for each blocked
    setup in stream order, the same cause dict
    :meth:`~repro.multistage.network.ThreeStageNetwork.explain_block`
    would produce at that event -- the hook the equivalence property
    tests compare against the serial simulator.
    """
    attempts, replications = _simulate(
        n, r, k, construction, model, x, steps, max_fanout, seed, [m],
        backend, record_causes=record_causes, workload=workload,
        fabric=fabric,
    )
    rep = replications[0]
    return CellOutcome(
        m=m,
        attempts=attempts,
        blocked=rep.blocked,
        causes=tuple(rep.causes),
    )
