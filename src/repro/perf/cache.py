"""Content-addressed result cache for sweep cells.

Every expensive computation in the repo decomposes into cells that are
pure functions of their arguments -- (seed, m, config) Monte-Carlo
replications, adversary seeds, the exact model checker's m-candidates.
:class:`ResultCache` persists those cell results to disk keyed by a
SHA-256 digest of

* a **namespace** (the cell function's identity),
* the **code version** (:data:`CODE_VERSION`, bumped whenever cell
  semantics change -- a bump invalidates every prior entry),
* the active **routing kernel** id (bitmask vs reference results are
  bit-identical today, but keying them separately means a kernel whose
  semantics drift can never serve stale entries), and
* the canonical JSON of the cell **parameters** (enums and tuples
  normalized, keys sorted).

so repeated and interrupted sweeps become incremental: re-running a
sweep touches only the cells that were never computed.

Robustness contract:

* **atomic writes** -- entries are written to a temp file in the cache
  directory and published with ``os.replace``, so a crashed or killed
  sweep never leaves a half-written entry under a live key;
* **corrupted-entry recovery** -- an entry that fails to unpickle (torn
  bytes, truncation, version skew) is deleted and treated as a miss,
  never propagated;
* **bounded growth** -- with ``max_bytes`` set, every write prunes
  least-recently-used entries (hits refresh recency) until the cache
  fits; a pruned entry is simply a future miss, recomputed and stored
  again on demand;
* **concurrent writers** -- one cache directory may be shared by many
  processes at once (the adaptive sweep's resume contract depends on
  it).  Entry publication is already atomic; the LRU prune
  additionally serializes through an advisory ``flock`` on a lock file
  so concurrent writers never double-count sizes or stampede-evict
  each other's fresh entries (a writer that finds the lock held simply
  skips its prune -- the holder is already enforcing the budget), and
  :meth:`put` recreates the cache directory if a peer removed it
  mid-run;
* values are stored with :mod:`pickle`, so any picklable cell result
  round-trips exactly (the warm path returns bit-identical objects).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Mapping

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro import obs as _obs
from repro.multistage.routing import get_routing_kernel

__all__ = ["CODE_VERSION", "CacheStats", "ResultCache"]

#: bump whenever the semantics of any cached cell change; every prior
#: entry is invalidated (its key can no longer be reproduced)
CODE_VERSION = "2"

#: sentinel distinguishing "no entry" from a cached None value
_MISS = object()


@dataclass
class CacheStats:
    """Counters of one :class:`ResultCache`'s traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
        }


def _canonical_json(value: Any) -> str:
    """Deterministic JSON for key material (enums/tuples normalized)."""

    def default(obj: Any) -> Any:
        if isinstance(obj, Enum):
            return f"{type(obj).__name__}.{obj.name}"
        if isinstance(obj, (set, frozenset)):
            return sorted(obj)
        raise TypeError(
            f"{type(obj).__name__} is not a stable cache-key component"
        )

    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=default)


class ResultCache:
    """Disk-backed content-addressed cache of sweep-cell results.

    Args:
        directory: cache root; created on demand.  One directory can be
            shared by every sweep -- the namespace and parameter hash
            keep cells apart.
        code_version: override of :data:`CODE_VERSION` (tests use this
            to prove that a version bump invalidates old entries).
        max_bytes: disk budget for the entry files; None (default)
            keeps the cache unbounded.  Enforced on every
            :meth:`put` by deleting least-recently-*used* entries
            (mtime order; :meth:`lookup` hits refresh it) until the
            cache fits, newest write always kept.  Pruned entries just
            become future misses -- correctness is untouched.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        code_version: str = CODE_VERSION,
        max_bytes: int | None = None,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # -- keys ---------------------------------------------------------------

    def key(
        self,
        namespace: str,
        params: Mapping[str, Any],
        *,
        kernel: str | None = None,
    ) -> str:
        """Content address of one cell: sha256 over namespace/version/kernel/params.

        ``kernel`` defaults to the process's active routing kernel at
        call time, so results computed under different kernels never
        alias.
        """
        payload = _canonical_json(
            {
                "namespace": namespace,
                "code_version": self.code_version,
                "kernel": kernel if kernel is not None else get_routing_kernel(),
                "params": dict(params),
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- access -------------------------------------------------------------

    def lookup(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)`` for ``key``; corrupted entries count as misses.

        A corrupted or truncated entry (unpicklable bytes) is removed so
        the next :meth:`put` rewrites it cleanly.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            _obs.inc("cache.misses")
            return False, None
        except Exception:
            # Torn write survivor, truncation, or pickle-format skew:
            # recover by discarding the entry.
            self.stats.corrupt += 1
            self.stats.misses += 1
            _obs.inc("cache.corrupt")
            _obs.inc("cache.misses")
            try:
                path.unlink()
            except OSError:  # pragma: no cover - already gone / perms
                pass
            return False, None
        self.stats.hits += 1
        _obs.inc("cache.hits")
        if self.max_bytes is not None:
            # Refresh recency so the LRU prune spares hot entries.
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return True, value

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value, or ``default`` on a miss."""
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically (write-temp + rename).

        Safe under concurrent writers: publication is a single
        ``os.replace``, and if a peer process removed the cache
        directory between writes the directory is recreated and the
        write retried once.
        """
        path = self._path(key)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
        except FileNotFoundError:
            # A peer cleared the whole directory under us; recreate it.
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".pkl"
            )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        _obs.inc("cache.stores")
        if self.max_bytes is not None:
            self._prune(keep=path)

    # -- maintenance --------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes currently occupied by entry files."""
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return total

    def _prune(self, keep: Path) -> None:
        """Delete LRU entries until the cache fits ``max_bytes``.

        ``keep`` (the entry just written) survives even if it alone
        exceeds the budget -- pruning the value the caller is about to
        rely on would turn every over-budget store into a guaranteed
        miss loop.

        Serialized across processes by an advisory lock: concurrent
        prunes would each total the directory, then each delete "down
        to budget" against a snapshot the other is invalidating --
        together evicting far more than the budget requires.  A writer
        that finds the lock held skips pruning; the lock holder is
        already enforcing the budget, and the skipper's own next store
        will prune again if needed.
        """
        lock_handle = None
        if fcntl is not None:
            try:
                lock_handle = open(self.directory / ".prune.lock", "ab")
                fcntl.flock(lock_handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                # Lock held by a pruning peer (or unavailable): skip.
                if lock_handle is not None:
                    lock_handle.close()
                return
        try:
            self._prune_locked(keep)
        finally:
            if lock_handle is not None:
                try:
                    fcntl.flock(lock_handle, fcntl.LOCK_UN)
                finally:
                    lock_handle.close()

    def _prune_locked(self, keep: Path) -> None:
        entries = []
        total = 0
        for path in self.directory.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            total -= size
            self.stats.evictions += 1
            _obs.inc("cache.evictions")

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return removed
