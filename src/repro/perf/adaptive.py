"""Precision-targeted adaptive sweep driver (sequential stopping).

The fixed-budget Monte-Carlo estimators spend ``steps x seeds`` events
on *every* cell of a blocking-vs-``m`` curve, even though cells far
from the knee (``P_block`` at or near zero) settle almost immediately
and only the knee needs heavy sampling.  This module replaces the fixed
replication count with a **sequential stopping rule**: every cell runs
*rounds* of replications until the Wilson confidence interval on its
pooled :class:`~repro.analysis.montecarlo.BlockingEstimate` reaches a
requested half-width (absolute or relative), then stops.  On a typical
curve most cells stop at the round floor and the event budget
concentrates where the variance is -- the whole-curve cost drops by the
ratio ``bench_perf.py``'s ``adaptive`` section guards.

Three layers make the rounds cheap, low-variance and resumable:

* **round schedule** -- :func:`round_specs` derives each round's
  replication seeds deterministically from the *traffic key* (the full
  configuration minus ``m`` -- the PR 3 adversary-seed lesson: never
  key a schedule on less than the experiment's identity) so every
  ``m`` of a sweep replays the same streams (common random numbers,
  which also smooths the curve).  Seeds are drawn from disjoint
  **strata** of the seed space (one per pair, fixed across rounds) and
  each seed is paired with its **antithetic** mirror
  (:class:`repro.switching.generators.AntitheticRandom`), layered on
  the stream compiler so all kernels and backends inherit both;

* **kernel reuse** -- rounds run through the existing cells: under
  ``routing_kernel("batched")`` each round spec becomes one lockstep
  :func:`repro.perf.batch.simulate_batch` unit covering every
  unconverged ``m`` (numba/numpy/python backends all apply), otherwise
  one :func:`~repro.analysis.montecarlo._traffic_cell` unit per
  ``(m, spec)`` -- bit-identical numbers either way;

* **resumable rounds** -- each completed round's ``(attempts,
  blocked)`` aggregate lands in the content-addressed
  :class:`~repro.perf.cache.ResultCache` keyed by *(cell, round,
  schedule)*; a killed sweep restarted with the same manifest replays
  warm rounds from disk and continues sampling exactly where it
  stopped, bit-identically (the stopping rule is a pure function of
  the round results, so resume cannot diverge).  The round keys omit
  the precision *target*, so tightening the half-width on a later run
  reuses every warm round and only samples the difference.

Work units are re-enqueued round by round through
:meth:`repro.perf.sweeper.ParallelSweeper.run_adaptive`, so adaptive
sweeps parallelize and serial-fallback exactly like fixed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple

from repro import obs as _obs
from repro.analysis.montecarlo import (
    AdaptiveInfo,
    BlockingEstimate,
    _traffic_cell,
)
from repro.core.models import Construction, MulticastModel
from repro.engine.fabrics import get_fabric
from repro.multistage.routing import get_routing_kernel
from repro.obs.meta import ResultMeta
from repro.perf.batch import simulate_batch
from repro.perf.sweeper import ParallelSweeper, SweepResult, WorkUnit
from repro.workloads.keys import (
    fabric_fragment,
    key_fragment,
    schedule_rng,
    workload_fragment,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.perf.cache import ResultCache
    from repro.workloads.base import WorkloadConfig

__all__ = [
    "SCHEDULE_VERSION",
    "PrecisionConfig",
    "ReplicationSpec",
    "adaptive_blocking",
    "adaptive_sweep",
    "round_specs",
    "stream_key",
]

#: bumped whenever the seed-schedule derivation changes; part of every
#: round cache key, so stale rounds can never resume a new schedule
SCHEDULE_VERSION = "1"

#: seeds are drawn from [0, 2**62): comfortably inside Python's fast
#: int path and partitionable into equal strata without bias
_SEED_SPACE = 1 << 62


class ReplicationSpec(NamedTuple):
    """One replication of a round: a seed and which of its streams."""

    seed: int
    antithetic: bool


@dataclass(frozen=True)
class PrecisionConfig:
    """The stopping rule and variance-reduction plan of an adaptive run.

    Attributes:
        half_width: target confidence-interval half-width.  Absolute by
            default; with ``relative=True`` the target is
            ``half_width x probability`` (10% relative precision is
            ``half_width=0.1, relative=True``).
        relative: interpret ``half_width`` relative to the point
            estimate.
        level: confidence level of the Wilson interval the rule tests.
        pairs_per_round: seed draws per round.  Each draw comes from its
            own stratum of the seed space and (with ``antithetic``)
            contributes its mirrored twin too, so a round runs
            ``pairs_per_round x 2`` replications by default.
        antithetic: pair every seed with its antithetic mirror stream.
        stratified: draw each round's seeds from disjoint strata of the
            seed space (pair ``i`` always samples stratum ``i``) instead
            of the full range.
        min_rounds: rounds every cell must complete before it may stop
            (guards against stopping on a lucky zero-variance first
            round).
        max_rounds: hard cap; a cell still unconverged here stops and
            is flagged ``converged=False`` in its
            :class:`~repro.analysis.montecarlo.AdaptiveInfo`.
        zero_half_width: under ``relative=True``, the absolute
            half-width at which a cell whose point estimate is exactly
            zero is accepted (a relative target is meaningless at
            ``p = 0``; the Wilson interval still shrinks like
            ``z^2/n``, so this bounds "provably near zero").
    """

    half_width: float = 0.01
    relative: bool = False
    level: float = 0.95
    pairs_per_round: int = 2
    antithetic: bool = True
    stratified: bool = True
    min_rounds: int = 2
    max_rounds: int = 64
    zero_half_width: float = 0.005

    def __post_init__(self) -> None:
        if self.half_width <= 0.0:
            raise ValueError(f"half_width must be > 0, got {self.half_width}")
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {self.level}")
        if self.pairs_per_round < 1:
            raise ValueError(
                f"pairs_per_round must be >= 1, got {self.pairs_per_round}"
            )
        if self.min_rounds < 1:
            raise ValueError(f"min_rounds must be >= 1, got {self.min_rounds}")
        if self.max_rounds < self.min_rounds:
            raise ValueError(
                f"max_rounds ({self.max_rounds}) must be >= min_rounds "
                f"({self.min_rounds})"
            )
        if self.zero_half_width <= 0.0:
            raise ValueError(
                f"zero_half_width must be > 0, got {self.zero_half_width}"
            )

    def replications_per_round(self) -> int:
        """Replications one round runs for one cell."""
        return self.pairs_per_round * (2 if self.antithetic else 1)

    def converged(self, estimate: BlockingEstimate) -> bool:
        """Does ``estimate`` meet the precision target?"""
        if not estimate.attempts:
            return False
        half = estimate.half_width(self.level)
        if self.relative:
            p = estimate.probability
            if p == 0.0:
                return half <= self.zero_half_width
            return half <= self.half_width * p
        return half <= self.half_width


def stream_key(
    n: int,
    r: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> str:
    """The traffic key the round schedule derives from.

    Deliberately *without* ``m``: the compiled traffic stream is
    ``m``-independent, so sharing one schedule across the whole curve
    gives every ``m`` common random numbers.  Everything else that
    shapes the experiment is mixed in -- including the workload token,
    when the traffic is non-uniform, and the fabric token, when the
    fabric is not the Clos -- so two sweeps differing in any
    configuration dimension get independent schedules (the regression
    guard for the PR 3 adversary-seed fix pattern).  Uniform traffic on
    the Clos contributes no tokens, so pre-workload and pre-seam
    schedule keys -- and the golden adaptive values derived from them --
    are unchanged.
    """
    base = key_fragment(
        dict(
            n=n, r=r, k=k, construction=construction, model=model, x=x,
            steps=steps, max_fanout=max_fanout, schedule=SCHEDULE_VERSION,
        )
    )
    token = None if workload is None else workload.token()
    return (
        base
        + workload_fragment(token)
        + fabric_fragment(get_fabric(fabric).token())
    )


def round_specs(
    key: str, round_index: int, precision: PrecisionConfig
) -> tuple[ReplicationSpec, ...]:
    """The deterministic replication specs of one round.

    A pure function of ``(traffic key, round index, schedule shape)``:
    pair ``i`` hashes ``key|round|stratum=i`` into its own RNG, draws a
    seed (from stratum ``i``'s slice of the seed space when
    ``stratified``), and -- when ``antithetic`` -- contributes both the
    seed's plain stream and its mirror.  Resume depends on this purity:
    a restarted sweep re-derives exactly the schedule the killed sweep
    was running.
    """
    specs: list[ReplicationSpec] = []
    pairs = precision.pairs_per_round
    width = _SEED_SPACE // pairs if precision.stratified else _SEED_SPACE
    for stratum in range(pairs):
        rng = schedule_rng(key, round_index, stratum)
        offset = stratum * width if precision.stratified else 0
        seed = offset + rng.randrange(width)
        specs.append(ReplicationSpec(seed, False))
        if precision.antithetic:
            specs.append(ReplicationSpec(seed, True))
    return tuple(specs)


def _round_key(
    cache: "ResultCache",
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
    x: int,
    steps: int,
    max_fanout: int | None,
    round_index: int,
    precision: PrecisionConfig,
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> str:
    """Content address of one ``(cell, round)`` aggregate.

    Keyed by the cell, the round index and the *schedule shape*
    (pairs/antithetic/stratified + schedule version) -- but not by the
    precision target or level, which select how many rounds run without
    changing any round's content.  A resumed sweep with a tighter
    target therefore reuses every warm round.  The workload token joins
    the key only when non-uniform, so uniform rounds keep their legacy
    addresses while non-uniform traffic can never resume from them.
    """
    params = dict(
        n=n, r=r, m=m, k=k, construction=construction, model=model,
        x=x, steps=steps, max_fanout=max_fanout,
        round=round_index,
        pairs=precision.pairs_per_round,
        antithetic=precision.antithetic,
        stratified=precision.stratified,
        schedule=SCHEDULE_VERSION,
    )
    token = None if workload is None else workload.token()
    if token is not None:
        params["workload"] = token
    fabric_token = get_fabric(fabric).token()
    if fabric_token is not None:
        params["fabric"] = fabric_token
    return cache.key("adaptive_round", params)


class _AdaptiveDriver:
    """Round-by-round state machine behind ``adaptive_sweep``.

    Produces each round's work units for
    :meth:`~repro.perf.sweeper.ParallelSweeper.run_adaptive` and absorbs
    the results: per-cell totals, convergence bookkeeping, and the
    per-round cache traffic (warm rounds short-circuit without units).
    """

    def __init__(
        self,
        n: int,
        r: int,
        k: int,
        m_values: list[int],
        construction: Construction,
        model: MulticastModel,
        x: int,
        steps: int,
        max_fanout: int | None,
        precision: PrecisionConfig,
        cache: "ResultCache | None",
        debug_checks: bool | None,
        backend: str,
        workload: "WorkloadConfig | None" = None,
        fabric: str = "clos",
    ):
        self.n, self.r, self.k = n, r, k
        self.m_values = list(m_values)
        self.construction, self.model, self.x = construction, model, x
        self.steps, self.max_fanout = steps, max_fanout
        self.precision = precision
        self.cache = cache
        self.debug_checks = debug_checks
        self.backend = backend
        self.workload = workload
        self.fabric = fabric
        self.batched = get_routing_kernel() == "batched"
        self.key = stream_key(
            n, r, k, construction, model, x, steps, max_fanout, workload,
            fabric,
        )
        #: pooled (attempts, blocked) per m
        self.totals: dict[int, list[int]] = {m: [0, 0] for m in self.m_values}
        self.rounds_done: dict[int, int] = {m: 0 for m in self.m_values}
        self.converged: dict[int, bool] = {m: False for m in self.m_values}
        self.active: list[int] = list(self.m_values)
        self.round_index = 0
        # per-pending-round scratch
        self._need: list[int] = []
        self._cached: dict[int, tuple[int, int]] = {}
        self._keys: dict[int, str] = {}

    # -- pooled estimate ----------------------------------------------------

    def _estimate(self, m: int) -> BlockingEstimate:
        attempts, blocked = self.totals[m]
        return BlockingEstimate(
            n=self.n, r=self.r, m=m, k=self.k,
            construction=self.construction, model=self.model, x=self.x,
            attempts=attempts, blocked=blocked,
        )

    # -- round lifecycle ----------------------------------------------------

    def _finish_round(self, round_totals: dict[int, tuple[int, int]]) -> None:
        """Fold one completed round into the totals; retire converged cells."""
        for m in self.active:
            attempts, blocked = round_totals[m]
            self.totals[m][0] += attempts
            self.totals[m][1] += blocked
            self.rounds_done[m] += 1
        _obs.inc("adaptive.rounds")
        still: list[int] = []
        for m in self.active:
            if (
                self.rounds_done[m] >= self.precision.min_rounds
                and self.precision.converged(self._estimate(m))
            ):
                self.converged[m] = True
                _obs.inc("adaptive.cells_converged")
            else:
                still.append(m)
        self.active = still
        self.round_index += 1

    def _absorb(self, executed: list[SweepResult]) -> None:
        """Merge one round's executed units with its cache hits."""
        round_totals = dict(self._cached)
        acc: dict[int, list[int]] = {m: [0, 0] for m in self._need}
        if self.batched:
            # One unit per spec, each covering every unconverged m.
            for result in executed:
                for m, (attempts, blocked) in result.value:
                    acc[m][0] += attempts
                    acc[m][1] += blocked
        else:
            for result in executed:
                m, _ = result.unit_id
                attempts, blocked = result.value
                acc[m][0] += attempts
                acc[m][1] += blocked
        for m in self._need:
            round_totals[m] = (acc[m][0], acc[m][1])
            if self.cache is not None:
                self.cache.put(self._keys[m], round_totals[m])
        self._finish_round(round_totals)

    def next_units(
        self, executed: list[SweepResult] | None
    ) -> list[WorkUnit] | None:
        """The ``run_adaptive`` callback: absorb, then enqueue the next round."""
        if executed is not None:
            self._absorb(executed)
        while True:
            if not self.active or self.round_index >= self.precision.max_rounds:
                return None
            specs = round_specs(self.key, self.round_index, self.precision)
            cached: dict[int, tuple[int, int]] = {}
            keys: dict[int, str] = {}
            if self.cache is not None:
                for m in self.active:
                    rkey = _round_key(
                        self.cache, self.n, self.r, m, self.k,
                        self.construction, self.model, self.x, self.steps,
                        self.max_fanout, self.round_index, self.precision,
                        self.workload, self.fabric,
                    )
                    keys[m] = rkey
                    hit, value = self.cache.lookup(rkey)
                    if hit:
                        cached[m] = tuple(value)
            need = [m for m in self.active if m not in cached]
            self._need = need
            self._cached, self._keys = cached, keys
            if not need:
                # Whole round served warm: fold it in and look at the
                # next round without dispatching anything.
                self._finish_round(cached)
                continue
            if self.batched:
                return [
                    WorkUnit(
                        unit_id=index,
                        fn=simulate_batch,
                        args=(
                            self.n, self.r, self.k, self.construction,
                            self.model, self.x, self.steps, self.max_fanout,
                            spec.seed, tuple(need), self.backend,
                            spec.antithetic, self.workload, self.fabric,
                        ),
                    )
                    for index, spec in enumerate(specs)
                ]
            return [
                WorkUnit(
                    unit_id=(m, index),
                    fn=_traffic_cell,
                    args=(
                        self.n, self.r, m, self.k, self.construction,
                        self.model, self.x, self.steps, spec.seed,
                        self.max_fanout, self.debug_checks, spec.antithetic,
                        self.workload, self.fabric,
                    ),
                )
                for m in need
                for index, spec in enumerate(specs)
            ]

    def estimates(self, meta: ResultMeta) -> list[BlockingEstimate]:
        """The final pooled estimates, adaptive provenance attached."""
        results = []
        for m in self.m_values:
            attempts, blocked = self.totals[m]
            replications = (
                self.rounds_done[m] * self.precision.replications_per_round()
            )
            info = AdaptiveInfo(
                rounds=self.rounds_done[m],
                replications=replications,
                events=replications * self.steps,
                converged=self.converged[m],
                target_half_width=self.precision.half_width,
                relative=self.precision.relative,
                level=self.precision.level,
            )
            results.append(
                BlockingEstimate(
                    n=self.n, r=self.r, m=m, k=self.k,
                    construction=self.construction, model=self.model,
                    x=self.x, attempts=attempts, blocked=blocked,
                    meta=meta, adaptive=info,
                )
            )
        return results


def adaptive_sweep(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 1500,
    max_fanout: int | None = None,
    precision: PrecisionConfig = PrecisionConfig(),
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
    executor: str = "process",
    debug_checks: bool | None = None,
    batch: int | None = None,
    backend: str = "auto",
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> list[BlockingEstimate]:
    """The blocking-vs-``m`` curve at a target precision, not a budget.

    Each ``m`` cell samples rounds of replications (the deterministic
    antithetic/stratified schedule of :func:`round_specs`) until its
    Wilson interval meets ``precision``'s half-width target, then
    stops; the returned estimates carry the usual
    :class:`~repro.obs.meta.ResultMeta` plus an
    :class:`~repro.analysis.montecarlo.AdaptiveInfo` recording rounds,
    replications, events and convergence.  With ``cache``, every
    completed round is persisted under a ``(cell, round)`` content
    address: an interrupted sweep re-run with the same arguments
    replays warm rounds from disk and continues sampling where it
    stopped, producing bit-identical estimates to an uninterrupted run.

    ``jobs``/``executor`` parallelize each round through
    :class:`~repro.perf.sweeper.ParallelSweeper` (bit-identical for any
    value); under ``routing_kernel("batched")`` the round's cells run
    in lockstep through :func:`repro.perf.batch.simulate_batch` on
    ``backend``.  ``batch`` is accepted for signature parity with the
    fixed-budget path; round work units are already seed-granular, so
    it has nothing left to slice.
    """
    del batch  # rounds are already seed-granular work units
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if workload is not None:
        workload.validate_precision(precision, steps)
    driver = _AdaptiveDriver(
        n, r, k, list(m_values), construction, model, x, steps, max_fanout,
        precision, cache, debug_checks, backend, workload, fabric,
    )
    with ParallelSweeper(jobs, executor=executor) as sweeper:
        sweeper.run_adaptive(driver.next_units)
        plan = sweeper.last_plan
    return driver.estimates(ResultMeta.capture(plan, workload=workload))


def adaptive_blocking(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    steps: int = 2000,
    max_fanout: int | None = None,
    precision: PrecisionConfig = PrecisionConfig(),
    jobs: int | str = 1,
    cache: "ResultCache | None" = None,
    executor: str = "process",
    debug_checks: bool | None = None,
    batch: int | None = None,
    backend: str = "auto",
    workload: "WorkloadConfig | None" = None,
    fabric: str = "clos",
) -> BlockingEstimate:
    """Blocking probability of one configuration at a target precision.

    The single-cell form of :func:`adaptive_sweep` (same schedule, same
    round cache addresses, so a sweep and a point query share warm
    rounds when their traffic configurations match).
    """
    return adaptive_sweep(
        n, r, k, [m],
        construction=construction, model=model, x=x, steps=steps,
        max_fanout=max_fanout, precision=precision, jobs=jobs, cache=cache,
        executor=executor, debug_checks=debug_checks, batch=batch,
        backend=backend, workload=workload, fabric=fabric,
    )[0]
