"""Typed public facade over the analysis entry points.

The entry points grown by the perf work --
``blocking_probability``, ``blocking_vs_m``, ``exact_minimal_m`` --
each sprouted their own kwargs (``jobs``, ``cache``, ``kernel``,
``canonicalize``, ``debug_checks``).  This module replaces that kwarg
sprawl with frozen config dataclasses grouped by concern:

* the :class:`repro.workloads.WorkloadConfig` family -- what traffic to
  offer.  :class:`UniformConfig` is the uniform member (the legacy
  behaviour, bit-identical); :class:`HotspotConfig`,
  :class:`HeavyTailFanoutConfig`, :class:`PoissonErlangConfig` and
  :class:`TraceConfig` are the non-uniform models, and any config
  registered with :func:`repro.workloads.register_workload` works too;
* :class:`ExecConfig` -- how to run it (worker count, pool kind,
  result-cache directory, precision targeting);
* :class:`SearchConfig` -- how to search (routing kernel,
  canonicalized exhaustive search, per-event invariant checks);

and three verbs that consume them:

* :func:`blocking` -- blocking probability of one configuration;
* :func:`sweep` -- the blocking-vs-``m`` curve;
* :func:`exact_m` -- the exhaustive exact nonblocking threshold.

Every result carries the shared :class:`repro.obs.meta.ResultMeta`
provenance envelope, which now records the workload that produced the
numbers.  The legacy kwargs signatures -- and the legacy
:class:`TrafficConfig` name, now a deprecated alias of
:class:`UniformConfig` -- still work bit-identically but emit
``DeprecationWarning``.  One behavioral fix ships only here: adversary
seeds derive from the whole configuration, not just ``m`` (the legacy
shims keep the old ``m``-only schedule so golden values never shift).

Typical use::

    from repro import api

    estimate = api.blocking(3, 3, 4, 1, x=1)
    curve = api.sweep(
        3, 3, 1, [1, 2, 3, 4],
        traffic=api.HotspotConfig(zipf_s=1.5, steps=500, seeds=(0, 1)),
        execution=api.ExecConfig(jobs="auto"),
    )
    exact = api.exact_m(2, 2, 1, x=1, m_max=5)
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.montecarlo import (
    BlockingEstimate,
    _blocking_probability_impl,
    _blocking_vs_m_impl,
)
from repro.core.models import Construction, MulticastModel
from repro.engine.fabrics import fabric_names, get_fabric
from repro.multistage.exhaustive import ExactMinimal, _exact_minimal_m_impl
from repro.multistage.routing import routing_kernel
from repro.perf.adaptive import PrecisionConfig, adaptive_sweep
from repro.perf.cache import ResultCache
from repro.workloads import (
    HeavyTailFanoutConfig,
    HotspotConfig,
    PoissonErlangConfig,
    TraceConfig,
    UniformConfig,
    WorkloadConfig,
    make_workload,
    workload_from_dict,
    workload_names,
)

__all__ = [
    "BlockingEstimate",
    "ExactMinimal",
    "ExecConfig",
    "FabricConfig",
    "HeavyTailFanoutConfig",
    "HotspotConfig",
    "PoissonErlangConfig",
    "PrecisionConfig",
    "SearchConfig",
    "TraceConfig",
    "TrafficConfig",
    "UniformConfig",
    "WorkloadConfig",
    "blocking",
    "exact_m",
    "fabric_names",
    "make_workload",
    "sweep",
    "workload_from_dict",
    "workload_names",
]


@dataclass(frozen=True)
class TrafficConfig(UniformConfig):
    """Deprecated alias of :class:`repro.workloads.UniformConfig`.

    The pre-workload-library name of the uniform traffic config.  It
    *is* a ``UniformConfig`` (same fields, same defaults, bit-identical
    streams and cache keys), so every existing call keeps its numbers;
    constructing it just warns.  New code should use
    :class:`UniformConfig` -- or any other member of the
    :class:`repro.workloads.WorkloadConfig` family.
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "repro.api.TrafficConfig is deprecated; use repro.api."
            "UniformConfig (or any repro.workloads config: HotspotConfig, "
            "HeavyTailFanoutConfig, PoissonErlangConfig, TraceConfig, ...)",
            DeprecationWarning,
            stacklevel=3,
        )
        super().__post_init__()


def _as_workload(traffic: WorkloadConfig) -> WorkloadConfig:
    """Validate and normalize the ``traffic`` argument.

    The deprecated :class:`TrafficConfig` shim (which already warned at
    construction) is normalized to a plain :class:`UniformConfig`, so
    downstream work units and provenance never mention the legacy type.
    """
    if not isinstance(traffic, WorkloadConfig):
        raise TypeError(
            "traffic must be a repro.workloads config (UniformConfig, "
            f"HotspotConfig, ...), got {type(traffic).__name__}"
        )
    if type(traffic) is TrafficConfig:
        return UniformConfig(
            steps=traffic.steps,
            seeds=traffic.seeds,
            max_fanout=traffic.max_fanout,
            adversarial=traffic.adversarial,
            adversary_seeds=traffic.adversary_seeds,
        )
    return traffic


@dataclass(frozen=True)
class FabricConfig:
    """Which registered fabric model to replay traffic through.

    Attributes:
        name: a :mod:`repro.engine.fabrics` registry name -- ``"clos"``
            (the paper's three-stage network; the default and the
            bit-identical legacy path), ``"crossbar"`` (the single-stage
            nonblocking baseline), ``"awg_clos"`` (the AWG-routed Clos
            variant), or any name added with
            :func:`repro.engine.fabrics.register_fabric`.

    :func:`blocking` and :func:`sweep` also accept a bare fabric-name
    string; this config exists for symmetry with the other grouped
    configs and for future per-fabric options.  Unknown names raise the
    registry's uniform error at construction.
    """

    name: str = "clos"

    def __post_init__(self) -> None:
        get_fabric(self.name)


def _as_fabric(fabric: "str | FabricConfig") -> str:
    """Validate and normalize the ``fabric`` argument to a registry name."""
    name = fabric.name if isinstance(fabric, FabricConfig) else fabric
    get_fabric(name)
    return name


@dataclass(frozen=True)
class ExecConfig:
    """How to execute a run.

    Attributes:
        jobs: worker count -- 1 (inline, default), an explicit count,
            or ``"auto"`` for the effective CPU count.
        executor: ``"process"`` (default) or ``"thread"`` pools; the
            engine still falls back to serial whenever a pool cannot
            win.
        cache_dir: directory of a content-addressed
            :class:`repro.perf.cache.ResultCache`; None disables
            caching.
        batch: under ``kernel="batched"``, cap on lockstep replications
            per work unit (None packs each seed's whole ``m`` column
            into one unit).  Ignored by the other kernels; never
            affects results, only how work is sliced across workers.
        backend: under ``kernel="batched"``, the fabric-state backend
            inside each work unit -- ``"auto"`` (default; honours
            ``WDM_REPRO_BATCH_BACKEND``, then prefers the fused
            ``numba`` kernel when usable, else ``python``),
            ``"python"``, ``"numpy"``, ``"numba"`` or any name added
            through :func:`repro.engine.backends.register_backend`.
            Ignored by the other kernels; all backends are
            bit-identical, see ``wdm-repro kernels``.
        precision: switch :func:`blocking` and :func:`sweep` from the
            fixed ``traffic.seeds`` replication budget to the adaptive
            sequential-stopping engine
            (:func:`repro.perf.adaptive.adaptive_sweep`): each cell
            samples antithetic/stratified rounds until its Wilson
            interval meets the configured half-width.  ``traffic.seeds``
            is ignored in this mode (the round schedule derives its own
            seeds); ``traffic.adversarial`` is rejected.  With
            ``cache_dir`` set, completed rounds persist and an
            interrupted sweep resumes bit-identically.
    """

    jobs: int | str = 1
    executor: str = "process"
    cache_dir: str | None = None
    batch: int | None = None
    backend: str = "auto"
    precision: PrecisionConfig | None = None

    def cache(self) -> ResultCache | None:
        """The configured result cache, or None."""
        return ResultCache(self.cache_dir) if self.cache_dir is not None else None


@dataclass(frozen=True)
class SearchConfig:
    """How to search: kernel choice and self-verification.

    Attributes:
        kernel: cover-search kernel -- ``"bitmask"``, ``"batched"``
            (bitmask routing plus the lockstep Monte-Carlo engine of
            :mod:`repro.perf.batch`) or ``"reference"``; None (default)
            keeps the process's active kernel.
        canonicalize: dedup exhaustive-search states by canonical
            signature (identical verdicts, far fewer states).
        debug_checks: re-verify network invariants after every
            connect/disconnect inside Monte-Carlo cells (slow;
            result-identical).  None defers to the
            ``WDM_REPRO_DEBUG_CHECKS`` environment variable.
    """

    kernel: str | None = None
    canonicalize: bool = True
    debug_checks: bool | None = None

    @contextmanager
    def applied(self) -> Iterator[None]:
        """Pin the configured kernel for a ``with`` block (no-op if None)."""
        if self.kernel is None:
            yield
        else:
            with routing_kernel(self.kernel):
                yield


def _adaptive(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    construction: Construction,
    model: MulticastModel,
    x: int,
    traffic: WorkloadConfig,
    execution: ExecConfig,
    search: SearchConfig,
    *,
    default_steps: int,
    fabric: str = "clos",
) -> list[BlockingEstimate]:
    """Route a precision-targeted run to the adaptive engine."""
    if traffic.adversarial:
        raise ValueError(
            "adversarial traffic has no precision-targeted mode; "
            "unset the workload config's adversarial flag or "
            "ExecConfig.precision"
        )
    steps = traffic.resolved_steps(default_steps)
    # Workloads that cannot honour the adaptive contract (trace replay:
    # one fixed recording, no fresh streams per round) veto here with a
    # diagnosis rather than silently re-walking their events.
    traffic.validate_precision(execution.precision, steps)
    with search.applied():
        return adaptive_sweep(
            n, r, k, m_values,
            construction=construction,
            model=model,
            x=x,
            steps=steps,
            max_fanout=traffic.max_fanout,
            precision=execution.precision,
            jobs=execution.jobs,
            cache=execution.cache(),
            executor=execution.executor,
            debug_checks=search.debug_checks,
            batch=execution.batch,
            backend=execution.backend,
            workload=traffic,
            fabric=fabric,
        )


def blocking(
    n: int,
    r: int,
    m: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    traffic: WorkloadConfig = UniformConfig(),
    execution: ExecConfig = ExecConfig(),
    search: SearchConfig = SearchConfig(),
    fabric: "str | FabricConfig" = "clos",
) -> BlockingEstimate:
    """Blocking probability of ``v(n, r, m, k)`` under dynamic traffic.

    The typed replacement for ``blocking_probability``; numbers are
    bit-identical to the legacy call with the same parameters.
    ``traffic`` accepts any :mod:`repro.workloads` config -- the
    uniform default reproduces the historical generator, the others
    reshape the offered traffic while keeping every kernel/backend
    bit-identical per replication.  The returned estimate carries a
    :class:`repro.obs.meta.ResultMeta` envelope (kernel, execution
    plan, workload, obs summary when enabled).

    With ``execution.precision`` set, the fixed ``traffic.seeds``
    budget is replaced by the adaptive sequential-stopping engine and
    the estimate carries its
    :class:`~repro.analysis.montecarlo.AdaptiveInfo` provenance.

    ``fabric`` (a registry name or :class:`FabricConfig`) swaps the
    Clos for another registered fabric model -- see
    :mod:`repro.engine.fabrics`.
    """
    traffic = _as_workload(traffic)
    fabric_name = _as_fabric(fabric)
    if execution.precision is not None:
        return _adaptive(
            n, r, k, [m], construction, model, x, traffic, execution,
            search, default_steps=2000, fabric=fabric_name,
        )[0]
    with search.applied():
        return _blocking_probability_impl(
            n, r, m, k,
            construction=construction,
            model=model,
            x=x,
            steps=traffic.resolved_steps(2000),
            seeds=traffic.seeds,
            max_fanout=traffic.max_fanout,
            jobs=execution.jobs,
            cache=execution.cache(),
            executor=execution.executor,
            debug_checks=search.debug_checks,
            batch=execution.batch,
            backend=execution.backend,
            workload=traffic,
            fabric=fabric_name,
        )


def sweep(
    n: int,
    r: int,
    k: int,
    m_values: list[int],
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    traffic: WorkloadConfig = UniformConfig(),
    execution: ExecConfig = ExecConfig(),
    search: SearchConfig = SearchConfig(),
    fabric: "str | FabricConfig" = "clos",
) -> list[BlockingEstimate]:
    """The blocking-probability-vs-``m`` curve (implied figure X3).

    The typed replacement for ``blocking_vs_m``; ``traffic`` accepts
    any :mod:`repro.workloads` config (see :func:`blocking`).  One
    behavioral fix over the legacy call: with ``traffic.adversarial``,
    the adversary-seed schedule is derived from the whole configuration
    (topology, construction, model, x) instead of from ``m`` alone, so
    two sweeps sharing an ``m`` value no longer reuse identical
    adversary streams.  The deprecated ``blocking_vs_m`` keeps the old
    schedule for reproducibility of golden values.  Adversarial probing
    is only meaningful for uniform traffic and is rejected otherwise.

    With ``execution.precision`` set, every curve point samples until
    its Wilson interval meets the precision target instead of running
    the fixed ``traffic.seeds`` budget (see
    :class:`ExecConfig.precision`).

    ``fabric`` (a registry name or :class:`FabricConfig`) swaps the
    Clos for another registered fabric model; adversarial probing is
    Clos-only and rejected for any other fabric.
    """
    traffic = _as_workload(traffic)
    fabric_name = _as_fabric(fabric)
    if execution.precision is not None:
        return _adaptive(
            n, r, k, list(m_values), construction, model, x, traffic,
            execution, search, default_steps=1500, fabric=fabric_name,
        )
    with search.applied():
        return _blocking_vs_m_impl(
            n, r, k, m_values,
            construction=construction,
            model=model,
            x=x,
            steps=traffic.resolved_steps(1500),
            seeds=traffic.seeds,
            max_fanout=traffic.max_fanout,
            adversarial=traffic.adversarial,
            adversary_seeds=traffic.adversary_seeds,
            jobs=execution.jobs,
            cache=execution.cache(),
            executor=execution.executor,
            debug_checks=search.debug_checks,
            batch=execution.batch,
            backend=execution.backend,
            workload=traffic,
            fabric=fabric_name,
        )


def exact_m(
    n: int,
    r: int,
    k: int,
    *,
    construction: Construction = Construction.MSW_DOMINANT,
    model: MulticastModel = MulticastModel.MSW,
    x: int = 1,
    m_max: int | None = None,
    state_budget: int = 100_000,
    unicast_only: bool = False,
    execution: ExecConfig = ExecConfig(),
    search: SearchConfig = SearchConfig(),
) -> ExactMinimal:
    """The exact minimal nonblocking ``m`` by exhaustive model checking.

    The typed replacement for ``exact_minimal_m``; verdicts are
    identical to the legacy call with the same parameters.
    """
    with search.applied():
        return _exact_minimal_m_impl(
            n, r, k,
            construction=construction,
            model=model,
            x=x,
            m_max=m_max,
            state_budget=state_budget,
            unicast_only=unicast_only,
            canonicalize=search.canonicalize,
            jobs=execution.jobs,
            cache=execution.cache(),
        )
