"""Reproduction of "Nonblocking WDM Multicast Switching Networks".

Yang, Wang, Qiao (ICPP 2000 / IEEE TPDS).  The package provides:

* the three WDM multicast models (MSW, MSDW, MAW) and their multicast
  capacities, crosspoint and converter costs (Section 2 / Table 1);
* component-level optical fabric construction and simulation of the
  crossbar designs of Figs. 4-7 (:mod:`repro.fabric`);
* a three-stage WDM multicast network simulator with the paper's
  ``x``-middle-switch routing strategy, plus the nonblocking conditions
  of Theorems 1-2 as exact integer predicates (Section 3 / Table 2);
* analysis and regeneration harnesses for every table and figure
  (:mod:`repro.analysis`);
* a typed public facade over the analysis entry points
  (:mod:`repro.api`) and a zero-cost-when-off observability layer
  (:mod:`repro.obs`) -- both reachable as lazy attributes
  (``from repro import api, obs``).

Quickstart::

    from repro import MulticastModel, CapacityResult, optimal_design

    cap = CapacityResult.compute(MulticastModel.MAW, n_ports=8, k=4)
    design = optimal_design(n_ports=64, k=4)
    print(cap.log10_full, design.m, design.cost.crosspoints)
"""

from repro.core import (
    CapacityResult,
    Construction,
    CrossbarCost,
    MultistageDesign,
    MulticastModel,
    NonblockingBound,
    any_multicast_capacity,
    crossbar_cost,
    full_multicast_capacity,
    min_middle_switches,
    multistage_cost,
    optimal_design,
)
from repro.switching import (
    Endpoint,
    MulticastAssignment,
    MulticastConnection,
)

__version__ = "1.0.0"

__all__ = [
    "CapacityResult",
    "Construction",
    "CrossbarCost",
    "Endpoint",
    "MulticastAssignment",
    "MulticastConnection",
    "MultistageDesign",
    "MulticastModel",
    "NonblockingBound",
    "__version__",
    "any_multicast_capacity",
    "crossbar_cost",
    "full_multicast_capacity",
    "min_middle_switches",
    "multistage_cost",
    "optimal_design",
]

#: subpackages loaded on first attribute access -- ``repro.api`` pulls
#: in the analysis stack and ``repro.obs`` is imported by the hot-path
#: modules themselves, so neither belongs in the eager import graph
_LAZY_MODULES = ("api", "obs")


def __getattr__(name: str):
    if name in _LAZY_MODULES:
        import importlib

        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
