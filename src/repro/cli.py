"""Command-line interface: regenerate the paper's tables and demos.

Usage (installed as ``wdm-repro``, or ``python -m repro``)::

    wdm-repro table1 --n-ports 8 --k 4
    wdm-repro table2 --n-ports 256 --k 4
    wdm-repro bounds --n 16 --r 16 --k 4
    wdm-repro crossover --k 4
    wdm-repro capacity --n-ports 8 --k-max 6
    wdm-repro blocking --n 3 --r 3 --k 2 --m-max 10
    wdm-repro blocking --n 3 --r 3 --k 2 --m-max 10 --kernel batched
    wdm-repro sweep --n 3 --r 3 --k 2 --m-max 10 --ci-halfwidth 0.01
    wdm-repro sweep --n 3 --r 3 --k 2 --m-max 10 --resume
    wdm-repro blocking --n 3 --r 3 --k 2 --m-max 10 --workload hotspot \\
        --workload-param zipf_s=1.5
    wdm-repro workloads
    wdm-repro trace-gen --out burst.jsonl --workload heavytail_fanout \\
        --n 3 --r 3 --k 2 --steps 500
    wdm-repro blocking --n 3 --r 3 --k 2 --m-max 10 --fabric awg_clos
    wdm-repro fabrics
    wdm-repro fig10
    wdm-repro trace fig10 --trace-out -
    wdm-repro kernels
    wdm-repro design --n-ports 1024 --k 4 --model MAW
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro import api, obs
from repro.analysis.figures import bound_vs_x, capacity_growth, find_crossover
from repro.analysis.rendering import render_table
from repro.analysis.tables import render_table1, render_table2
from repro.core.models import (
    Construction,
    MulticastModel,
    parse_construction,
    parse_multicast_model,
)
from repro.core.multistage import optimal_design
from repro.multistage.adversary import fig10_scenario
from repro.multistage.recursive import best_recursive_design

__all__ = ["main"]


def _model(value: str) -> MulticastModel:
    try:
        return parse_multicast_model(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _construction(value: str) -> Construction:
    try:
        return parse_construction(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _fabric(value: str) -> str:
    from repro.engine.fabrics import get_fabric

    lowered = value.lower()
    try:
        get_fabric(lowered)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return lowered


def _jobs(value: str) -> int | str:
    if value.lower() == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"jobs must be an integer or 'auto', got {value!r}"
        ) from exc


def _kernel(value: str) -> str:
    from repro.multistage.routing import _KERNELS

    lowered = value.lower()
    if lowered not in _KERNELS:
        raise argparse.ArgumentTypeError(
            f"unknown kernel {value!r}; choose from "
            + ", ".join(sorted(_KERNELS))
        )
    return lowered


def _backend(value: str) -> str:
    from repro.engine.backends import BACKENDS, available_backends

    lowered = value.lower()
    known = {"auto", *BACKENDS, *available_backends()}
    if lowered not in known:
        raise argparse.ArgumentTypeError(
            f"unknown backend {value!r}; choose from "
            + ", ".join(sorted(known))
        )
    return lowered


def _workload(value: str) -> str:
    from repro.workloads import workload_names

    lowered = value.lower()
    if lowered not in workload_names():
        raise argparse.ArgumentTypeError(
            f"unknown workload {value!r}; choose from "
            + ", ".join(workload_names())
        )
    return lowered


def _workload_param(value: str) -> tuple[str, str]:
    key, sep, raw = value.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"workload parameters are key=value pairs, got {value!r}"
        )
    return key, raw


def _traffic(args: argparse.Namespace, **base: object) -> api.WorkloadConfig:
    """The workload config the --workload/--workload-param flags ask for."""
    params = dict(getattr(args, "workload_param", None) or ())
    try:
        return api.make_workload(args.workload, **params, **base)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"wdm-repro: error: {exc}") from exc


def _exec_config(
    args: argparse.Namespace,
    precision: api.PrecisionConfig | None = None,
) -> api.ExecConfig:
    """The execution config the flags ask for."""
    return api.ExecConfig(
        jobs=args.jobs,
        cache_dir=args.cache_dir if args.cache else None,
        batch=getattr(args, "batch", None),
        backend=getattr(args, "backend", "auto"),
        precision=precision,
    )


def _ci_cell(estimate: api.BlockingEstimate) -> str:
    """The +/- half-width column of one estimate (95% Wilson)."""
    half = estimate.half_width()
    return f"+/-{half:.4f}" if half == half and half != float("inf") else "-"


def _cache_summary(args: argparse.Namespace, counters: dict) -> list[str]:
    """Cache-traffic footer, read from the run's obs counters."""
    if not args.cache:
        return []
    return [
        f"cache: {counters.get('cache.hits', 0)} hits, "
        f"{counters.get('cache.misses', 0)} misses, "
        f"{counters.get('cache.stores', 0)} stored ({args.cache_dir})"
    ]


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="persist per-cell results so repeated/interrupted runs are "
        "incremental (content-addressed by config, seed, kernel and "
        "code version)",
    )
    p.add_argument(
        "--cache-dir",
        type=str,
        default=".wdm-repro-cache",
        help="directory for --cache entries",
    )


def _add_fabric_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fabric",
        type=_fabric,
        default="clos",
        metavar="NAME",
        help="fabric model simulated: 'clos' (the paper's three-stage "
        "network, default), 'crossbar' (single-stage nonblocking WDM "
        "crossbar -- blocking is exactly zero), or 'awg_clos' "
        "(AWG-constrained middle stage) -- see 'wdm-repro fabrics'",
    )


def _add_workload_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workload",
        type=_workload,
        default="uniform",
        metavar="NAME",
        help="traffic model drawn per replication: 'uniform' (the "
        "paper's i.i.d. requests, default), 'hotspot' (Zipf-skewed "
        "destinations), 'heavytail_fanout' (truncated-Pareto group "
        "sizes), 'poisson_erlang' (Poisson arrivals, exponential "
        "holding), or 'trace' (replay a recorded file) -- see "
        "'wdm-repro workloads'",
    )
    p.add_argument(
        "--workload-param",
        type=_workload_param,
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="shape parameter for --workload (repeatable), e.g. "
        "--workload hotspot --workload-param zipf_s=1.5; unknown keys "
        "list the model's parameters",
    )


def _cmd_table1(args: argparse.Namespace) -> str:
    return render_table1(args.n_ports, args.k)


def _cmd_table2(args: argparse.Namespace) -> str:
    return render_table2(args.n_ports, args.k, args.construction)


def _cmd_bounds(args: argparse.Namespace) -> str:
    rows = []
    for construction in Construction:
        for x, m in bound_vs_x(args.n, args.r, args.k, construction):
            rows.append([construction.value, x, m])
    return render_table(
        ["construction", "x", "minimal m"],
        rows,
        title=f"Nonblocking bounds -- n={args.n}, r={args.r}, k={args.k}",
    )


def _cmd_crossover(args: argparse.Namespace) -> str:
    lines = []
    for model in MulticastModel:
        crossover = find_crossover(args.k, model)
        where = f"N = {crossover.n_ports}" if crossover else "not found"
        lines.append(
            f"{model.value}: multistage beats crossbar from {where} (k={args.k})"
        )
    return "\n".join(lines)


def _cmd_capacity(args: argparse.Namespace) -> str:
    points = capacity_growth(args.n_ports, list(range(1, args.k_max + 1)))
    rows = []
    for point in points:
        rows.append(
            [
                point.k,
                *(f"{point.log10_full[m.value]:.1f}" for m in MulticastModel),
                *(f"{point.log10_any[m.value]:.1f}" for m in MulticastModel),
            ]
        )
    return render_table(
        ["k", "MSW full", "MSDW full", "MAW full", "MSW any", "MSDW any", "MAW any"],
        rows,
        title=f"log10 multicast capacity -- N={args.n_ports}",
    )


def _cmd_blocking(args: argparse.Namespace) -> str:
    traffic = _traffic(args, adversarial=args.adversarial)
    with obs.capture() as run:
        estimates = api.sweep(
            args.n,
            args.r,
            args.k,
            list(range(1, args.m_max + 1)),
            model=args.model,
            construction=args.construction,
            x=args.x,
            traffic=traffic,
            fabric=args.fabric,
            execution=_exec_config(args),
            search=api.SearchConfig(kernel=args.kernel),
        )
    rows = [
        [e.m, e.attempts, e.blocked, f"{e.probability:.4f}", _ci_cell(e)]
        for e in estimates
    ]
    fabric_note = "" if args.fabric == "clos" else f", {args.fabric} fabric"
    table = render_table(
        ["m", "attempts", "blocked", "P(block)", "CI95"],
        rows,
        title=(
            f"Blocking probability -- n={args.n}, r={args.r}, k={args.k}, "
            f"x={args.x}, {args.model.value}, {args.construction.value}, "
            f"{traffic.workload} traffic{fabric_note}"
        ),
    )
    footer = []
    plan = estimates[0].meta.plan if estimates and estimates[0].meta else None
    if plan is not None and args.jobs != 1:
        note = f" ({plan['reason']})" if plan["reason"] else ""
        footer.append(
            f"executor: {plan['executor']}, jobs={plan['resolved_jobs']}{note}"
        )
    footer.extend(_cache_summary(args, run.metrics.snapshot()["counters"]))
    return "\n".join([table, *footer])


def _cmd_sweep(args: argparse.Namespace) -> str:
    if args.resume:
        args.cache = True
    precision = api.PrecisionConfig(
        half_width=args.ci_halfwidth,
        relative=args.ci_relative,
        level=args.ci_level,
        min_rounds=args.min_rounds,
        max_rounds=args.max_rounds,
    )
    traffic = _traffic(args, steps=args.steps)
    try:
        traffic.validate_precision(precision, args.steps)
    except ValueError as exc:
        raise SystemExit(f"wdm-repro: error: {exc}") from exc
    with obs.capture() as run:
        estimates = api.sweep(
            args.n,
            args.r,
            args.k,
            list(range(1, args.m_max + 1)),
            model=args.model,
            construction=args.construction,
            x=args.x,
            traffic=traffic,
            fabric=args.fabric,
            execution=_exec_config(args, precision),
            search=api.SearchConfig(kernel=args.kernel),
        )
    rows = []
    for e in estimates:
        info = e.adaptive
        rows.append(
            [
                e.m,
                e.attempts,
                e.blocked,
                f"{e.probability:.4f}",
                _ci_cell(e),
                info.rounds,
                info.events,
                "yes" if info.converged else "NO",
            ]
        )
    percent = f"{args.ci_level:.0%}"
    target = (
        f"{args.ci_halfwidth:.0%} relative"
        if args.ci_relative
        else f"{args.ci_halfwidth:g} absolute"
    )
    fabric_note = "" if args.fabric == "clos" else f", {args.fabric} fabric"
    table = render_table(
        ["m", "attempts", "blocked", "P(block)", f"CI{percent[:-1]}", "rounds",
         "events", "converged"],
        rows,
        title=(
            f"Adaptive blocking sweep -- n={args.n}, r={args.r}, k={args.k}, "
            f"x={args.x}, {args.model.value}, {args.construction.value}, "
            f"{traffic.workload} traffic{fabric_note}; "
            f"target half-width {target} at {percent}"
        ),
    )
    footer = [
        f"events: {sum(e.adaptive.events for e in estimates)} total "
        f"(fixed budget at the widest cell would need "
        f"{max(e.adaptive.events for e in estimates) * len(estimates)})"
    ]
    unconverged = [e.m for e in estimates if not e.adaptive.converged]
    if unconverged:
        footer.append(
            f"warning: m={unconverged} hit --max-rounds before the target; "
            "raise --max-rounds or loosen --ci-halfwidth"
        )
    footer.extend(_cache_summary(args, run.metrics.snapshot()["counters"]))
    return "\n".join([table, *footer])


def _cmd_fig10(args: argparse.Namespace) -> str:
    outcome = fig10_scenario()
    lines = [
        "Fig. 10 scenario -- v(n=2, r=2, m=2, k=2), MAW model, x=1",
        "prior connections:",
        *(f"  {connection}" for connection in outcome.connections),
        f"contested request: {outcome.contested}",
        f"MSW-dominant construction: "
        f"{'BLOCKED' if outcome.msw_dominant_blocked else 'routed'}",
        f"MAW-dominant construction: "
        f"{'BLOCKED' if outcome.maw_dominant_blocked else 'routed'}",
    ]
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> str:
    import io
    import json

    sink = io.StringIO()
    tracer = obs.Tracer(sink)
    with obs.capture(tracer=tracer):
        if args.scenario == "fig10":
            fig10_scenario()
        else:
            api.blocking(
                args.n, args.r, args.m, args.k,
                model=args.model,
                construction=args.construction,
                x=args.x,
                traffic=api.UniformConfig(
                    steps=args.steps,
                    seeds=tuple(int(s) for s in args.seeds.split(",")),
                ),
            )
    tracer.close()
    payload = sink.getvalue()
    records = [json.loads(line) for line in payload.splitlines()]
    for record in records:
        obs.validate_record(record)
    if args.trace_out == "-":
        return payload.rstrip("\n")
    with open(args.trace_out, "w", encoding="utf-8") as handle:
        handle.write(payload)
    summary = records[-1]
    return (
        f"trace written to {args.trace_out} ({len(records)} records; "
        f"{summary['admitted']} admitted, {summary['blocked']} blocked)"
    )


def _cmd_gap(args: argparse.Namespace) -> str:
    from repro.core.corrected import min_middle_switches_corrected
    from repro.core.multistage import min_middle_switches_msw_dominant
    from repro.multistage.adversary import demonstrate_theorem1_gap

    result = demonstrate_theorem1_gap(args.n, args.r, args.k, args.model)
    lines = [
        "Theorem-1 gap demonstration (reproduction finding)",
        f"  network: v(n={args.n}, r={args.r}, m, k={args.k}), "
        f"{args.model.value} model, MSW-dominant construction, x=1",
        f"  paper Theorem 1 minimum:      m = {result.m_paper}  -> "
        f"{'BLOCKED by adversarial legal traffic' if result.blocked_at_paper_bound else 'routed'}",
        f"  corrected model-aware bound:  m = {result.m_corrected}  -> "
        f"{'routed' if result.routed_at_corrected_bound else 'BLOCKED'}",
        "",
        "  corrected sufficient condition: m > (n-1)x + (nk-1) r^(1/x)",
        "  (the paper's reduction to one wavelength misses that MSDW/MAW",
        "   output stages let nk-1 lambda-sourced connections terminate at",
        "   one output module, each through a different middle switch).",
    ]
    # Scaling table.
    lines.append("")
    lines.append("  paper vs corrected minima at n=8, r=16 (MAW model):")
    for k in (1, 2, 4, 8):
        paper = min_middle_switches_msw_dominant(8, 16, k)
        corrected = min_middle_switches_corrected(
            8, 16, k, Construction.MSW_DOMINANT, MulticastModel.MAW
        )
        lines.append(f"    k={k}: paper m={paper}, corrected m={corrected}")
    return "\n".join(lines)


def _cmd_kernels(args: argparse.Namespace) -> str:
    import os

    from repro.engine.backends import (
        BACKEND_ENV,
        NUMPY_WORD_BITS,
        available_backends,
        backend_status,
        resolve_backend,
    )
    from repro.engine.planes import PlaneLayout
    from repro.multistage.routing import _KERNELS, get_routing_kernel

    available = set(available_backends())
    status = backend_status()
    backends = sorted(status)
    rows = []
    for kernel in _KERNELS:
        cells = []
        for backend in backends:
            if kernel != "batched":
                # Serial single-request kernels never touch a state
                # backend; only the lockstep replay is parameterized.
                cells.append("n/a")
            elif backend in available:
                cells.append("yes")
            else:
                cells.append("not installed")
        rows.append([kernel, *cells])
    table = render_table(
        ["kernel", *backends],
        rows,
        title="Routing kernels x batch state backends",
    )
    override = os.environ.get(BACKEND_ENV, "").strip()
    lines = [
        table,
        "backend status:",
        *(f"  {backend}: {status[backend]}" for backend in backends),
        f"active routing kernel: {get_routing_kernel()}",
        f"auto backend resolves to: "
        f"{resolve_backend('auto', m_max=1, r=1, k=1)}",
        f"{BACKEND_ENV}={override}" if override else f"{BACKEND_ENV}: (unset)",
        f"plane width: W = ceil(max(m, r, k) / {NUMPY_WORD_BITS}) int64 "
        f"words per mask (multi-word above {NUMPY_WORD_BITS}; e.g. "
        f"m=r=k=100 -> W="
        f"{PlaneLayout.for_fabric(100, 100, 100).width})",
    ]
    return "\n".join(lines)


def _cmd_fabrics(args: argparse.Namespace) -> str:
    from repro.engine.backends import NUMPY_WORD_BITS, available_backends, backend_status
    from repro.engine.fabrics import fabric_status, get_fabric
    from repro.engine.planes import PlaneLayout

    status = fabric_status()
    backend_avail = set(available_backends())
    backends = sorted(backend_status())
    rows = []
    for name in status:
        spec = get_fabric(name)
        cells = []
        for backend in backends:
            if spec.nonblocking:
                # The nonblocking fast path counts setup ops without
                # replaying state, so no backend is ever consulted.
                cells.append("n/a (no replay)")
            elif backend in backend_avail:
                cells.append("yes")
            else:
                cells.append("not installed")
        constructions = (
            ", ".join(c.name for c in spec.constructions)
            if spec.constructions
            else "any"
        )
        rows.append([name, *cells, constructions])
    table = render_table(
        ["fabric", *backends, "constructions"],
        rows,
        title="Fabric models x batch state backends",
    )
    lines = [
        table,
        "fabric notes:",
        *(f"  {name}: {status[name]}" for name in status),
        f"plane width: W = ceil(max(m, r, k) / {NUMPY_WORD_BITS}) int64 "
        f"words per mask, identical for every fabric (e.g. m=r=k=100 -> "
        f"W={PlaneLayout.for_fabric(100, 100, 100).width})",
        "select with --fabric NAME (blocking/sweep); 'clos' is the "
        "paper's three-stage network and the default.",
    ]
    return "\n".join(lines)


def _cmd_workloads(args: argparse.Namespace) -> str:
    from repro.workloads import workload_class, workload_names
    from repro.workloads.base import WorkloadConfig as WorkloadConfigBase

    rows = []
    for name in workload_names():
        cls = workload_class(name)
        fields = cls.shape_fields()
        params = (
            ", ".join(f"{f.name}={f.default!r}" for f in fields)
            if fields
            else "-"
        )
        overrides_precision = (
            cls.validate_precision is not WorkloadConfigBase.validate_precision
        )
        adaptive = "no (fixed recording)" if overrides_precision else "yes"
        rows.append([name, params, adaptive])
    table = render_table(
        ["workload", "shape parameters (defaults)", "adaptive"],
        rows,
        title="Registered traffic workloads",
    )
    lines = [
        table,
        "workload notes:",
        *(
            f"  {name}: {workload_class(name).describe()}"
            for name in workload_names()
        ),
        "select with --workload NAME --workload-param key=value "
        "(blocking/sweep);",
        "record any workload to a replayable file with "
        "'wdm-repro trace-gen'.",
    ]
    return "\n".join(lines)


def _cmd_trace_gen(args: argparse.Namespace) -> str:
    from repro.workloads import generate_trace

    traffic = _traffic(args)
    n_ports = args.n * args.r
    count = generate_trace(
        traffic,
        args.out,
        args.model,
        n_ports,
        args.k,
        steps=args.steps,
        seed=args.seed,
        max_fanout=args.max_fanout,
    )
    return (
        f"trace written to {args.out} ({count} events; workload "
        f"{traffic.workload}, {args.model.value}, N={n_ports}, k={args.k}, "
        f"seed {args.seed}); replay with --workload trace "
        f"--workload-param path={args.out}"
    )


def _cmd_design(args: argparse.Namespace) -> str:
    design = optimal_design(args.n_ports, args.k, args.model, args.construction)
    recursive = best_recursive_design(args.n_ports, args.k, args.model)
    lines = [
        f"Optimal three-stage design for N={args.n_ports}, k={args.k}, "
        f"model {args.model.value} ({args.construction.value}):",
        f"  n={design.n} r={design.r} m={design.m} x={design.x}",
        f"  crosspoints: {design.cost.crosspoints}"
        f"  (crossbar: {args.k * args.n_ports**2 if args.model is MulticastModel.MSW else args.k**2 * args.n_ports**2})",
        f"  converters:  {design.cost.converters}",
        f"Best recursive design ({recursive.stages} stages): "
        f"{recursive.crosspoints} crosspoints, {recursive.converters} converters",
        recursive.describe(indent=1),
    ]
    return "\n".join(lines)


def _cmd_exact(args: argparse.Namespace) -> str:
    from repro.core.corrected import min_middle_switches_corrected
    from repro.multistage.offline import minimal_rearrangeable_m

    with obs.capture() as run:
        result = api.exact_m(
            args.n, args.r, args.k,
            model=args.model, construction=args.construction, x=args.x,
            state_budget=args.budget,
            execution=_exec_config(args),
            search=api.SearchConfig(canonicalize=not args.no_canonicalize),
        )
    lines = [
        f"exact thresholds for v(n={args.n}, r={args.r}, m, k={args.k}), "
        f"{args.model.value}, {args.construction.value}, x={args.x}:",
    ]
    for per_m in result.per_m:
        verdict = {True: "blockable", False: "nonblocking", None: "budget exceeded"}[
            per_m.blockable
        ]
        lines.append(
            f"  m={per_m.m}: {verdict} ({per_m.states_explored} states explored)"
        )
    sufficient = min_middle_switches_corrected(
        args.n, args.r, args.k, args.construction, args.model, x=args.x
    )
    lines.append(f"  sufficient (corrected) bound: m = {sufficient}")
    if result.m_exact is not None:
        lines.append(f"  exact strict-sense threshold: m = {result.m_exact}")
        if args.rearrangeable:
            m_rearr, _ = minimal_rearrangeable_m(
                args.n, args.r, args.k,
                model=args.model, construction=args.construction, x=args.x,
            )
            lines.append(f"  exact rearrangeable threshold: m = {m_rearr}")
    else:
        lines.append("  exact threshold: inconclusive within the state budget")
    lines.extend(_cache_summary(args, run.metrics.snapshot()["counters"]))
    return "\n".join(lines)


def _cmd_load(args: argparse.Namespace) -> str:
    from repro.analysis.rendering import render_table
    from repro.analysis.traffic import loss_vs_load

    points = loss_vs_load(
        args.n, args.r, args.m, args.k,
        [float(v) for v in args.loads.split(",")],
        model=args.model, construction=args.construction, x=args.x,
        arrivals=args.arrivals,
    )
    rows = [
        [
            f"{p.offered_erlangs:.1f}",
            f"{p.fabric_loss_probability:.4f}",
            f"{p.endpoint_busy_probability:.4f}",
            f"{p.mean_carried:.2f}",
        ]
        for p in points
    ]
    return render_table(
        ["offered (Erl)", "P(fabric loss)", "P(endpoint busy)", "mean carried"],
        rows,
        title=(
            f"Offered-load study -- v({args.n},{args.r},{args.m},{args.k}), "
            f"{args.model.value}, x={args.x}"
        ),
    )


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.analysis.report import generate_report

    report = generate_report(n_ports=args.n_ports, k=args.k, fast=args.fast)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        return f"report written to {args.output}"
    return report


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="wdm-repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: capacity and cost per model")
    p.add_argument("--n-ports", type=int, default=4)
    p.add_argument("--k", type=int, default=2)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="Table 2: crossbar vs multistage cost")
    p.add_argument("--n-ports", type=int, default=256)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("bounds", help="Theorem 1/2 m(x) profiles")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--r", type=int, default=8)
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("crossover", help="where multistage beats crossbar")
    p.add_argument("--k", type=int, default=4)
    p.set_defaults(func=_cmd_crossover)

    p = sub.add_parser("capacity", help="capacity growth with k")
    p.add_argument("--n-ports", type=int, default=8)
    p.add_argument("--k-max", type=int, default=6)
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("blocking", help="Monte-Carlo blocking vs m")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--r", type=int, default=3)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--m-max", type=int, default=9)
    p.add_argument("--x", type=int, default=1)
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.add_argument("--adversarial", action="store_true")
    _add_fabric_flag(p)
    _add_workload_flags(p)
    p.add_argument(
        "--kernel",
        type=_kernel,
        default=None,
        metavar="{reference,bitmask,batched}",
        help="simulation kernel: 'bitmask' (default) runs cells one at a "
        "time on the int-mask cover search, 'batched' replays each "
        "seed's traffic against every m in lockstep (same numbers, "
        "fastest), 'reference' is the frozenset oracle; results are "
        "bit-identical across all three",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="B",
        help="with --kernel batched: cap on lockstep replications per "
        "work unit (default: one unit per seed); never affects results",
    )
    p.add_argument(
        "--backend",
        type=_backend,
        default="auto",
        metavar="{auto,python,numpy,numba}",
        help="with --kernel batched: fabric-state backend for the "
        "lockstep replay ('auto' prefers the fused numba kernel when "
        "usable, else python); bit-identical across backends -- see "
        "'wdm-repro kernels' for availability",
    )
    p.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker processes for the sweep ('auto' or 0 = adapt to the "
        "host); results are identical for any value",
    )
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_blocking)

    p = sub.add_parser(
        "sweep",
        help="adaptive blocking-vs-m sweep: sample each m until its "
        "confidence interval meets a precision target",
    )
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--r", type=int, default=3)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--m-max", type=int, default=9)
    p.add_argument("--x", type=int, default=1)
    p.add_argument("--steps", type=int, default=1500)
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    _add_fabric_flag(p)
    _add_workload_flags(p)
    p.add_argument(
        "--ci-halfwidth",
        type=float,
        default=0.01,
        metavar="H",
        help="target 95%% (see --ci-level) confidence half-width per "
        "curve point; absolute unless --ci-relative",
    )
    p.add_argument(
        "--ci-relative",
        action="store_true",
        help="interpret --ci-halfwidth relative to each point estimate "
        "(0.1 = 10%% relative precision)",
    )
    p.add_argument(
        "--ci-level",
        type=float,
        default=0.95,
        metavar="L",
        help="confidence level of the Wilson interval the stopping rule "
        "tests",
    )
    p.add_argument("--min-rounds", type=int, default=2)
    p.add_argument("--max-rounds", type=int, default=64)
    p.add_argument(
        "--kernel",
        type=_kernel,
        default=None,
        metavar="{reference,bitmask,batched}",
        help="simulation kernel (see 'wdm-repro blocking --help'); "
        "bit-identical across all three",
    )
    p.add_argument(
        "--backend",
        type=_backend,
        default="auto",
        metavar="{auto,python,numpy,numba}",
        help="with --kernel batched: fabric-state backend for the "
        "lockstep replay",
    )
    p.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker processes per round ('auto' or 0 = adapt to the "
        "host); results are identical for any value",
    )
    _add_cache_flags(p)
    p.add_argument(
        "--resume",
        action="store_true",
        help="shorthand for --cache: completed rounds persist in "
        "--cache-dir, so re-running an interrupted sweep replays warm "
        "rounds and continues bit-identically",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("fig10", help="the Fig. 10 blocking scenario")
    p.set_defaults(func=_cmd_fig10)

    p = sub.add_parser(
        "trace",
        help="JSONL event trace (admit/block/release + blocking cause)",
    )
    p.add_argument(
        "scenario",
        choices=("fig10", "blocking"),
        help="'fig10' replays the Fig. 10 contested request; 'blocking' "
        "traces a Monte-Carlo run of v(n,r,m,k)",
    )
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--r", type=int, default=2)
    p.add_argument("--m", type=int, default=2)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--x", type=int, default=1)
    p.add_argument("--steps", type=int, default=300)
    p.add_argument("--seeds", type=str, default="0")
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.add_argument(
        "--trace-out",
        type=str,
        default="-",
        help="output path for the JSONL trace, '-' for stdout",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "exact", help="model-check the exact nonblocking threshold (tiny nets)"
    )
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--r", type=int, default=2)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--x", type=int, default=1)
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.add_argument("--budget", type=int, default=200_000)
    p.add_argument("--rearrangeable", action="store_true")
    p.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker processes for the m-candidate scan ('auto' or 0 = "
        "adapt to the host)",
    )
    p.add_argument(
        "--no-canonicalize",
        action="store_true",
        help="disable symmetry canonicalization (the slow reference "
        "search; verdicts are identical either way)",
    )
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_exact)

    p = sub.add_parser("load", help="loss vs offered Erlang load")
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--r", type=int, default=3)
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--x", type=int, default=1)
    p.add_argument("--loads", type=str, default="1,4,12")
    p.add_argument("--arrivals", type=int, default=1500)
    p.add_argument("--model", type=_model, default=MulticastModel.MAW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.set_defaults(func=_cmd_load)

    p = sub.add_parser("report", help="regenerate every artifact as markdown")
    p.add_argument("--n-ports", type=int, default=256)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--output", type=str, default=None)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "gap", help="the Theorem-1 gap for MSDW/MAW models (finding)"
    )
    p.add_argument("--n", type=int, default=2)
    p.add_argument("--r", type=int, default=3)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--model", type=_model, default=MulticastModel.MAW)
    p.set_defaults(func=_cmd_gap)

    p = sub.add_parser(
        "kernels",
        help="kernel x backend availability matrix (and active overrides)",
    )
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser(
        "fabrics",
        help="fabric model x backend availability matrix (topology zoo)",
    )
    p.set_defaults(func=_cmd_fabrics)

    p = sub.add_parser(
        "workloads",
        help="registered traffic workloads and their shape parameters",
    )
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser(
        "trace-gen",
        help="record a workload replication as a replayable trace file",
    )
    p.add_argument(
        "--out",
        type=str,
        required=True,
        help="output path; '.csv' writes CSV, anything else JSONL",
    )
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--r", type=int, default=3)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--steps", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-fanout", type=int, default=None)
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    _add_workload_flags(p)
    p.set_defaults(func=_cmd_trace_gen)

    p = sub.add_parser("design", help="optimal multistage + recursive design")
    p.add_argument("--n-ports", type=int, default=1024)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--model", type=_model, default=MulticastModel.MSW)
    p.add_argument("--construction", type=_construction, default=Construction.MSW_DOMINANT)
    p.set_defaults(func=_cmd_design)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.func(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
