"""Interchangeable fabric-state backends behind one protocol.

A :class:`FabricState` holds the occupancy bitplanes of ``B``
replications of one fabric family (same ``n, r, k``, construction,
model and ``x``; per-replication ``m``) and exposes exactly three
operations to the admission kernels:

* :meth:`~FabricState.setup_views` -- the per-replication first-stage
  blocked masks and second-stage blocker rows for a setup at
  ``(input module, source wavelength)``;
* :meth:`~FabricState.allocate` -- commit one replication's cover,
  returning the branch tuple needed to undo it;
* :meth:`~FabricState.free` -- release a previously allocated branch
  tuple.

Two backends implement it bit-identically:

* :class:`PythonState` -- nested lists of unbounded ints (bitplanes);
  no dependencies, and the fastest backend on CPython for paper-scale
  networks;
* :class:`NumpyState` -- the same masks packed into ``int64``
  structure-of-arrays (one row per replication), which vectorizes the
  per-event view extraction across the batch; mask families wider than
  one signed word get a trailing word axis per the fabric's
  :class:`~repro.engine.planes.PlaneLayout` (``W == 1`` keeps the
  historical single-word layout bit for bit).

The storage layouts are chosen so :meth:`~FabricState.setup_views` is
(near) allocation-free: the python backend keeps the batch axis
innermost on the blocked planes and outermost on the blocker rows, so
both views are plain sub-list references; the numpy backend slices and
``.tolist()``-s, which is one vectorized pass.  A future numba/CUDA
backend plugs in through :func:`repro.engine.backends.register_backend`
by conforming to this protocol.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Protocol

from repro.engine.geometry import FabricGeometry
from repro.engine.planes import (
    WORD_BITS,
    WORD_MASK,
    PlaneLayout,
    combine_words,
    join_words,
)

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = ["FabricState", "NumpyState", "PythonState"]

#: branch tuples -- ``(j, assigned_mask)`` per middle under the
#: MSW-dominant construction, ``(j, in_wavelength, deliveries)`` with
#: ``deliveries = ((p, out_wavelength), ...)`` under MAW-dominant.
Branches = tuple[tuple[Any, ...], ...]


class FabricState(Protocol):
    """Protocol every fabric-state backend conforms to."""

    geometries: tuple[FabricGeometry, ...]
    batch: int
    x: int
    msw_dominant: bool
    all_masks: list[int]
    failed_mask: int
    plane_layout: PlaneLayout
    #: ``[b][sw]`` -> modules no middle can reach on that wavelength
    #: (the fabric model's static routing constraint); None for fabrics
    #: without one (the Clos -- the bitplanes then start all-zero,
    #: byte-identical to the pre-seam layout).
    static_unreach_masks: list[list[int]] | None

    def setup_views(
        self, g: int, sw: int
    ) -> tuple[Sequence[int], Sequence[Sequence[int]]]:
        """Per-replication ``(blocked masks, blocker rows)`` for a setup.

        ``blocked[b]`` is the first-stage blocked-middles mask out of
        input module ``g`` (source wavelength busy under MSW-dominant,
        fiber full under MAW-dominant); ``blockers[b][j]`` is the
        output-module mask middle ``j`` can *not* reach (second-stage
        fiber busy on the needed wavelength, or full when the model
        leaves the delivery wavelength free).
        """
        ...

    def allocate(
        self, b: int, g: int, sw: int, cover: Mapping[int, int]
    ) -> Branches:
        """Commit ``cover`` on replication ``b``; returns undo branches."""
        ...

    def free(self, b: int, g: int, sw: int, branches: Branches) -> None:
        """Release branches previously returned by :meth:`allocate`."""
        ...


def _check_family(geometries: tuple[FabricGeometry, ...]) -> None:
    if not geometries:
        raise ValueError("need at least one FabricGeometry")
    head = geometries[0]
    for geo in geometries[1:]:
        if geo.with_m(head.m) != head:
            raise ValueError(
                "batched state needs one fabric family (same n, r, k, "
                f"construction, model, x, fabric); got {head} vs {geo}"
            )


def _static_masks(
    geometries: tuple[FabricGeometry, ...],
) -> tuple[list[list[list[int]]], list[list[int]]] | None:
    """The fabric model's static blocker seed, or None for Clos-like fabrics.

    Returns ``(blocks, unreach)`` where ``blocks[b][sw][j]`` is the
    module mask middle ``j`` can never reach on wavelength ``sw`` in
    replication ``b`` (OR-ed into the second-stage blocker planes at
    construction -- ``allocate``/``free`` only ever touch assigned
    bits, which are disjoint from the statics, so the seed persists)
    and ``unreach[b][sw]`` is their intersection over the middles --
    the ``awg_no_path`` evidence mask.
    """
    head = geometries[0]
    spec = head.fabric_spec
    if spec.reach_rule is None:
        return None
    r, k = head.r, head.k
    all_modules = (1 << r) - 1
    blocks: list[list[list[int]]] = []
    unreach: list[list[int]] = []
    for geo in geometries:
        per_sw_blocks: list[list[int]] = []
        per_sw_unreach: list[int] = []
        for sw in range(k):
            row = [spec.reach_rule(j, sw, r, k) for j in range(geo.m)]
            acc = all_modules
            for mask in row:
                acc &= mask
            per_sw_blocks.append(row)
            per_sw_unreach.append(acc)
        blocks.append(per_sw_blocks)
        unreach.append(per_sw_unreach)
    return blocks, unreach


def _set_bit(row: Any, bit: int) -> None:
    """Set one bit in a little-endian word row (1-D int64 view)."""
    row[bit // WORD_BITS] |= 1 << (bit % WORD_BITS)


def _clear_bit(row: Any, bit: int) -> None:
    """Clear one bit in a little-endian word row (1-D int64 view)."""
    row[bit // WORD_BITS] &= ~(1 << (bit % WORD_BITS))


def _or_mask(row: Any, mask: int) -> None:
    """OR a (possibly wide) Python-int mask into a word row."""
    wi = 0
    while mask:
        row[wi] |= mask & WORD_MASK
        mask >>= WORD_BITS
        wi += 1


def _andnot_mask(row: Any, mask: int) -> None:
    """Clear a (possibly wide) Python-int mask's bits in a word row."""
    wi = 0
    while mask:
        row[wi] &= ~(mask & WORD_MASK)
        mask >>= WORD_BITS
        wi += 1


class PythonState:
    """Int-bitplane fabric state (the dependency-free backend).

    Per replication ``b`` the whole fabric is a handful of bitplanes --
    exactly the network's ``_in_mid_busy``/``_in_mid_full``/
    ``_mid_out_busy``/``_mid_out_full`` caches, transposed so the
    per-event views are sub-list references:

    * MSW-dominant: ``in_busy[g][w][b]`` (middles whose first-stage
      fiber from ``g`` carries ``w``) and ``out_busy[w][b][j]`` (output
      modules whose second-stage fiber from ``j`` carries ``w``);
    * MAW-dominant: per-fiber wavelength masks ``in_wave[g][b][j]`` /
      ``out_wave[b][j][p]`` with their aggregated full-fiber planes
      ``in_full[g][b]`` / ``out_full[b][j]``; ``out_busy[w][b][j]`` is
      maintained too and drives reachability when the endpoint model is
      MSW (delivery wavelength pinned to the source's).

    Wavelength picks replicate first-fit (lowest free bit), the
    Monte-Carlo networks' policy.
    """

    def __init__(self, geometries: Iterable[FabricGeometry]):
        geos = tuple(geometries)
        _check_family(geos)
        head = geos[0]
        self.geometries = geos
        self.batch = len(geos)
        self.x = head.x
        self.msw_dominant = head.msw_dominant
        self.all_masks = [geo.all_middles_mask for geo in geos]
        self.failed_mask = 0
        self.plane_layout = PlaneLayout.for_fabric(
            max(geo.m for geo in geos), head.r, head.k
        )
        self._model_msw = head.model_msw
        self._k_full = head.k_full
        r, k, batch = head.r, head.k, self.batch
        m_values = [geo.m for geo in geos]
        self._out_busy = [
            [[0] * m for m in m_values] for _ in range(k)
        ]
        if self.msw_dominant:
            self._in_busy = [
                [[0] * batch for _ in range(k)] for _ in range(r)
            ]
        else:
            self._in_wave = [[[0] * m for m in m_values] for _ in range(r)]
            self._in_full = [[0] * batch for _ in range(r)]
            self._out_wave = [[[0] * r for _ in range(m)] for m in m_values]
            self._out_full = [[0] * m for m in m_values]
        self.static_unreach_masks: list[list[int]] | None = None
        seed = _static_masks(geos)
        if seed is not None:
            blocks, self.static_unreach_masks = seed
            for b in range(batch):
                for sw in range(k):
                    row = self._out_busy[sw][b]
                    for j, blk in enumerate(blocks[b][sw]):
                        row[j] |= blk

    def setup_views(
        self, g: int, sw: int
    ) -> tuple[Sequence[int], Sequence[Sequence[int]]]:
        if self.msw_dominant:
            return self._in_busy[g][sw], self._out_busy[sw]
        if self._model_msw:
            return self._in_full[g], self._out_busy[sw]
        return self._in_full[g], self._out_full

    def allocate(
        self, b: int, g: int, sw: int, cover: Mapping[int, int]
    ) -> Branches:
        branches: list[tuple[Any, ...]] = []
        if self.msw_dominant:
            row = self._out_busy[sw][b]
            busy_row = self._in_busy[g][sw]
            busy = busy_row[b]
            for j in sorted(cover):
                assigned = cover[j]
                busy |= 1 << j
                row[j] |= assigned
                branches.append((j, assigned))
            busy_row[b] = busy
            return tuple(branches)
        k_full = self._k_full
        waves = self._in_wave[g][b]
        full_row = self._in_full[g]
        for j in sorted(cover):
            free = k_full & ~waves[j]
            in_w = (free & -free).bit_length() - 1
            waves[j] |= 1 << in_w
            if waves[j] == k_full:
                full_row[b] |= 1 << j
            fiber = self._out_wave[b][j]
            deliveries = []
            assigned = cover[j]
            while assigned:
                low = assigned & -assigned
                assigned ^= low
                p = low.bit_length() - 1
                if self._model_msw:
                    out_w = sw
                else:
                    free_out = k_full & ~fiber[p]
                    out_w = (free_out & -free_out).bit_length() - 1
                fiber[p] |= 1 << out_w
                if fiber[p] == k_full:
                    self._out_full[b][j] |= 1 << p
                self._out_busy[out_w][b][j] |= 1 << p
                deliveries.append((p, out_w))
            branches.append((j, in_w, tuple(deliveries)))
        return tuple(branches)

    def free(self, b: int, g: int, sw: int, branches: Branches) -> None:
        if self.msw_dominant:
            row = self._out_busy[sw][b]
            busy_row = self._in_busy[g][sw]
            busy = busy_row[b]
            for j, assigned in branches:
                busy &= ~(1 << j)
                row[j] &= ~assigned
            busy_row[b] = busy
            return
        k_full = self._k_full
        waves = self._in_wave[g][b]
        full_row = self._in_full[g]
        for j, in_w, deliveries in branches:
            if waves[j] == k_full:
                full_row[b] &= ~(1 << j)
            waves[j] &= ~(1 << in_w)
            fiber = self._out_wave[b][j]
            for p, out_w in deliveries:
                if fiber[p] == k_full:
                    self._out_full[b][j] &= ~(1 << p)
                fiber[p] &= ~(1 << out_w)
                self._out_busy[out_w][b][j] &= ~(1 << p)


class NumpyState:
    """Int64 structure-of-arrays fabric state (vectorized views).

    Same event-level decisions as :class:`PythonState`, bit for bit;
    the batch dimension is the leading axis of every array, so the
    per-event views for *all* replications come out of one vectorized
    slice + ``.tolist()`` (the cover search itself then runs per
    replication on plain ints).  When any of ``m, r, k`` exceeds one
    signed word (:data:`~repro.engine.planes.WORD_BITS` bits), the
    affected planes carry a trailing little-endian word axis
    (``[..., W]``) and the views combine words back into Python ints in
    one vectorized pass per word; the ``W == 1`` layout is unchanged
    from the single-word backend, bit for bit and byte for byte.
    """

    def __init__(self, geometries: Iterable[FabricGeometry]):
        if _np is None:  # pragma: no cover - registry gates first
            raise ValueError("NumpyState requires numpy")
        geos = tuple(geometries)
        _check_family(geos)
        head = geos[0]
        self.geometries = geos
        self.batch = len(geos)
        self.x = head.x
        self.msw_dominant = head.msw_dominant
        self.all_masks = [geo.all_middles_mask for geo in geos]
        self.failed_mask = 0
        self._model_msw = head.model_msw
        self._k_full = head.k_full
        r, k, batch = head.r, head.k, self.batch
        m_max = max(geo.m for geo in geos)
        layout = PlaneLayout.for_fabric(m_max, r, k)
        self.plane_layout = layout
        self._multiword = layout.multiword
        if not self._multiword:
            self._out_busy = _np.zeros((batch, m_max, k), dtype=_np.int64)
            if self.msw_dominant:
                self._in_busy = _np.zeros((batch, r, k), dtype=_np.int64)
            else:
                self._in_wave = _np.zeros((batch, r, m_max), dtype=_np.int64)
                self._in_full = _np.zeros((batch, r), dtype=_np.int64)
                self._out_wave = _np.zeros((batch, m_max, r), dtype=_np.int64)
                self._out_full = _np.zeros((batch, m_max), dtype=_np.int64)
        else:
            wm, wr, wk = layout.m_words, layout.r_words, layout.k_words
            self._out_busy = _np.zeros((batch, m_max, k, wr), dtype=_np.int64)
            if self.msw_dominant:
                self._in_busy = _np.zeros((batch, r, k, wm), dtype=_np.int64)
            else:
                self._in_wave = _np.zeros((batch, r, m_max, wk), dtype=_np.int64)
                self._in_full = _np.zeros((batch, r, wm), dtype=_np.int64)
                self._out_wave = _np.zeros((batch, m_max, r, wk), dtype=_np.int64)
                self._out_full = _np.zeros((batch, m_max, wr), dtype=_np.int64)
        self.static_unreach_masks: list[list[int]] | None = None
        seed = _static_masks(geos)
        if seed is not None:
            blocks, self.static_unreach_masks = seed
            for b in range(batch):
                for sw in range(k):
                    for j, blk in enumerate(blocks[b][sw]):
                        if not blk:
                            continue
                        if self._multiword:
                            _or_mask(self._out_busy[b, j, sw], blk)
                        else:
                            self._out_busy[b, j, sw] |= blk

    def setup_views(
        self, g: int, sw: int
    ) -> tuple[Sequence[int], Sequence[Sequence[int]]]:
        if self.msw_dominant:
            blocked = self._in_busy[:, g, sw]
            blockers = self._out_busy[:, :, sw]
        else:
            blocked = self._in_full[:, g]
            blockers = (
                self._out_busy[:, :, sw] if self._model_msw else self._out_full
            )
        if self._multiword:
            return combine_words(blocked).tolist(), combine_words(
                blockers
            ).tolist()
        return blocked.tolist(), blockers.tolist()

    def allocate(
        self, b: int, g: int, sw: int, cover: Mapping[int, int]
    ) -> Branches:
        if self._multiword:
            return self._allocate_mw(b, g, sw, cover)
        branches: list[tuple[Any, ...]] = []
        if self.msw_dominant:
            busy = int(self._in_busy[b, g, sw])
            for j in sorted(cover):
                assigned = cover[j]
                busy |= 1 << j
                self._out_busy[b, j, sw] |= assigned
                branches.append((j, assigned))
            self._in_busy[b, g, sw] = busy
            return tuple(branches)
        k_full = self._k_full
        for j in sorted(cover):
            waves = int(self._in_wave[b, g, j])
            free = k_full & ~waves
            in_w = (free & -free).bit_length() - 1
            waves |= 1 << in_w
            self._in_wave[b, g, j] = waves
            if waves == k_full:
                self._in_full[b, g] |= 1 << j
            deliveries = []
            assigned = cover[j]
            while assigned:
                low = assigned & -assigned
                assigned ^= low
                p = low.bit_length() - 1
                fiber = int(self._out_wave[b, j, p])
                if self._model_msw:
                    out_w = sw
                else:
                    free_out = k_full & ~fiber
                    out_w = (free_out & -free_out).bit_length() - 1
                fiber |= 1 << out_w
                self._out_wave[b, j, p] = fiber
                if fiber == k_full:
                    self._out_full[b, j] |= 1 << p
                self._out_busy[b, j, out_w] |= 1 << p
                deliveries.append((p, out_w))
            branches.append((j, in_w, tuple(deliveries)))
        return tuple(branches)

    def free(self, b: int, g: int, sw: int, branches: Branches) -> None:
        if self._multiword:
            return self._free_mw(b, g, sw, branches)
        if self.msw_dominant:
            busy = int(self._in_busy[b, g, sw])
            for j, assigned in branches:
                busy &= ~(1 << j)
                self._out_busy[b, j, sw] &= ~assigned
            self._in_busy[b, g, sw] = busy
            return
        k_full = self._k_full
        for j, in_w, deliveries in branches:
            waves = int(self._in_wave[b, g, j])
            if waves == k_full:
                self._in_full[b, g] &= ~(1 << j)
            self._in_wave[b, g, j] = waves & ~(1 << in_w)
            for p, out_w in deliveries:
                fiber = int(self._out_wave[b, j, p])
                if fiber == k_full:
                    self._out_full[b, j] &= ~(1 << p)
                self._out_wave[b, j, p] = fiber & ~(1 << out_w)
                self._out_busy[b, j, out_w] &= ~(1 << p)

    # -- multi-word (W > 1) paths; same decisions as above, word rows
    #    addressed through the plane-layout packing ------------------------

    def _allocate_mw(
        self, b: int, g: int, sw: int, cover: Mapping[int, int]
    ) -> Branches:
        branches: list[tuple[Any, ...]] = []
        if self.msw_dominant:
            busy_row = self._in_busy[b, g, sw]
            for j in sorted(cover):
                _set_bit(busy_row, j)
                _or_mask(self._out_busy[b, j, sw], cover[j])
                branches.append((j, cover[j]))
            return tuple(branches)
        k_full = self._k_full
        for j in sorted(cover):
            wave_row = self._in_wave[b, g, j]
            waves = join_words(wave_row)
            free = k_full & ~waves
            in_w = (free & -free).bit_length() - 1
            waves |= 1 << in_w
            _set_bit(wave_row, in_w)
            if waves == k_full:
                _set_bit(self._in_full[b, g], j)
            deliveries = []
            assigned = cover[j]
            while assigned:
                low = assigned & -assigned
                assigned ^= low
                p = low.bit_length() - 1
                fiber_row = self._out_wave[b, j, p]
                fiber = join_words(fiber_row)
                if self._model_msw:
                    out_w = sw
                else:
                    free_out = k_full & ~fiber
                    out_w = (free_out & -free_out).bit_length() - 1
                fiber |= 1 << out_w
                _set_bit(fiber_row, out_w)
                if fiber == k_full:
                    _set_bit(self._out_full[b, j], p)
                _set_bit(self._out_busy[b, j, out_w], p)
                deliveries.append((p, out_w))
            branches.append((j, in_w, tuple(deliveries)))
        return tuple(branches)

    def _free_mw(self, b: int, g: int, sw: int, branches: Branches) -> None:
        if self.msw_dominant:
            busy_row = self._in_busy[b, g, sw]
            for j, assigned in branches:
                _clear_bit(busy_row, j)
                _andnot_mask(self._out_busy[b, j, sw], assigned)
            return
        k_full = self._k_full
        for j, in_w, deliveries in branches:
            wave_row = self._in_wave[b, g, j]
            if join_words(wave_row) == k_full:
                _clear_bit(self._in_full[b, g], j)
            _clear_bit(wave_row, in_w)
            for p, out_w in deliveries:
                fiber_row = self._out_wave[b, j, p]
                if join_words(fiber_row) == k_full:
                    _clear_bit(self._out_full[b, j], p)
                _clear_bit(fiber_row, out_w)
                _clear_bit(self._out_busy[b, j, out_w], p)
