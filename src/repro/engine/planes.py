"""Multi-word bitplane layout -- masks wider than one int64 word.

The structure-of-arrays backends pack every occupancy mask into signed
int64 words of :data:`WORD_BITS` usable bits.  A fabric has three mask
families, one per indexed dimension:

* **middle masks** (``m`` bits) -- first-stage blocked/full planes and
  availability masks;
* **module masks** (``r`` bits) -- destination sets and second-stage
  blocker rows;
* **wavelength masks** (``k`` bits) -- per-fiber carrier sets.

:class:`PlaneLayout` pins down, per family, how many words one mask
occupies (``W = ceil(bits / WORD_BITS)``); ``W == 1`` for every family
is the historical single-word layout, kept bit-identical as the fast
path.  The helpers here are the single source of the packing
arithmetic: scalar :func:`split_mask` / :func:`join_words` for the
per-event protocol boundary (where masks are plain Python ints), and
the vectorized :func:`combine_words` / :func:`planes_and` /
:func:`planes_or` / :func:`planes_andnot` / :func:`planes_popcount` /
:func:`planes_lowest_bit` primitives the numpy state backend and the
benches run over ``[..., W]`` word arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "PlaneLayout",
    "combine_words",
    "join_words",
    "pack_masks",
    "planes_and",
    "planes_andnot",
    "planes_lowest_bit",
    "planes_or",
    "planes_popcount",
    "split_mask",
    "words_needed",
]

#: usable bits per int64 plane word; 62 keeps every word comfortably
#: inside a *signed* int64 (no sign-bit traps in numba or numpy).
WORD_BITS = 62
#: mask selecting one word's bits out of a wide Python int.
WORD_MASK = (1 << WORD_BITS) - 1


def words_needed(bits: int) -> int:
    """Words required for a ``bits``-wide mask (at least one)."""
    return max(1, -(-bits // WORD_BITS))


@dataclass(frozen=True)
class PlaneLayout:
    """Words-per-mask for one fabric's three mask families.

    Attributes:
        m_words: words per middle mask (``ceil(m / WORD_BITS)``).
        r_words: words per output-module mask (``ceil(r / WORD_BITS)``).
        k_words: words per wavelength mask (``ceil(k / WORD_BITS)``).
    """

    m_words: int
    r_words: int
    k_words: int

    @classmethod
    def for_fabric(cls, m: int, r: int, k: int) -> "PlaneLayout":
        """The layout for a ``v(n, r, m, k)`` fabric (n needs no mask)."""
        return cls(
            m_words=words_needed(m),
            r_words=words_needed(r),
            k_words=words_needed(k),
        )

    @property
    def width(self) -> int:
        """The widest family's word count -- the fabric's plane width W."""
        return max(self.m_words, self.r_words, self.k_words)

    @property
    def multiword(self) -> bool:
        """True when any mask family needs more than one int64 word."""
        return self.width > 1

    @property
    def word_bits(self) -> int:
        """Usable bits per word (:data:`WORD_BITS`)."""
        return WORD_BITS


def split_mask(value: int, words: int) -> list[int]:
    """Split a Python-int mask into ``words`` little-endian int64 words."""
    return [(value >> (WORD_BITS * wi)) & WORD_MASK for wi in range(words)]


def join_words(words: Any) -> int:
    """Rejoin little-endian words (any int sequence) into a Python int."""
    value = 0
    for wi, word in enumerate(words):
        value |= int(word) << (WORD_BITS * wi)
    return value


# -- vectorized word-plane primitives ----------------------------------------
#
# All of these operate on int64 arrays whose *last* axis is the word
# axis (shape [..., W]); the word split is data-parallel, so plain
# numpy elementwise ops already are the multi-word AND/OR/ANDNOT.  The
# popcount / lowest-set-bit reductions fold the word axis back out.


def pack_masks(values: Any, words: int) -> Any:
    """Pack a (nested) sequence of Python-int masks into ``[..., words]``."""
    if _np is None:  # pragma: no cover - callers are numpy-gated
        raise ValueError("pack_masks requires numpy")
    base = _np.asarray(values, dtype=object)
    out = _np.empty(base.shape + (words,), dtype=_np.int64)
    for wi in range(words):
        shifted = base
        for _ in range(wi):
            shifted = shifted >> WORD_BITS
        out[..., wi] = (shifted & WORD_MASK).astype(_np.int64)
    return out


def combine_words(planes: Any) -> Any:
    """Join ``[..., W]`` word arrays into an object array of Python ints.

    The word-0 plane converts in one vectorized pass; higher words are
    usually all zero (a nonzero high word means bit ``>= WORD_BITS`` is
    set in that particular mask), so only the masks that actually spill
    past one word pay the big-int join.  When most masks spill, the
    dense one-object-pass-per-word form is cheaper than patching.
    """
    width = planes.shape[-1]
    out = planes[..., 0].astype(object)
    if width == 1:
        return out
    high = planes[..., 1:]
    if not high.any():
        return out
    flat = planes.reshape(-1, width)
    hot = _np.nonzero(high.reshape(-1, width - 1).any(axis=1))[0]
    if hot.size * 4 > flat.shape[0]:
        for wi in range(1, width):
            out |= planes[..., wi].astype(object) << (WORD_BITS * wi)
        return out
    flat_out = out.reshape(-1)
    for i in hot.tolist():
        row = flat[i]
        value = int(row[0])
        for wi in range(1, width):
            value |= int(row[wi]) << (WORD_BITS * wi)
        flat_out[i] = value
    return out


def planes_and(a: Any, b: Any) -> Any:
    """Word-wise AND of two ``[..., W]`` plane arrays."""
    return a & b


def planes_or(a: Any, b: Any) -> Any:
    """Word-wise OR of two ``[..., W]`` plane arrays."""
    return a | b


def planes_andnot(a: Any, b: Any) -> Any:
    """Word-wise AND-NOT (``a & ~b``) of two ``[..., W]`` plane arrays."""
    return a & ~b


def planes_popcount(planes: Any) -> Any:
    """Per-mask popcount of a ``[..., W]`` plane array (word axis folded)."""
    if _np is None:  # pragma: no cover - callers are numpy-gated
        raise ValueError("planes_popcount requires numpy")
    counts = _np.bitwise_count(planes.astype(_np.uint64))
    return counts.sum(axis=-1).astype(_np.int64)


def planes_lowest_bit(planes: Any) -> Any:
    """Per-mask lowest set bit index of ``[..., W]`` planes (-1 when empty).

    Bit indices count across the whole multi-word mask (word ``wi``
    contributes ``wi * WORD_BITS + bit``), matching
    :func:`~repro.engine.cover.iter_bits` numbering.
    """
    if _np is None:  # pragma: no cover - callers are numpy-gated
        raise ValueError("planes_lowest_bit requires numpy")
    words = planes.astype(_np.int64)
    low = words & -words
    # log2 of an isolated bit is exact in float64 up to 2**62.
    idx = _np.where(
        low > 0, _np.log2(low.astype(_np.float64)).astype(_np.int64), -1
    )
    offsets = _np.arange(words.shape[-1], dtype=_np.int64) * WORD_BITS
    flat = _np.where(idx >= 0, idx + offsets, _np.iinfo(_np.int64).max)
    best = flat.min(axis=-1)
    return _np.where(best == _np.iinfo(_np.int64).max, -1, best)
