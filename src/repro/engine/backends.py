"""Fabric-state backend registry -- the numba/CUDA seam.

One place decides which :class:`~repro.engine.state.FabricState`
implementation a replay runs on: every backend is a
:class:`BackendSpec` (factory + availability probe + plane-width
capability), :func:`resolve_backend` maps a request (``"auto"``, a
concrete name, or the ``WDM_REPRO_BATCH_BACKEND`` environment
override) to a registered backend, checking the geometry's plane width
``W = ceil(bits / 62)`` against the backend's capability with one
uniform error message, and :func:`make_state` then instantiates it.

Three backends ship built in, all width-unlimited (masks wider than
one int64 word get multi-word planes; see
:mod:`repro.engine.planes`):

* ``python`` -- int-bitplane :class:`~repro.engine.state.PythonState`;
  no dependencies, always available;
* ``numpy`` -- int64 structure-of-arrays
  :class:`~repro.engine.state.NumpyState`; needs numpy;
* ``numba`` -- the fused whole-stream replay of
  :mod:`repro.engine.fused`; needs numpy plus numba (or the
  ``WDM_REPRO_FUSED_PY=1`` interpreted-mode testing hook), and is what
  ``auto`` prefers when it can run.

Additional backends (a CUDA kernel, say) plug in through
:func:`register_backend` without touching any consumer; a backend that
only handles single-word planes declares ``max_plane_width=1`` and
:func:`resolve_backend` refuses wider geometries with a message naming
the capability.  :func:`backend_status` feeds the ``wdm-repro
kernels`` availability display.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.engine import fused as _fused
from repro.engine.geometry import FabricGeometry
from repro.engine.planes import WORD_BITS, PlaneLayout
from repro.engine.state import FabricState, NumpyState, PythonState

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "NUMPY_WORD_BITS",
    "BackendSpec",
    "available_backends",
    "backend_status",
    "make_state",
    "plane_width",
    "plane_width_error",
    "register_backend",
    "resolve_backend",
]

#: environment override for ``backend="auto"`` resolution.
BACKEND_ENV = "WDM_REPRO_BATCH_BACKEND"
#: the built-in state backends (``auto`` resolves to one of these).
BACKENDS = ("python", "numpy", "numba")
#: usable bits per int64 plane word -- masks wider than this span
#: ``W = ceil(bits / NUMPY_WORD_BITS)`` words (no longer a hard gate).
NUMPY_WORD_BITS = WORD_BITS


def _always() -> str | None:
    return None


def _numpy_missing() -> str | None:
    return None if _np is not None else "numpy is not installed"


def plane_width(m_max: int, r: int, k: int) -> int:
    """The plane width W (int64 words per widest mask) of a geometry."""
    return PlaneLayout.for_fabric(m_max, r, k).width


@dataclass(frozen=True)
class BackendSpec:
    """One selectable backend: how to build it and whether it can run.

    Attributes:
        factory: builds the backend's :class:`FabricState` from the
            per-replication geometries.
        missing: returns None when the backend can run in this process,
            else the human-readable reason (``"numba is not
            installed"``) -- probed dynamically so environment hooks
            can flip availability without re-importing.
        max_plane_width: the widest plane (int64 words per mask) the
            backend handles; None means unlimited (multi-word planes).
    """

    factory: Callable[[tuple[FabricGeometry, ...]], FabricState]
    missing: Callable[[], str | None] = _always
    max_plane_width: int | None = None

    def available(self) -> bool:
        """True when the backend can run in this process."""
        return self.missing() is None

    def supports_width(self, width: int) -> bool:
        """True when the backend handles ``width``-word planes."""
        return self.max_plane_width is None or width <= self.max_plane_width


_SPECS: dict[str, BackendSpec] = {
    "python": BackendSpec(factory=PythonState),
    "numpy": BackendSpec(factory=NumpyState, missing=_numpy_missing),
    "numba": BackendSpec(
        factory=_fused.FusedState,
        missing=_fused.missing_requirement,
    ),
}


def register_backend(
    name: str,
    factory: Callable[[tuple[FabricGeometry, ...]], FabricState],
    *,
    missing: Callable[[], str | None] = _always,
    max_plane_width: int | None = None,
    word_gated: bool = False,
) -> None:
    """Register an additional fabric-state backend (the plug-in seam).

    The factory takes a tuple of per-replication geometries and returns
    a :class:`~repro.engine.state.FabricState`.  Registered names become
    valid ``backend=`` arguments everywhere (batch engine, CLI); they
    are never chosen by ``auto``.  ``missing`` is the availability
    probe (None = usable, else the reason shown by ``wdm-repro
    kernels``); ``max_plane_width`` caps the plane width (int64 words
    per mask) the backend handles, None meaning unlimited.
    ``word_gated=True`` is the legacy spelling of
    ``max_plane_width=1`` (single-word masks only).
    """
    if name in ("auto",) + BACKENDS:
        raise ValueError(f"backend name {name!r} is reserved")
    if word_gated and max_plane_width is None:
        max_plane_width = 1
    _SPECS[name] = BackendSpec(
        factory=factory, missing=missing, max_plane_width=max_plane_width
    )


def available_backends() -> tuple[str, ...]:
    """The state backends usable in this process."""
    return tuple(name for name, spec in _SPECS.items() if spec.available())


def _width_label(spec: BackendSpec) -> str:
    if spec.max_plane_width is None:
        return "any"
    unit = "word" if spec.max_plane_width == 1 else "words"
    return f"{spec.max_plane_width} {unit}"


def backend_status() -> dict[str, str]:
    """Per-backend one-line availability/capability status (CLI display).

    ``"available (plane width: any)"``, ``"available (max plane
    width: N words)"`` or ``"unavailable (<reason>)"`` for every
    registered backend.
    """
    status: dict[str, str] = {}
    for name, spec in _SPECS.items():
        reason = spec.missing()
        if reason is not None:
            status[name] = f"unavailable ({reason})"
        elif spec.max_plane_width is None:
            status[name] = "available (plane width: any)"
        else:
            status[name] = (
                f"available (max plane width: {_width_label(spec)})"
            )
    return status


def plane_width_error(
    backend: str, m_max: int, r: int, k: int, max_width: int
) -> str:
    """The uniform error message for a plane too wide for a backend."""
    width = plane_width(m_max, r, k)
    return (
        f"batch backend {backend!r} handles at most {max_width} int64 "
        f"word(s) per mask but m={m_max}, r={r}, k={k} needs "
        f"{width}-word planes ({NUMPY_WORD_BITS} bits per word)"
    )


def resolve_backend(backend: str = "auto", *, m_max: int, r: int, k: int) -> str:
    """Resolve a backend request to a concrete backend name.

    ``auto`` honours the ``WDM_REPRO_BATCH_BACKEND`` environment
    variable, then prefers ``numba`` -- the fused whole-stream kernel
    -- whenever it is importable (at any plane width, since the word
    gate was lifted), falling back to ``python`` (the int-bitplane
    replay, which beats the per-event numpy int64 backend on CPython;
    see EXPERIMENTS.md P4/P6).  Asking for a backend explicitly --
    directly or through the environment override -- raises if its
    requirements are missing or the geometry's plane width exceeds the
    backend's ``max_plane_width`` capability.
    """
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "auto"
    if backend == "auto":
        if _SPECS["numba"].available():
            return "numba"
        return "python"
    spec = _SPECS.get(backend)
    if spec is None:
        choices = ("auto",) + available_backends()
        widths = ", ".join(
            f"{name}={_width_label(sp)}"
            for name, sp in _SPECS.items()
            if sp.available()
        )
        raise ValueError(
            f"unknown batch backend {backend!r}; choose from {choices} "
            f"(max plane widths: {widths})"
        )
    reason = spec.missing()
    if reason is not None:
        raise ValueError(
            f"batch backend {backend!r} requested but {reason}"
        )
    width = plane_width(m_max, r, k)
    if not spec.supports_width(width):
        assert spec.max_plane_width is not None
        raise ValueError(
            plane_width_error(backend, m_max, r, k, spec.max_plane_width)
        )
    return backend


def make_state(
    geometries: Iterable[FabricGeometry], backend: str = "auto"
) -> FabricState:
    """Build a fabric state for ``geometries`` on a resolved backend."""
    geos = tuple(geometries)
    if not geos:
        raise ValueError("need at least one FabricGeometry")
    name = resolve_backend(
        backend,
        m_max=max(geo.m for geo in geos),
        r=geos[0].r,
        k=geos[0].k,
    )
    return _SPECS[name].factory(geos)
