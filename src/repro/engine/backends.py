"""Fabric-state backend registry -- the numba/CUDA seam.

One place decides which :class:`~repro.engine.state.FabricState`
implementation a replay runs on: every backend is a
:class:`BackendSpec` (factory + availability probe + word-gate flag),
:func:`resolve_backend` maps a request (``"auto"``, a concrete name, or
the ``WDM_REPRO_BATCH_BACKEND`` environment override) to a registered
backend, applying the int64 word gate (:data:`NUMPY_WORD_BITS`) with
one uniform error message, and :func:`make_state` then instantiates it.

Three backends ship built in:

* ``python`` -- int-bitplane :class:`~repro.engine.state.PythonState`;
  no dependencies, always available;
* ``numpy`` -- int64 structure-of-arrays
  :class:`~repro.engine.state.NumpyState`; needs numpy and the
  ``m, r, k <= 62`` word gate;
* ``numba`` -- the fused whole-stream replay of
  :mod:`repro.engine.fused`; needs numpy plus numba (or the
  ``WDM_REPRO_FUSED_PY=1`` interpreted-mode testing hook), same word
  gate, and is what ``auto`` prefers when it can run.

Additional backends (a CUDA kernel, say) plug in through
:func:`register_backend` without touching any consumer;
:func:`backend_status` feeds the ``wdm-repro kernels`` availability
display.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.engine import fused as _fused
from repro.engine.geometry import FabricGeometry
from repro.engine.state import FabricState, NumpyState, PythonState

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "NUMPY_WORD_BITS",
    "BackendSpec",
    "available_backends",
    "backend_status",
    "make_state",
    "numpy_gate_error",
    "register_backend",
    "resolve_backend",
    "word_gate_error",
]

#: environment override for ``backend="auto"`` resolution.
BACKEND_ENV = "WDM_REPRO_BATCH_BACKEND"
#: the built-in state backends (``auto`` resolves to one of these).
BACKENDS = ("python", "numpy", "numba")
#: widest mask a word-gated backend can pack into one signed int64 word
#: -- the single source of truth for the ``m, r, k <= 62`` gate.
NUMPY_WORD_BITS = 62


def _always() -> str | None:
    return None


def _numpy_missing() -> str | None:
    return None if _np is not None else "numpy is not installed"


@dataclass(frozen=True)
class BackendSpec:
    """One selectable backend: how to build it and whether it can run.

    Attributes:
        factory: builds the backend's :class:`FabricState` from the
            per-replication geometries.
        missing: returns None when the backend can run in this process,
            else the human-readable reason (``"numba is not
            installed"``) -- probed dynamically so environment hooks
            can flip availability without re-importing.
        word_gated: True when the backend packs masks into int64 words
            and therefore needs ``m, r, k <= `` :data:`NUMPY_WORD_BITS`.
    """

    factory: Callable[[tuple[FabricGeometry, ...]], FabricState]
    missing: Callable[[], str | None] = _always
    word_gated: bool = False

    def available(self) -> bool:
        """True when the backend can run in this process."""
        return self.missing() is None


_SPECS: dict[str, BackendSpec] = {
    "python": BackendSpec(factory=PythonState),
    "numpy": BackendSpec(
        factory=NumpyState, missing=_numpy_missing, word_gated=True
    ),
    "numba": BackendSpec(
        factory=_fused.FusedState,
        missing=_fused.missing_requirement,
        word_gated=True,
    ),
}


def register_backend(
    name: str,
    factory: Callable[[tuple[FabricGeometry, ...]], FabricState],
    *,
    missing: Callable[[], str | None] = _always,
    word_gated: bool = False,
) -> None:
    """Register an additional fabric-state backend (the plug-in seam).

    The factory takes a tuple of per-replication geometries and returns
    a :class:`~repro.engine.state.FabricState`.  Registered names become
    valid ``backend=`` arguments everywhere (batch engine, CLI); they
    are never chosen by ``auto``.  ``missing`` is the availability
    probe (None = usable, else the reason shown by ``wdm-repro
    kernels``); ``word_gated`` opts into the int64
    ``m, r, k <= `` :data:`NUMPY_WORD_BITS` gate.
    """
    if name in ("auto",) + BACKENDS:
        raise ValueError(f"backend name {name!r} is reserved")
    _SPECS[name] = BackendSpec(
        factory=factory, missing=missing, word_gated=word_gated
    )


def available_backends() -> tuple[str, ...]:
    """The state backends usable in this process."""
    return tuple(name for name, spec in _SPECS.items() if spec.available())


def backend_status() -> dict[str, str]:
    """Per-backend one-line availability/gate status (CLI display).

    ``"available"``, ``"available (gated: m, r, k <= 62)"`` or
    ``"unavailable (<reason>)"`` for every registered backend.
    """
    status: dict[str, str] = {}
    for name, spec in _SPECS.items():
        reason = spec.missing()
        if reason is not None:
            status[name] = f"unavailable ({reason})"
        elif spec.word_gated:
            status[name] = (
                f"available (gated: m, r, k <= {NUMPY_WORD_BITS})"
            )
        else:
            status[name] = "available"
    return status


def word_gate_error(backend: str, m_max: int, r: int, k: int) -> str:
    """The uniform error message for a failed int64 word gate."""
    return (
        f"batch backend {backend!r} packs masks into int64 words and "
        f"needs m, r, k <= {NUMPY_WORD_BITS}; got m={m_max}, r={r}, k={k}"
    )


def numpy_gate_error(m_max: int, r: int, k: int) -> str:
    """The numpy backend's word-gate message (compat wrapper)."""
    return word_gate_error("numpy", m_max, r, k)


def resolve_backend(backend: str = "auto", *, m_max: int, r: int, k: int) -> str:
    """Resolve a backend request to a concrete backend name.

    ``auto`` honours the ``WDM_REPRO_BATCH_BACKEND`` environment
    variable, then prefers ``numba`` -- the fused whole-stream kernel
    -- whenever it is importable and the configuration fits the
    :data:`NUMPY_WORD_BITS` word gate, falling back to ``python``
    (the int-bitplane replay, which beats the per-event numpy int64
    backend on CPython; see EXPERIMENTS.md P4/P6).  Asking for a
    backend explicitly -- directly or through the environment override
    -- raises if its requirements are missing or the configuration does
    not fit its word gate.
    """
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "auto"
    if backend == "auto":
        numba_spec = _SPECS["numba"]
        if numba_spec.available() and max(m_max, r, k) <= NUMPY_WORD_BITS:
            return "numba"
        return "python"
    spec = _SPECS.get(backend)
    if spec is None:
        choices = ("auto",) + available_backends()
        raise ValueError(
            f"unknown batch backend {backend!r}; choose from {choices}"
        )
    reason = spec.missing()
    if reason is not None:
        raise ValueError(
            f"batch backend {backend!r} requested but {reason}"
        )
    if spec.word_gated and max(m_max, r, k) > NUMPY_WORD_BITS:
        raise ValueError(word_gate_error(backend, m_max, r, k))
    return backend


def make_state(
    geometries: Iterable[FabricGeometry], backend: str = "auto"
) -> FabricState:
    """Build a fabric state for ``geometries`` on a resolved backend."""
    geos = tuple(geometries)
    if not geos:
        raise ValueError("need at least one FabricGeometry")
    name = resolve_backend(
        backend,
        m_max=max(geo.m for geo in geos),
        r=geos[0].r,
        k=geos[0].k,
    )
    return _SPECS[name].factory(geos)
