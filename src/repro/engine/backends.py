"""Fabric-state backend registry -- the numba/CUDA seam.

One place decides which :class:`~repro.engine.state.FabricState`
implementation a replay runs on: :func:`resolve_backend` maps a request
(``"auto"``, a concrete name, or the ``WDM_REPRO_BATCH_BACKEND``
environment override) to a registered backend, applying the numpy
int64 word gate (:data:`NUMPY_WORD_BITS`) with one uniform error
message; :func:`make_state` then instantiates it.  New backends (the
ROADMAP's numba/CUDA kernel) plug in through :func:`register_backend`
without touching any consumer.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable

from repro.engine.geometry import FabricGeometry
from repro.engine.state import FabricState, NumpyState, PythonState

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "NUMPY_WORD_BITS",
    "available_backends",
    "make_state",
    "numpy_gate_error",
    "register_backend",
    "resolve_backend",
]

#: environment override for ``backend="auto"`` resolution.
BACKEND_ENV = "WDM_REPRO_BATCH_BACKEND"
#: selectable state backends (``auto`` resolves to one of these).
BACKENDS = ("python", "numpy")
#: widest mask the numpy backend can pack into one signed int64 word --
#: the single source of truth for the ``m, r, k <= 62`` gate.
NUMPY_WORD_BITS = 62

_FACTORIES: dict[str, Callable[[tuple[FabricGeometry, ...]], FabricState]] = {
    "python": PythonState,
    "numpy": NumpyState,
}


def register_backend(
    name: str,
    factory: Callable[[tuple[FabricGeometry, ...]], FabricState],
) -> None:
    """Register an additional fabric-state backend (the plug-in seam).

    The factory takes a tuple of per-replication geometries and returns
    a :class:`~repro.engine.state.FabricState`.  Registered names become
    valid ``backend=`` arguments everywhere (batch engine, CLI); they
    are never chosen by ``auto``.
    """
    if name in ("auto",) + BACKENDS:
        raise ValueError(f"backend name {name!r} is reserved")
    _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """The state backends usable in this process."""
    if _np is None:
        return tuple(n for n in _FACTORIES if n != "numpy")
    return tuple(_FACTORIES)


def numpy_gate_error(m_max: int, r: int, k: int) -> str:
    """The uniform error message for a failed int64 word gate."""
    return (
        f"batch backend 'numpy' packs masks into int64 words and "
        f"needs m, r, k <= {NUMPY_WORD_BITS}; got m={m_max}, r={r}, k={k}"
    )


def resolve_backend(backend: str = "auto", *, m_max: int, r: int, k: int) -> str:
    """Resolve a backend request to a concrete backend name.

    ``auto`` honours the ``WDM_REPRO_BATCH_BACKEND`` environment
    variable, then defaults to ``python`` -- the int-bitplane replay
    beats the int64 structure-of-arrays on CPython for paper-scale
    networks (the numpy backend's per-replication cover search still
    crosses the scalar boundary on every event).  Asking for ``numpy``
    explicitly -- directly or through the environment override -- raises
    if NumPy is missing or the configuration does not fit the
    :data:`NUMPY_WORD_BITS` word gate.
    """
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "").strip().lower() or "auto"
    if backend == "auto":
        # Either installed backend is valid here; python wins on CPython
        # (see EXPERIMENTS.md P4), so auto picks it even with numpy around.
        return "python"
    if backend not in _FACTORIES:
        choices = ("auto",) + tuple(_FACTORIES)
        raise ValueError(
            f"unknown batch backend {backend!r}; choose from {choices}"
        )
    if backend == "numpy":
        if _np is None:
            raise ValueError(
                "batch backend 'numpy' requested but numpy is not installed"
            )
        if max(m_max, r, k) > NUMPY_WORD_BITS:
            raise ValueError(numpy_gate_error(m_max, r, k))
    return backend


def make_state(
    geometries: Iterable[FabricGeometry], backend: str = "auto"
) -> FabricState:
    """Build a fabric state for ``geometries`` on a resolved backend."""
    geos = tuple(geometries)
    if not geos:
        raise ValueError("need at least one FabricGeometry")
    name = resolve_backend(
        backend,
        m_max=max(geo.m for geo in geos),
        r=geos[0].r,
        k=geos[0].k,
    )
    return _FACTORIES[name](geos)
