"""Fused batch-replay backend -- the whole event loop in one kernel.

The lockstep batch engine's per-event cost on the other backends is
Python dispatch: every setup crosses the interpreter boundary once per
replication (``probe_cover`` on int bitplanes), which is why the numpy
int64 backend *loses* to pure-Python ints end-to-end.  This module
removes that dispatch entirely: :class:`FusedState` takes the compiled
traffic stream *lowered to flat numpy arrays* (see
:func:`repro.perf.batch.lower_stream`) and replays the entire event
loop -- availability scan, Lemma-4 cover selection (greedy + exact
depth-first search with the bound pruning of
:func:`repro.engine.cover.find_cover_bits`), admit/release bitplane
updates and per-cause block classification -- inside one
nopython-compilable kernel per ``(stream, batch)`` pair.  The kernel
returns per-replication blocked counts, release counts and
:data:`~repro.engine.kernel.ALL_BLOCK_KINDS` histograms (cause codes
are indices into that tuple) with zero Python in the hot loop.

Three execution modes share the single kernel source:

* **numba** (installed): the kernel is ``@njit``-compiled on first use
  (``cache=True``, so the machine code persists across processes);
* **interpreted** (``WDM_REPRO_FUSED_PY=1``): the very same Python
  function runs uncompiled over the same arrays -- slow, but
  bit-identical by construction, which is how the identity suites and
  ``bench_perf.py`` exercise the fused program on hosts without numba;
* **unavailable** (neither): the backend simply does not register as
  available and ``auto`` resolution falls back to ``python``.

:class:`FusedState` subclasses :class:`~repro.engine.state.NumpyState`
-- same structure-of-arrays bitplanes, including the multi-word
``[..., W]`` planes of :class:`~repro.engine.planes.PlaneLayout` for
masks wider than one int64 word -- so the per-event
:class:`~repro.engine.state.FabricState` protocol still works on it;
the batch driver simply prefers the whole-stream
:meth:`FusedState.replay_ops` entry point when a state offers one.
Single-word fabrics run the historical scalar kernel unchanged; wider
fabrics run :func:`_replay_loop_mw`, the word-looped variant of the
same program (same decisions, same jit/interpreted duality).
Bit-identity with the python backend -- per-replication counts *and*
``classify_block`` cause dicts -- is asserted by
``tests/engine/test_fused.py``, the three-way suites in
``tests/perf/test_batch.py`` and the ``fused``/``wide`` sections of
``bench_perf.py``.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import Any, Protocol

from repro.engine.kernel import ALL_BLOCK_KINDS, block_cause
from repro.engine.planes import WORD_BITS, join_words, pack_masks, split_mask
from repro.engine.state import NumpyState

try:  # NumPy is optional everywhere in this repo.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]

try:  # numba is optional too: [fused] extra, never a hard dependency.
    from numba import njit as _njit  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True
except ImportError:
    _njit = None
    NUMBA_AVAILABLE = False

__all__ = [
    "FUSED_ENV",
    "NUMBA_AVAILABLE",
    "FusedReplay",
    "FusedState",
    "LoweredOps",
    "fused_available",
    "fused_mode",
    "missing_requirement",
]

#: set to ``1`` to run the fused kernel *interpreted* (no numba) -- the
#: testing hook that lets hosts without numba exercise the exact array
#: program the JIT compiles.
FUSED_ENV = "WDM_REPRO_FUSED_PY"


class LoweredOps(Protocol):
    """The flat-array form of one compiled traffic stream.

    Produced by :func:`repro.perf.batch.lower_stream`; all arrays are
    ``int64`` with one entry per event, ``slot`` is the dense
    connection index (each connection id maps to one slot, shared by
    its setup and teardown ops).
    """

    tag: Any
    slot: Any
    g: Any
    sw: Any
    dest: Any
    n_slots: int
    n_setups: int


def _force_interpreted() -> bool:
    return os.environ.get(FUSED_ENV, "").strip() not in ("", "0")


def missing_requirement() -> str | None:
    """Why the fused backend cannot run here, or None when it can."""
    if _np is None:
        return "numpy is not installed"
    if not NUMBA_AVAILABLE and not _force_interpreted():
        return "numba is not installed"
    return None


def fused_available() -> bool:
    """True when the fused backend can run in this process."""
    return missing_requirement() is None


def fused_mode() -> str:
    """``"jit"``, ``"interpreted"`` or ``"unavailable"``."""
    if _np is None or (not NUMBA_AVAILABLE and not _force_interpreted()):
        return "unavailable"
    return "jit" if NUMBA_AVAILABLE and not _force_interpreted() else "interpreted"


# -- the kernel --------------------------------------------------------------
#
# Everything below the wrapper is written in the nopython subset: int64
# scalars and arrays, while-loops over set bits, no Python objects.  The
# same source runs compiled (numba) and interpreted (fallback), so the
# two modes cannot diverge.  Popcount and lowest-bit-index are loops
# rather than SWAR tricks on purpose: multiply-based popcount overflows
# int64 (wrapping under numba, promoting under CPython), which would
# break the compiled-vs-interpreted bit-identity this module guarantees.


def _popcount(v: int) -> int:
    c = 0
    while v:
        v &= v - 1
        c += 1
    return c


def _low_index(v: int) -> int:
    # v != 0; index of the lowest set bit.
    low = v & -v
    idx = 0
    while low > 1:
        low >>= 1
        idx += 1
    return idx


def _find_cover(  # noqa: PLR0912 - mirrors find_cover_bits exactly
    dest: int,
    x: int,
    ncov: int,
    cov_j: Any,
    cov_reach: Any,
    cover_j: Any,
    cover_mask: Any,
    use_j: Any,
    use_reach: Any,
    use_cnt: Any,
    unc: Any,
    pos: Any,
    picked_j: Any,
    picked_reach: Any,
    top: Any,
) -> int:
    """Lemma-4 cover selection on the scratch arrays; returns cover size.

    Bit-for-bit the decision procedure of
    :func:`repro.engine.cover.find_cover_bits` on candidates already in
    ascending-``j`` order: max-coverage greedy with first-candidate tie
    breaking, then the exact depth-first search with the top-``rem``
    coverage bound, then first-picked-wins destination assignment.
    Returns 0 when no cover of size <= ``x`` exists.
    """
    # -- greedy (ties broken by candidate order = ascending j) --
    uncovered = dest
    n_chosen = 0
    while uncovered != 0 and n_chosen < x:
        best = -1
        best_gain = 0
        best_count = 0
        for c in range(ncov):
            taken = False
            for t in range(n_chosen):
                if cover_j[t] == cov_j[c]:
                    taken = True
                    break
            if taken:
                continue
            gain = cov_reach[c] & uncovered
            cnt = _popcount(gain)
            if cnt > best_count:
                best = c
                best_gain = gain
                best_count = cnt
        if best < 0:
            break
        cover_j[n_chosen] = cov_j[best]
        cover_mask[n_chosen] = best_gain
        n_chosen += 1
        uncovered &= ~best_gain
    if uncovered == 0:
        return n_chosen

    # -- exact search: stable sort candidates by descending coverage --
    n_use = 0
    for c in range(ncov):
        cnt = _popcount(cov_reach[c])
        ins = n_use
        while ins > 0 and use_cnt[ins - 1] < cnt:
            use_j[ins] = use_j[ins - 1]
            use_reach[ins] = use_reach[ins - 1]
            use_cnt[ins] = use_cnt[ins - 1]
            ins -= 1
        use_j[ins] = cov_j[c]
        use_reach[ins] = cov_reach[c]
        use_cnt[ins] = cnt
        n_use += 1

    # -- iterative depth-first search with the coverage bound --
    unc[0] = dest
    pos[0] = 0
    depth = 0
    n_picked = -1
    entering = True
    while True:
        if entering:
            u = unc[depth]
            if u == 0:
                n_picked = depth
                break
            ok = False
            if depth < x:
                rem = x - depth
                for t in range(rem):
                    top[t] = 0
                for i in range(pos[depth], n_use):
                    cnt = _popcount(use_reach[i] & u)
                    mni = 0
                    for t in range(1, rem):
                        if top[t] < top[mni]:
                            mni = t
                    if cnt > top[mni]:
                        top[mni] = cnt
                bound = 0
                for t in range(rem):
                    bound += top[t]
                ok = bound >= _popcount(u)
            if ok:
                entering = False
            else:
                depth -= 1
                if depth < 0:
                    break
                pos[depth] += 1
                entering = False
        else:
            u = unc[depth]
            i = pos[depth]
            descended = False
            while i < n_use:
                gain = use_reach[i] & u
                if gain != 0:
                    picked_j[depth] = use_j[i]
                    picked_reach[depth] = use_reach[i]
                    pos[depth] = i
                    unc[depth + 1] = u & ~gain
                    pos[depth + 1] = i + 1
                    depth += 1
                    entering = True
                    descended = True
                    break
                i += 1
            if not descended:
                depth -= 1
                if depth < 0:
                    break
                pos[depth] += 1
    if n_picked < 0:
        return 0

    # -- assign each destination to the first picked switch covering it --
    for t in range(n_picked):
        cover_mask[t] = 0
    rem_dest = dest
    while rem_dest:
        lowp = rem_dest & -rem_dest
        rem_dest ^= lowp
        for t in range(n_picked):
            if picked_reach[t] & lowp:
                cover_mask[t] |= lowp
                break
    n_cover = 0
    for t in range(n_picked):
        if cover_mask[t] != 0:
            cover_j[n_cover] = picked_j[t]
            cover_mask[n_cover] = cover_mask[t]
            n_cover += 1
    return n_cover


def _replay_loop(  # noqa: PLR0912, PLR0915 - the fused hot loop
    op_tag: Any,
    op_slot: Any,
    op_g: Any,
    op_sw: Any,
    op_dest: Any,
    all_masks: Any,
    msw_dominant: bool,
    model_msw: bool,
    x: int,
    k_full: int,
    m_max: int,
    static_unreach: Any,
    in_busy: Any,
    out_busy: Any,
    in_wave: Any,
    in_full: Any,
    out_wave: Any,
    out_full: Any,
    conn_n: Any,
    br_j: Any,
    br_mask: Any,
    br_inw: Any,
    br_outw: Any,
    dropped: Any,
    want_kinds: bool,
    want_causes: bool,
    blocked_ct: Any,
    releases_ct: Any,
    kind_counts: Any,
    n_causes: Any,
    cause_op: Any,
    cause_blocked: Any,
    cause_avail: Any,
    cause_reach: Any,
) -> int:
    """The fused event loop -- every replay decision, no Python dispatch.

    One pass over the lowered stream, advancing all ``B`` replications
    per event exactly like :func:`repro.perf.batch._replay` does
    through the per-event protocol: first-stage availability, the
    ``probe_cover`` full-reach short-circuit, :func:`_find_cover`,
    first-fit wavelength assignment on admit, branch-exact release on
    teardown, and ``classify_kind`` cause codes (indices into
    ``BLOCK_KINDS``) for blocked setups.  With ``want_causes`` it also
    records the per-block evidence masks the Python wrapper turns into
    ``block_cause`` dicts after the loop.
    """
    n_ops = op_tag.shape[0]
    batch = all_masks.shape[0]
    # Scratch for the per-setup cover selection (reused across events).
    cov_j = _np.zeros(m_max, _np.int64)
    cov_reach = _np.zeros(m_max, _np.int64)
    cover_j = _np.zeros(x + 1, _np.int64)
    cover_mask = _np.zeros(x + 1, _np.int64)
    use_j = _np.zeros(m_max, _np.int64)
    use_reach = _np.zeros(m_max, _np.int64)
    use_cnt = _np.zeros(m_max, _np.int64)
    unc = _np.zeros(x + 2, _np.int64)
    pos = _np.zeros(x + 2, _np.int64)
    picked_j = _np.zeros(x + 1, _np.int64)
    picked_reach = _np.zeros(x + 1, _np.int64)
    top = _np.zeros(x + 1, _np.int64)
    attempts = 0
    for i in range(n_ops):
        tag = op_tag[i]
        slot = op_slot[i]
        g = op_g[i]
        sw = op_sw[i]
        dest = op_dest[i]
        if tag == 1:
            attempts += 1
            for b in range(batch):
                if msw_dominant:
                    blocked_mask = in_busy[b, g, sw]
                else:
                    blocked_mask = in_full[b, g]
                avail = all_masks[b] & ~blocked_mask
                # probe_cover's ascending scan with the full-reach
                # short-circuit; cov_* accumulates the reach map.
                ncov = 0
                full_j = -1
                scan = avail
                while scan:
                    low = scan & -scan
                    scan ^= low
                    j = _low_index(low)
                    if msw_dominant or model_msw:
                        blk = out_busy[b, j, sw]
                    else:
                        blk = out_full[b, j]
                    reach = dest & ~blk
                    if reach == dest:
                        full_j = j
                        break
                    if reach != 0:
                        cov_j[ncov] = j
                        cov_reach[ncov] = reach
                        ncov += 1
                if full_j >= 0:
                    cover_j[0] = full_j
                    cover_mask[0] = dest
                    n_cover = 1
                elif ncov > 0:
                    n_cover = _find_cover(
                        dest, x, ncov, cov_j, cov_reach, cover_j,
                        cover_mask, use_j, use_reach, use_cnt, unc, pos,
                        picked_j, picked_reach, top,
                    )
                else:
                    n_cover = 0
                if n_cover == 0:
                    blocked_ct[b] += 1
                    dropped[b, slot] = True
                    if want_kinds:
                        if avail == 0:
                            kind = 0 if msw_dominant else 1
                        elif dest & static_unreach[b, sw]:
                            # awg_no_path: structural, checked before
                            # full_middles (mirrors classify_kind).
                            kind = 4
                        else:
                            union = 0
                            for c in range(ncov):
                                union |= cov_reach[c]
                            kind = 2 if dest & ~union else 3
                        kind_counts[b, kind] += 1
                        if want_causes:
                            ci = n_causes[b]
                            cause_op[b, ci] = i
                            cause_blocked[b, ci] = blocked_mask
                            cause_avail[b, ci] = avail
                            for c in range(ncov):
                                cause_reach[b, ci, cov_j[c]] = cov_reach[c]
                            n_causes[b] = ci + 1
                    continue
                # Commit ascending j, like allocate's sorted(cover).
                for a in range(1, n_cover):
                    jj = cover_j[a]
                    mm = cover_mask[a]
                    t = a
                    while t > 0 and cover_j[t - 1] > jj:
                        cover_j[t] = cover_j[t - 1]
                        cover_mask[t] = cover_mask[t - 1]
                        t -= 1
                    cover_j[t] = jj
                    cover_mask[t] = mm
                conn_n[b, slot] = n_cover
                for t in range(n_cover):
                    j = cover_j[t]
                    assigned = cover_mask[t]
                    br_j[b, slot, t] = j
                    br_mask[b, slot, t] = assigned
                    if msw_dominant:
                        in_busy[b, g, sw] |= 1 << j
                        out_busy[b, j, sw] |= assigned
                        continue
                    waves = in_wave[b, g, j]
                    in_w = _low_index(k_full & ~waves)
                    waves |= 1 << in_w
                    in_wave[b, g, j] = waves
                    if waves == k_full:
                        in_full[b, g] |= 1 << j
                    br_inw[b, slot, t] = in_w
                    rem = assigned
                    while rem:
                        lowp = rem & -rem
                        rem ^= lowp
                        p = _low_index(lowp)
                        fiber = out_wave[b, j, p]
                        if model_msw:
                            out_w = sw
                        else:
                            out_w = _low_index(k_full & ~fiber)
                        fiber |= 1 << out_w
                        out_wave[b, j, p] = fiber
                        if fiber == k_full:
                            out_full[b, j] |= 1 << p
                        out_busy[b, j, out_w] |= 1 << p
                        br_outw[b, slot, t, p] = out_w
        else:
            for b in range(batch):
                if dropped[b, slot]:
                    dropped[b, slot] = False
                    continue
                nbr = conn_n[b, slot]
                for t in range(nbr):
                    j = br_j[b, slot, t]
                    if msw_dominant:
                        in_busy[b, g, sw] &= ~(1 << j)
                        out_busy[b, j, sw] &= ~br_mask[b, slot, t]
                        continue
                    if in_wave[b, g, j] == k_full:
                        in_full[b, g] &= ~(1 << j)
                    in_wave[b, g, j] &= ~(1 << br_inw[b, slot, t])
                    rem = br_mask[b, slot, t]
                    while rem:
                        lowp = rem & -rem
                        rem ^= lowp
                        p = _low_index(lowp)
                        out_w = br_outw[b, slot, t, p]
                        if out_wave[b, j, p] == k_full:
                            out_full[b, j] &= ~(1 << p)
                        out_wave[b, j, p] &= ~(1 << out_w)
                        out_busy[b, j, out_w] &= ~(1 << p)
                releases_ct[b] += 1
    return attempts


# -- the multi-word kernel ---------------------------------------------------
#
# The word-looped variant of the same program, for fabrics whose mask
# families span W = ceil(bits / WORD_BITS) > 1 int64 words.  Masks are
# rows of little-endian word arrays (trailing axis); every scalar mask
# op above becomes a short loop over words.  Same nopython subset, same
# jit/interpreted duality, same decisions -- the boundary property
# tests pin the two kernels to each other at W = 1 geometries.

#: usable bits per plane word inside the kernels (= planes.WORD_BITS,
#: spelled as a literal-backed global so numba folds it).
_WB = WORD_BITS


def _find_cover_mw(  # noqa: PLR0912 - mirrors _find_cover word-wise
    dest_w: Any,
    wr: int,
    x: int,
    ncov: int,
    cov_j: Any,
    cov_reach: Any,
    cover_j: Any,
    cover_mask: Any,
    use_j: Any,
    use_reach: Any,
    use_cnt: Any,
    unc: Any,
    pos: Any,
    picked_j: Any,
    picked_reach: Any,
    top: Any,
    uncov_w: Any,
) -> int:
    """Multi-word Lemma-4 cover selection; same decisions as _find_cover.

    ``dest_w`` and every reach/cover mask are ``wr``-word rows; the
    greedy pass, the bounded depth-first search and the
    first-picked-wins assignment follow the single-word kernel line for
    line, with word loops in place of scalar mask ops.
    """
    # -- greedy (ties broken by candidate order = ascending j) --
    for wi in range(wr):
        uncov_w[wi] = dest_w[wi]
    n_chosen = 0
    while n_chosen < x:
        any_unc = False
        for wi in range(wr):
            if uncov_w[wi] != 0:
                any_unc = True
        if not any_unc:
            break
        best = -1
        best_count = 0
        for c in range(ncov):
            taken = False
            for t in range(n_chosen):
                if cover_j[t] == cov_j[c]:
                    taken = True
                    break
            if taken:
                continue
            cnt = 0
            for wi in range(wr):
                v = cov_reach[c, wi] & uncov_w[wi]
                while v:
                    v &= v - 1
                    cnt += 1
            if cnt > best_count:
                best = c
                best_count = cnt
        if best < 0:
            break
        cover_j[n_chosen] = cov_j[best]
        for wi in range(wr):
            gain = cov_reach[best, wi] & uncov_w[wi]
            cover_mask[n_chosen, wi] = gain
            uncov_w[wi] &= ~gain
        n_chosen += 1
    all_covered = True
    for wi in range(wr):
        if uncov_w[wi] != 0:
            all_covered = False
    if all_covered:
        return n_chosen

    # -- exact search: stable sort candidates by descending coverage --
    n_use = 0
    for c in range(ncov):
        cnt = 0
        for wi in range(wr):
            v = cov_reach[c, wi]
            while v:
                v &= v - 1
                cnt += 1
        ins = n_use
        while ins > 0 and use_cnt[ins - 1] < cnt:
            use_j[ins] = use_j[ins - 1]
            for wi in range(wr):
                use_reach[ins, wi] = use_reach[ins - 1, wi]
            use_cnt[ins] = use_cnt[ins - 1]
            ins -= 1
        use_j[ins] = cov_j[c]
        for wi in range(wr):
            use_reach[ins, wi] = cov_reach[c, wi]
        use_cnt[ins] = cnt
        n_use += 1

    # -- iterative depth-first search with the coverage bound --
    for wi in range(wr):
        unc[0, wi] = dest_w[wi]
    pos[0] = 0
    depth = 0
    n_picked = -1
    entering = True
    while True:
        if entering:
            u_zero = True
            u_cnt = 0
            for wi in range(wr):
                v = unc[depth, wi]
                if v != 0:
                    u_zero = False
                while v:
                    v &= v - 1
                    u_cnt += 1
            if u_zero:
                n_picked = depth
                break
            ok = False
            if depth < x:
                rem = x - depth
                for t in range(rem):
                    top[t] = 0
                for i in range(pos[depth], n_use):
                    cnt = 0
                    for wi in range(wr):
                        v = use_reach[i, wi] & unc[depth, wi]
                        while v:
                            v &= v - 1
                            cnt += 1
                    mni = 0
                    for t in range(1, rem):
                        if top[t] < top[mni]:
                            mni = t
                    if cnt > top[mni]:
                        top[mni] = cnt
                bound = 0
                for t in range(rem):
                    bound += top[t]
                ok = bound >= u_cnt
            if ok:
                entering = False
            else:
                depth -= 1
                if depth < 0:
                    break
                pos[depth] += 1
                entering = False
        else:
            i = pos[depth]
            descended = False
            while i < n_use:
                any_gain = False
                for wi in range(wr):
                    if use_reach[i, wi] & unc[depth, wi]:
                        any_gain = True
                if any_gain:
                    picked_j[depth] = use_j[i]
                    for wi in range(wr):
                        picked_reach[depth, wi] = use_reach[i, wi]
                        unc[depth + 1, wi] = unc[depth, wi] & ~use_reach[i, wi]
                    pos[depth] = i
                    pos[depth + 1] = i + 1
                    depth += 1
                    entering = True
                    descended = True
                    break
                i += 1
            if not descended:
                depth -= 1
                if depth < 0:
                    break
                pos[depth] += 1
    if n_picked < 0:
        return 0

    # -- assign each destination to the first picked switch covering it --
    for t in range(n_picked):
        for wi in range(wr):
            cover_mask[t, wi] = 0
    for wi in range(wr):
        rem_dest = dest_w[wi]
        while rem_dest:
            lowp = rem_dest & -rem_dest
            rem_dest ^= lowp
            for t in range(n_picked):
                if picked_reach[t, wi] & lowp:
                    cover_mask[t, wi] |= lowp
                    break
    n_cover = 0
    for t in range(n_picked):
        nonzero = False
        for wi in range(wr):
            if cover_mask[t, wi] != 0:
                nonzero = True
        if nonzero:
            cover_j[n_cover] = picked_j[t]
            for wi in range(wr):
                cover_mask[n_cover, wi] = cover_mask[t, wi]
            n_cover += 1
    return n_cover


def _replay_loop_mw(  # noqa: PLR0912, PLR0915 - the fused hot loop, word form
    op_tag: Any,
    op_slot: Any,
    op_g: Any,
    op_sw: Any,
    op_dest: Any,
    all_masks: Any,
    msw_dominant: bool,
    model_msw: bool,
    x: int,
    k_full: Any,
    m_max: int,
    wm: int,
    wr: int,
    wk: int,
    static_unreach: Any,
    in_busy: Any,
    out_busy: Any,
    in_wave: Any,
    in_full: Any,
    out_wave: Any,
    out_full: Any,
    conn_n: Any,
    br_j: Any,
    br_mask: Any,
    br_inw: Any,
    br_outw: Any,
    dropped: Any,
    want_kinds: bool,
    want_causes: bool,
    blocked_ct: Any,
    releases_ct: Any,
    kind_counts: Any,
    n_causes: Any,
    cause_op: Any,
    cause_blocked: Any,
    cause_avail: Any,
    cause_reach: Any,
) -> int:
    """The fused event loop over multi-word planes.

    Identical decision sequence to :func:`_replay_loop`; masks are
    ``w``-word rows (``op_dest`` is ``[events, wr]``, every bitplane
    carries a trailing word axis, ``k_full`` is a ``wk``-word array)
    and single mask ops become loops over words.
    """
    n_ops = op_tag.shape[0]
    batch = all_masks.shape[0]
    # Scratch for the per-setup cover selection (reused across events).
    cov_j = _np.zeros(m_max, _np.int64)
    cov_reach = _np.zeros((m_max, wr), _np.int64)
    cover_j = _np.zeros(x + 1, _np.int64)
    cover_mask = _np.zeros((x + 1, wr), _np.int64)
    use_j = _np.zeros(m_max, _np.int64)
    use_reach = _np.zeros((m_max, wr), _np.int64)
    use_cnt = _np.zeros(m_max, _np.int64)
    unc = _np.zeros((x + 2, wr), _np.int64)
    pos = _np.zeros(x + 2, _np.int64)
    picked_j = _np.zeros(x + 1, _np.int64)
    picked_reach = _np.zeros((x + 1, wr), _np.int64)
    top = _np.zeros(x + 1, _np.int64)
    uncov_w = _np.zeros(wr, _np.int64)
    avail_w = _np.zeros(wm, _np.int64)
    reach_w = _np.zeros(wr, _np.int64)
    dest_w = _np.zeros(wr, _np.int64)
    swap_w = _np.zeros(wr, _np.int64)
    attempts = 0
    for i in range(n_ops):
        tag = op_tag[i]
        slot = op_slot[i]
        g = op_g[i]
        sw = op_sw[i]
        if tag == 1:
            attempts += 1
            for wi in range(wr):
                dest_w[wi] = op_dest[i, wi]
            for b in range(batch):
                if msw_dominant:
                    for wi in range(wm):
                        avail_w[wi] = all_masks[b, wi] & ~in_busy[b, g, sw, wi]
                else:
                    for wi in range(wm):
                        avail_w[wi] = all_masks[b, wi] & ~in_full[b, g, wi]
                # probe_cover's ascending scan with the full-reach
                # short-circuit; cov_* accumulates the reach map.
                ncov = 0
                full_j = -1
                wi_a = 0
                while wi_a < wm and full_j < 0:
                    scan = avail_w[wi_a]
                    while scan:
                        low = scan & -scan
                        scan ^= low
                        j = wi_a * _WB + _low_index(low)
                        nonzero = False
                        full = True
                        for wi in range(wr):
                            if msw_dominant or model_msw:
                                blk = out_busy[b, j, sw, wi]
                            else:
                                blk = out_full[b, j, wi]
                            rv = dest_w[wi] & ~blk
                            reach_w[wi] = rv
                            if rv != 0:
                                nonzero = True
                            if rv != dest_w[wi]:
                                full = False
                        if full:
                            full_j = j
                            break
                        if nonzero:
                            cov_j[ncov] = j
                            for wi in range(wr):
                                cov_reach[ncov, wi] = reach_w[wi]
                            ncov += 1
                    wi_a += 1
                if full_j >= 0:
                    cover_j[0] = full_j
                    for wi in range(wr):
                        cover_mask[0, wi] = dest_w[wi]
                    n_cover = 1
                elif ncov > 0:
                    n_cover = _find_cover_mw(
                        dest_w, wr, x, ncov, cov_j, cov_reach, cover_j,
                        cover_mask, use_j, use_reach, use_cnt, unc, pos,
                        picked_j, picked_reach, top, uncov_w,
                    )
                else:
                    n_cover = 0
                if n_cover == 0:
                    blocked_ct[b] += 1
                    dropped[b, slot] = True
                    if want_kinds:
                        avail_zero = True
                        for wi in range(wm):
                            if avail_w[wi] != 0:
                                avail_zero = False
                        if avail_zero:
                            kind = 0 if msw_dominant else 1
                        else:
                            structural = False
                            for wi in range(wr):
                                if dest_w[wi] & static_unreach[b, sw, wi]:
                                    structural = True
                            if structural:
                                # awg_no_path: structural, checked before
                                # full_middles (mirrors classify_kind).
                                kind = 4
                            else:
                                missing = False
                                for wi in range(wr):
                                    union = 0
                                    for c in range(ncov):
                                        union |= cov_reach[c, wi]
                                    if dest_w[wi] & ~union:
                                        missing = True
                                kind = 2 if missing else 3
                        kind_counts[b, kind] += 1
                        if want_causes:
                            ci = n_causes[b]
                            cause_op[b, ci] = i
                            for wi in range(wm):
                                if msw_dominant:
                                    cause_blocked[b, ci, wi] = in_busy[
                                        b, g, sw, wi
                                    ]
                                else:
                                    cause_blocked[b, ci, wi] = in_full[
                                        b, g, wi
                                    ]
                                cause_avail[b, ci, wi] = avail_w[wi]
                            for c in range(ncov):
                                for wi in range(wr):
                                    cause_reach[b, ci, cov_j[c], wi] = (
                                        cov_reach[c, wi]
                                    )
                            n_causes[b] = ci + 1
                    continue
                # Commit ascending j, like allocate's sorted(cover).
                for a in range(1, n_cover):
                    jj = cover_j[a]
                    for wi in range(wr):
                        swap_w[wi] = cover_mask[a, wi]
                    t = a
                    while t > 0 and cover_j[t - 1] > jj:
                        cover_j[t] = cover_j[t - 1]
                        for wi in range(wr):
                            cover_mask[t, wi] = cover_mask[t - 1, wi]
                        t -= 1
                    cover_j[t] = jj
                    for wi in range(wr):
                        cover_mask[t, wi] = swap_w[wi]
                conn_n[b, slot] = n_cover
                for t in range(n_cover):
                    j = cover_j[t]
                    br_j[b, slot, t] = j
                    for wi in range(wr):
                        br_mask[b, slot, t, wi] = cover_mask[t, wi]
                    if msw_dominant:
                        in_busy[b, g, sw, j // _WB] |= 1 << (j % _WB)
                        for wi in range(wr):
                            out_busy[b, j, sw, wi] |= cover_mask[t, wi]
                        continue
                    in_w = -1
                    for wi in range(wk):
                        freew = k_full[wi] & ~in_wave[b, g, j, wi]
                        if freew != 0:
                            in_w = wi * _WB + _low_index(freew)
                            break
                    in_wave[b, g, j, in_w // _WB] |= 1 << (in_w % _WB)
                    now_full = True
                    for wi in range(wk):
                        if in_wave[b, g, j, wi] != k_full[wi]:
                            now_full = False
                    if now_full:
                        in_full[b, g, j // _WB] |= 1 << (j % _WB)
                    br_inw[b, slot, t] = in_w
                    for wi_p in range(wr):
                        rem = cover_mask[t, wi_p]
                        while rem:
                            lowp = rem & -rem
                            rem ^= lowp
                            p = wi_p * _WB + _low_index(lowp)
                            if model_msw:
                                out_w = sw
                            else:
                                out_w = -1
                                for wi in range(wk):
                                    freew = k_full[wi] & ~out_wave[b, j, p, wi]
                                    if freew != 0:
                                        out_w = wi * _WB + _low_index(freew)
                                        break
                            out_wave[b, j, p, out_w // _WB] |= 1 << (
                                out_w % _WB
                            )
                            fiber_full = True
                            for wi in range(wk):
                                if out_wave[b, j, p, wi] != k_full[wi]:
                                    fiber_full = False
                            if fiber_full:
                                out_full[b, j, wi_p] |= 1 << (p % _WB)
                            out_busy[b, j, out_w, p // _WB] |= 1 << (p % _WB)
                            br_outw[b, slot, t, p] = out_w
        else:
            for b in range(batch):
                if dropped[b, slot]:
                    dropped[b, slot] = False
                    continue
                nbr = conn_n[b, slot]
                for t in range(nbr):
                    j = br_j[b, slot, t]
                    if msw_dominant:
                        in_busy[b, g, sw, j // _WB] &= ~(1 << (j % _WB))
                        for wi in range(wr):
                            out_busy[b, j, sw, wi] &= ~br_mask[b, slot, t, wi]
                        continue
                    was_full = True
                    for wi in range(wk):
                        if in_wave[b, g, j, wi] != k_full[wi]:
                            was_full = False
                    if was_full:
                        in_full[b, g, j // _WB] &= ~(1 << (j % _WB))
                    in_w = br_inw[b, slot, t]
                    in_wave[b, g, j, in_w // _WB] &= ~(1 << (in_w % _WB))
                    for wi_p in range(wr):
                        rem = br_mask[b, slot, t, wi_p]
                        while rem:
                            lowp = rem & -rem
                            rem ^= lowp
                            p = wi_p * _WB + _low_index(lowp)
                            out_w = br_outw[b, slot, t, p]
                            fiber_was_full = True
                            for wi in range(wk):
                                if out_wave[b, j, p, wi] != k_full[wi]:
                                    fiber_was_full = False
                            if fiber_was_full:
                                out_full[b, j, wi_p] &= ~(1 << (p % _WB))
                            out_wave[b, j, p, out_w // _WB] &= ~(
                                1 << (out_w % _WB)
                            )
                            out_busy[b, j, out_w, p // _WB] &= ~(
                                1 << (p % _WB)
                            )
                releases_ct[b] += 1
    return attempts


#: the interpreted kernel entry points (always the plain functions).
_PY_KERNEL: Callable[..., int] = _replay_loop
_JIT_KERNEL: Callable[..., int] | None = None
_PY_KERNEL_MW: Callable[..., int] = _replay_loop_mw
_JIT_KERNEL_MW: Callable[..., int] | None = None

if NUMBA_AVAILABLE:
    # Rebind the helpers to their compiled dispatchers *before* the
    # loops compile (numba resolves the globals at first call), then
    # jit the loops themselves.  Compilation is lazy and ``cache=True``
    # persists the machine code across processes, so a pool of batch
    # workers pays the compile once per host, not once per worker.
    _jit = _njit(cache=True, nogil=True)
    _popcount = _jit(_popcount)
    _low_index = _jit(_low_index)
    _find_cover = _jit(_find_cover)
    _find_cover_mw = _jit(_find_cover_mw)
    _JIT_KERNEL = _jit(_replay_loop)
    _JIT_KERNEL_MW = _jit(_replay_loop_mw)


def _kernel() -> Callable[..., int]:
    """The replay loop in the active mode (jit unless forced interpreted)."""
    if _JIT_KERNEL is not None and not _force_interpreted():
        return _JIT_KERNEL
    return _PY_KERNEL


def _kernel_mw() -> Callable[..., int]:
    """The multi-word replay loop in the active mode."""
    if _JIT_KERNEL_MW is not None and not _force_interpreted():
        return _JIT_KERNEL_MW
    return _PY_KERNEL_MW


# -- results and the state wrapper -------------------------------------------


class FusedReplay:
    """One fused replay's outcome, in the batch driver's vocabulary."""

    __slots__ = ("attempts", "blocked", "releases", "kind_counts", "causes")

    def __init__(
        self,
        attempts: int,
        blocked: list[int],
        releases: list[int],
        kind_counts: list[dict[str, int]],
        causes: list[list[dict[str, Any]]],
    ) -> None:
        self.attempts = attempts
        self.blocked = blocked
        self.releases = releases
        self.kind_counts = kind_counts
        self.causes = causes


class FusedState(NumpyState):
    """Structure-of-arrays state with a whole-stream replay entry point.

    Storage-identical to :class:`~repro.engine.state.NumpyState` (so
    the per-event :class:`~repro.engine.state.FabricState` protocol
    still works at any plane width); the batch driver prefers
    :meth:`replay_ops`, which runs the fused kernel over the whole
    lowered stream and leaves the bitplanes in exactly the
    end-of-replay state the per-event path would.  Multi-word fabrics
    dispatch to the word-looped kernel (:func:`_replay_loop_mw`).
    """

    def replay_ops(
        self, lowered: LoweredOps, want_kinds: bool, want_causes: bool
    ) -> FusedReplay:
        """Replay one lowered stream across every replication at once."""
        if self._multiword:
            return self._replay_ops_mw(lowered, want_kinds, want_causes)
        head = self.geometries[0]
        batch = self.batch
        r, k, x = head.r, head.k, self.x
        m_max = max(geo.m for geo in self.geometries)
        n_slots = max(lowered.n_slots, 1)
        # failed_mask never changes mid-replay, so it folds into the
        # availability mask once instead of per event in the kernel.
        all_masks = _np.asarray(self.all_masks, dtype=_np.int64) & ~self.failed_mask
        dummy3 = _np.zeros((1, 1, 1), dtype=_np.int64)
        dummy2 = _np.zeros((1, 1), dtype=_np.int64)
        if self.msw_dominant:
            in_busy = self._in_busy
            in_wave = out_wave = dummy3
            in_full = out_full = dummy2
            br_inw = _np.zeros((1, 1, 1), dtype=_np.int64)
            br_outw = _np.zeros((1, 1, 1, 1), dtype=_np.int64)
        else:
            in_busy = dummy3
            in_wave = self._in_wave
            in_full = self._in_full
            out_wave = self._out_wave
            out_full = self._out_full
            br_inw = _np.zeros((batch, n_slots, x), dtype=_np.int64)
            br_outw = _np.zeros((batch, n_slots, x, r), dtype=_np.int64)
        conn_n = _np.zeros((batch, n_slots), dtype=_np.int64)
        br_j = _np.zeros((batch, n_slots, x), dtype=_np.int64)
        br_mask = _np.zeros((batch, n_slots, x), dtype=_np.int64)
        dropped = _np.zeros((batch, n_slots), dtype=_np.bool_)
        blocked_ct = _np.zeros(batch, dtype=_np.int64)
        releases_ct = _np.zeros(batch, dtype=_np.int64)
        kind_counts = _np.zeros((batch, len(ALL_BLOCK_KINDS)), dtype=_np.int64)
        # The fabric model's static per-wavelength unreachability, as a
        # [batch, k] array the kernel can index (all zeros on the Clos).
        static_unreach = _np.zeros((batch, k), dtype=_np.int64)
        su = self.static_unreach_masks
        if su is not None:
            for b in range(batch):
                for sw in range(k):
                    static_unreach[b, sw] = su[b][sw]
        n_causes = _np.zeros(batch, dtype=_np.int64)
        if want_causes:
            cap = max(lowered.n_setups, 1)
            cause_op = _np.zeros((batch, cap), dtype=_np.int64)
            cause_blocked = _np.zeros((batch, cap), dtype=_np.int64)
            cause_avail = _np.zeros((batch, cap), dtype=_np.int64)
            cause_reach = _np.zeros((batch, cap, m_max), dtype=_np.int64)
        else:
            cause_op = cause_blocked = cause_avail = dummy2
            cause_reach = dummy3
        attempts = _kernel()(
            lowered.tag, lowered.slot, lowered.g, lowered.sw, lowered.dest,
            all_masks, self.msw_dominant, self._model_msw, x,
            self._k_full, m_max, static_unreach,
            in_busy, self._out_busy, in_wave, in_full, out_wave, out_full,
            conn_n, br_j, br_mask, br_inw, br_outw, dropped,
            want_kinds, want_causes,
            blocked_ct, releases_ct, kind_counts,
            n_causes, cause_op, cause_blocked, cause_avail, cause_reach,
        )
        kind_dicts: list[dict[str, int]] = []
        causes: list[list[dict[str, Any]]] = []
        for b in range(batch):
            kind_dicts.append(
                {
                    ALL_BLOCK_KINDS[kidx]: int(kind_counts[b, kidx])
                    for kidx in range(len(ALL_BLOCK_KINDS))
                    if kind_counts[b, kidx]
                }
            )
            causes.append(
                self._causes_for(
                    lowered, b, int(n_causes[b]),
                    cause_op, cause_blocked, cause_avail, cause_reach,
                )
                if want_causes
                else []
            )
        return FusedReplay(
            attempts=int(attempts),
            blocked=[int(v) for v in blocked_ct],
            releases=[int(v) for v in releases_ct],
            kind_counts=kind_dicts,
            causes=causes,
        )

    def _replay_ops_mw(
        self, lowered: LoweredOps, want_kinds: bool, want_causes: bool
    ) -> FusedReplay:
        """Replay a lowered stream on the word-looped multi-word kernel."""
        head = self.geometries[0]
        batch = self.batch
        r, k, x = head.r, head.k, self.x
        m_max = max(geo.m for geo in self.geometries)
        layout = self.plane_layout
        wm, wr, wk = layout.m_words, layout.r_words, layout.k_words
        got_words = getattr(lowered, "r_words", 1)
        if got_words != wr:
            raise ValueError(
                f"lowered stream carries r_words={got_words} dest columns; "
                f"this state's plane layout needs {wr}"
            )
        dest = (
            lowered.dest
            if wr > 1
            else _np.asarray(lowered.dest).reshape(-1, 1)
        )
        n_slots = max(lowered.n_slots, 1)
        # failed_mask never changes mid-replay, so it folds into the
        # availability words once instead of per event in the kernel.
        all_masks = pack_masks(self.all_masks, wm)
        for wi, failed_word in enumerate(split_mask(self.failed_mask, wm)):
            if failed_word:
                all_masks[:, wi] &= ~failed_word
        k_full = _np.asarray(split_mask(self._k_full, wk), dtype=_np.int64)
        dummy3 = _np.zeros((1, 1, 1), dtype=_np.int64)
        dummy4 = _np.zeros((1, 1, 1, 1), dtype=_np.int64)
        if self.msw_dominant:
            in_busy = self._in_busy
            in_wave = out_wave = dummy4
            in_full = out_full = dummy3
            br_inw = _np.zeros((1, 1, 1), dtype=_np.int64)
            br_outw = _np.zeros((1, 1, 1, 1), dtype=_np.int64)
        else:
            in_busy = dummy4
            in_wave = self._in_wave
            in_full = self._in_full
            out_wave = self._out_wave
            out_full = self._out_full
            br_inw = _np.zeros((batch, n_slots, x), dtype=_np.int64)
            br_outw = _np.zeros((batch, n_slots, x, r), dtype=_np.int64)
        conn_n = _np.zeros((batch, n_slots), dtype=_np.int64)
        br_j = _np.zeros((batch, n_slots, x), dtype=_np.int64)
        br_mask = _np.zeros((batch, n_slots, x, wr), dtype=_np.int64)
        dropped = _np.zeros((batch, n_slots), dtype=_np.bool_)
        blocked_ct = _np.zeros(batch, dtype=_np.int64)
        releases_ct = _np.zeros(batch, dtype=_np.int64)
        kind_counts = _np.zeros((batch, len(ALL_BLOCK_KINDS)), dtype=_np.int64)
        # The fabric model's static per-wavelength unreachability, split
        # into a [batch, k, wr] word array (all zeros on the Clos).
        static_unreach = _np.zeros((batch, k, wr), dtype=_np.int64)
        su = self.static_unreach_masks
        if su is not None:
            for b in range(batch):
                for sw in range(k):
                    for wi, word in enumerate(split_mask(su[b][sw], wr)):
                        static_unreach[b, sw, wi] = word
        n_causes = _np.zeros(batch, dtype=_np.int64)
        if want_causes:
            cap = max(lowered.n_setups, 1)
            cause_op = _np.zeros((batch, cap), dtype=_np.int64)
            cause_blocked = _np.zeros((batch, cap, wm), dtype=_np.int64)
            cause_avail = _np.zeros((batch, cap, wm), dtype=_np.int64)
            cause_reach = _np.zeros((batch, cap, m_max, wr), dtype=_np.int64)
        else:
            cause_op = _np.zeros((1, 1), dtype=_np.int64)
            cause_blocked = cause_avail = dummy3
            cause_reach = dummy4
        attempts = _kernel_mw()(
            lowered.tag, lowered.slot, lowered.g, lowered.sw, dest,
            all_masks, self.msw_dominant, self._model_msw, x,
            k_full, m_max, wm, wr, wk, static_unreach,
            in_busy, self._out_busy, in_wave, in_full, out_wave, out_full,
            conn_n, br_j, br_mask, br_inw, br_outw, dropped,
            want_kinds, want_causes,
            blocked_ct, releases_ct, kind_counts,
            n_causes, cause_op, cause_blocked, cause_avail, cause_reach,
        )
        kind_dicts: list[dict[str, int]] = []
        causes: list[list[dict[str, Any]]] = []
        for b in range(batch):
            kind_dicts.append(
                {
                    ALL_BLOCK_KINDS[kidx]: int(kind_counts[b, kidx])
                    for kidx in range(len(ALL_BLOCK_KINDS))
                    if kind_counts[b, kidx]
                }
            )
            causes.append(
                self._causes_for_mw(
                    lowered, dest, b, int(n_causes[b]),
                    cause_op, cause_blocked, cause_avail, cause_reach,
                )
                if want_causes
                else []
            )
        return FusedReplay(
            attempts=int(attempts),
            blocked=[int(v) for v in blocked_ct],
            releases=[int(v) for v in releases_ct],
            kind_counts=kind_dicts,
            causes=causes,
        )

    def _causes_for_mw(
        self,
        lowered: LoweredOps,
        dest: Any,
        b: int,
        count: int,
        cause_op: Any,
        cause_blocked: Any,
        cause_avail: Any,
        cause_reach: Any,
    ) -> list[dict[str, Any]]:
        """Rebuild ``block_cause`` dicts from multi-word evidence rows."""
        fabric = self.geometries[b].fabric
        su = self.static_unreach_masks
        out: list[dict[str, Any]] = []
        for ci in range(count):
            i = int(cause_op[b, ci])
            sw = int(lowered.sw[i])
            avail = join_words(cause_avail[b, ci])
            cov: dict[int, int] = {}
            scan = avail
            while scan:
                low = scan & -scan
                scan ^= low
                j = low.bit_length() - 1
                reach = join_words(cause_reach[b, ci, j])
                if reach:
                    cov[j] = reach
            out.append(
                block_cause(
                    x=self.x,
                    input_module=int(lowered.g[i]),
                    source_wavelength=sw,
                    blocked_mask=join_words(cause_blocked[b, ci]),
                    available=avail,
                    coverable=cov,
                    dest_mask=join_words(dest[i]),
                    msw_dominant=self.msw_dominant,
                    failed_mask=self.failed_mask,
                    fabric=None if fabric == "clos" else fabric,
                    static_unreachable=0 if su is None else su[b][sw],
                )
            )
        return out

    def _causes_for(
        self,
        lowered: LoweredOps,
        b: int,
        count: int,
        cause_op: Any,
        cause_blocked: Any,
        cause_avail: Any,
        cause_reach: Any,
    ) -> list[dict[str, Any]]:
        """Rebuild ``block_cause`` dicts from the kernel's evidence masks.

        The kernel records exactly the inputs ``probe_cover`` would have
        handed :func:`repro.engine.kernel.block_cause` at that event, so
        the dicts -- down to key order and per-destination lists -- are
        the same objects the python backend produces.
        """
        fabric = self.geometries[b].fabric
        su = self.static_unreach_masks
        out: list[dict[str, Any]] = []
        for ci in range(count):
            i = int(cause_op[b, ci])
            sw = int(lowered.sw[i])
            avail = int(cause_avail[b, ci])
            cov: dict[int, int] = {}
            scan = avail
            while scan:
                low = scan & -scan
                scan ^= low
                j = low.bit_length() - 1
                reach = int(cause_reach[b, ci, j])
                if reach:
                    cov[j] = reach
            out.append(
                block_cause(
                    x=self.x,
                    input_module=int(lowered.g[i]),
                    source_wavelength=sw,
                    blocked_mask=int(cause_blocked[b, ci]),
                    available=avail,
                    coverable=cov,
                    dest_mask=int(lowered.dest[i]),
                    msw_dominant=self.msw_dominant,
                    failed_mask=self.failed_mask,
                    fabric=None if fabric == "clos" else fabric,
                    static_unreachable=0 if su is None else su[b][sw],
                )
            )
        return out
