"""The admission engine -- per-model semantics stated exactly once.

``repro.engine`` is the bottom layer of the simulator stack: a frozen
:class:`~repro.engine.geometry.FabricGeometry`, a
:class:`~repro.engine.state.FabricState` protocol with interchangeable
bitplane backends (pure-Python ints, numpy int64, the fused ``numba``
whole-stream kernel of :mod:`repro.engine.fused`; more via
:func:`~repro.engine.backends.register_backend`), the Lemma-4 cover
search (:mod:`repro.engine.cover`), and the pure admission kernels of
:mod:`repro.engine.kernel` (``avail``/``coverable``/``admit``/
``release``/``classify_block`` plus their mask-level cores).

The serial network, the lockstep batch engine, the exhaustive model
checker and the adversary all route through this package, so the
MSW/MSDW/MAW admission rules and the blocking-cause taxonomy cannot
drift between layers.  See ``docs/ARCHITECTURE.md`` for the layer
diagram.
"""

from repro.engine.backends import (
    BACKEND_ENV,
    BACKENDS,
    NUMPY_WORD_BITS,
    BackendSpec,
    available_backends,
    backend_status,
    make_state,
    plane_width,
    plane_width_error,
    register_backend,
    resolve_backend,
)
from repro.engine.cover import CoverSearch, find_cover_bits, iter_bits, mask_of
from repro.engine.fabrics import (
    CLOS,
    FabricSpec,
    fabric_names,
    fabric_status,
    get_fabric,
    register_fabric,
)
from repro.engine.fused import (
    FUSED_ENV,
    FusedReplay,
    FusedState,
    fused_available,
    fused_mode,
)
from repro.engine.geometry import FabricGeometry
from repro.engine.planes import WORD_BITS, PlaneLayout
from repro.engine.kernel import (
    ALL_BLOCK_KINDS,
    BLOCK_KINDS,
    AdmissionRequest,
    EngineConnection,
    admit,
    avail,
    block_cause,
    classify_block,
    classify_kind,
    coverable,
    free_middles,
    probe_cover,
    reach_map,
    release,
)
from repro.engine.state import FabricState, NumpyState, PythonState

__all__ = [
    "ALL_BLOCK_KINDS",
    "BACKEND_ENV",
    "BACKENDS",
    "BLOCK_KINDS",
    "CLOS",
    "FUSED_ENV",
    "NUMPY_WORD_BITS",
    "WORD_BITS",
    "AdmissionRequest",
    "BackendSpec",
    "CoverSearch",
    "EngineConnection",
    "FabricGeometry",
    "FabricSpec",
    "FabricState",
    "FusedReplay",
    "FusedState",
    "NumpyState",
    "PlaneLayout",
    "PythonState",
    "admit",
    "avail",
    "available_backends",
    "backend_status",
    "block_cause",
    "classify_block",
    "classify_kind",
    "coverable",
    "fabric_names",
    "fabric_status",
    "find_cover_bits",
    "free_middles",
    "fused_available",
    "fused_mode",
    "get_fabric",
    "iter_bits",
    "make_state",
    "mask_of",
    "plane_width",
    "plane_width_error",
    "probe_cover",
    "reach_map",
    "register_backend",
    "register_fabric",
    "release",
    "resolve_backend",
]
