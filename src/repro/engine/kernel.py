"""Pure admission kernels -- MSW/MSDW/MAW semantics, stated once.

Every consumer of the paper's admission semantics -- the serial
:class:`~repro.multistage.network.ThreeStageNetwork`, the lockstep
batch engine (:mod:`repro.perf.batch`), the exhaustive model checker
and the adversary -- routes through these functions, so wavelength
availability, converter budgets, the Lemma-4 cover condition and the
blocking-cause taxonomy cannot drift between layers.

Two API levels share one implementation:

* **mask level** -- :func:`free_middles`, :func:`reach_map`,
  :func:`probe_cover`, :func:`classify_kind`, :func:`block_cause`
  operate on plain ints and blocker rows; this is what the hot paths
  call (the network hands in its incremental caches, the batch driver
  hands in backend views);
* **state level** -- :func:`avail`, :func:`coverable`, :func:`admit`,
  :func:`release`, :func:`classify_block` operate on a
  :class:`~repro.engine.state.FabricState` and an
  :class:`AdmissionRequest`; this is the self-contained form the
  property tests and one-off probes use.

The blocker row encodes the per-model second-stage rule: under the
MSW-dominant construction (and under MAW-dominant when the endpoint
model is MSW) a middle cannot deliver to an output module whose fiber
already carries the source wavelength; otherwise only a *full* fiber
blocks, because the middle converts freely.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.cover import find_cover_bits, iter_bits
from repro.engine.state import FabricState

__all__ = [
    "ALL_BLOCK_KINDS",
    "BLOCK_KINDS",
    "AdmissionRequest",
    "EngineConnection",
    "admit",
    "avail",
    "block_cause",
    "classify_block",
    "classify_kind",
    "coverable",
    "free_middles",
    "probe_cover",
    "reach_map",
    "release",
]

#: the four blocking causes ``classify_kind`` distinguishes on the
#: paper's Clos -- the contention modes its constructions trade off.
BLOCK_KINDS = (
    "saturated_wavelength",
    "converter_exhaustion",
    "full_middles",
    "no_cover",
)

#: the full taxonomy across registered fabric models: the Clos kinds
#: plus ``awg_no_path`` -- a destination module that *no* middle switch
#: can reach on the request's wavelength under a fabric's static
#: routing constraint (:mod:`repro.engine.fabrics`), however idle the
#: fabric is.  Fused kind histograms and ``repro.obs`` cause labels
#: index this tuple; Clos-only consumers keep seeing ``BLOCK_KINDS``.
ALL_BLOCK_KINDS = BLOCK_KINDS + ("awg_no_path",)


# -- mask level --------------------------------------------------------------


def free_middles(all_middles: int, blocked: int, failed: int = 0) -> int:
    """Available middles: not first-stage blocked and not failed."""
    return all_middles & ~(blocked | failed)


def reach_map(
    available: int, dest_mask: int, blockers: Sequence[int]
) -> dict[int, int]:
    """Per available middle, the requested modules it can reach.

    Keys iterate in ascending middle index (the reference kernel's
    sorted candidate order); middles reaching nothing are omitted.
    """
    coverable: dict[int, int] = {}
    for j in iter_bits(available):
        reach = dest_mask & ~blockers[j]
        if reach:
            coverable[j] = reach
    return coverable


def probe_cover(
    available: int, dest_mask: int, x: int, blockers: Sequence[int]
) -> tuple[dict[int, int] | None, dict[int, int]]:
    """One setup's routing decision: ``(cover, partial reach map)``.

    Scans available middles in ascending order; if one reaches every
    requested module, greedy would pick exactly that lowest ``j`` with
    the full gain, so the scan short-circuits to ``{j: dest_mask}``
    without calling the cover search.  Otherwise the accumulated reach
    map (equal to :func:`reach_map` when the scan completes) feeds
    :func:`~repro.engine.cover.find_cover_bits`.  ``cover`` is None when
    the request blocks; the reach map is then complete and is exactly
    the evidence :func:`block_cause` needs.
    """
    coverable: dict[int, int] = {}
    scan = available
    while scan:
        low = scan & -scan
        scan ^= low
        j = low.bit_length() - 1
        reach = dest_mask & ~blockers[j]
        if reach == dest_mask:
            return {j: dest_mask}, coverable
        if reach:
            coverable[j] = reach
    if coverable:
        return find_cover_bits(dest_mask, coverable, x), coverable
    return None, coverable


def classify_kind(
    available: int,
    coverable: Mapping[int, int],
    dest_mask: int,
    msw_dominant: bool,
    static_unreachable: int = 0,
) -> str:
    """The blocking-cause kind for one blocked setup (ALL_BLOCK_KINDS).

    ``static_unreachable`` is the fabric model's per-wavelength
    structural mask (modules no middle can ever reach on the request's
    wavelength -- zero on the Clos): a blocked request touching it is
    ``awg_no_path``, checked before ``full_middles`` because the
    structural explanation subsumes the occupancy one.
    """
    if available == 0:
        return "saturated_wavelength" if msw_dominant else "converter_exhaustion"
    if dest_mask & static_unreachable:
        return "awg_no_path"
    union = 0
    for reach in coverable.values():
        union |= reach
    if dest_mask & ~union:
        return "full_middles"
    return "no_cover"


def block_cause(
    *,
    x: int,
    input_module: int,
    source_wavelength: int,
    blocked_mask: int,
    available: int,
    coverable: Mapping[int, int],
    dest_mask: int,
    msw_dominant: bool,
    failed_mask: int = 0,
    fabric: str | None = None,
    static_unreachable: int = 0,
) -> dict[str, Any]:
    """The full ``explain_block``-shaped evidence dict for one blocked setup.

    Matches ``repro.obs.trace.CAUSE_SCHEMA``: alongside ``kind`` it
    carries the raw evidence masks, the requested modules, the
    unreachable subset, and per-module ``[module, middles_mask]`` pairs.
    With a non-None ``fabric`` (a non-Clos fabric model) the dict also
    names the fabric and lists the structurally unreachable destination
    modules; the Clos dict is unchanged key for key.
    """
    per_destination = []
    reachable_union = 0
    for p in iter_bits(dest_mask):
        middles = 0
        for j, reach in coverable.items():
            if reach >> p & 1:
                middles |= 1 << j
        per_destination.append([p, middles])
        if middles:
            reachable_union |= 1 << p
    unreachable = dest_mask & ~reachable_union
    structural = dest_mask & static_unreachable
    if available == 0:
        kind = "saturated_wavelength" if msw_dominant else "converter_exhaustion"
    elif structural:
        kind = "awg_no_path"
    elif unreachable:
        kind = "full_middles"
    else:
        kind = "no_cover"
    cause = {
        "kind": kind,
        "x": x,
        "input_module": input_module,
        "source_wavelength": source_wavelength,
        "failed_middles_mask": failed_mask,
        "first_stage_blocked_mask": blocked_mask,
        "available_middles_mask": available,
        "destination_modules": list(iter_bits(dest_mask)),
        "unreachable_modules": list(iter_bits(unreachable)),
        "per_destination": per_destination,
    }
    if fabric is not None:
        cause["fabric"] = fabric
        cause["awg_unreachable_modules"] = list(iter_bits(structural))
    return cause


# -- state level -------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionRequest:
    """One setup request in module/bitmask form.

    ``dest_mask`` has bit ``p`` set per requested output module;
    ``replication`` selects the fabric inside a batched state.
    """

    input_module: int
    source_wavelength: int
    dest_mask: int
    replication: int = 0


@dataclass(frozen=True)
class EngineConnection:
    """A live engine connection -- the handle :func:`release` takes."""

    input_module: int
    source_wavelength: int
    replication: int
    branches: tuple[tuple[Any, ...], ...]


def avail(state: FabricState, req: AdmissionRequest) -> int:
    """Bitmask of middles the request can enter through its first stage."""
    blocked, _ = state.setup_views(req.input_module, req.source_wavelength)
    return free_middles(
        state.all_masks[req.replication],
        blocked[req.replication],
        state.failed_mask,
    )


def coverable(state: FabricState, req: AdmissionRequest) -> dict[int, int]:
    """Per available middle, the requested modules it can reach now."""
    blocked, blockers = state.setup_views(
        req.input_module, req.source_wavelength
    )
    b = req.replication
    available = free_middles(
        state.all_masks[b], blocked[b], state.failed_mask
    )
    return reach_map(available, req.dest_mask, blockers[b])


def admit(
    state: FabricState, req: AdmissionRequest
) -> EngineConnection | None:
    """Route and commit ``req``, or return None when it blocks."""
    blocked, blockers = state.setup_views(
        req.input_module, req.source_wavelength
    )
    b = req.replication
    available = free_middles(
        state.all_masks[b], blocked[b], state.failed_mask
    )
    cover, _ = probe_cover(available, req.dest_mask, state.x, blockers[b])
    if cover is None:
        return None
    branches = state.allocate(
        b, req.input_module, req.source_wavelength, cover
    )
    return EngineConnection(
        input_module=req.input_module,
        source_wavelength=req.source_wavelength,
        replication=b,
        branches=branches,
    )


def release(state: FabricState, conn: EngineConnection) -> None:
    """Tear down a connection previously returned by :func:`admit`."""
    state.free(
        conn.replication,
        conn.input_module,
        conn.source_wavelength,
        conn.branches,
    )


def classify_block(state: FabricState, req: AdmissionRequest) -> dict[str, Any]:
    """Why ``req`` blocks right now -- the ``explain_block`` cause dict."""
    blocked, blockers = state.setup_views(
        req.input_module, req.source_wavelength
    )
    b = req.replication
    blocked_mask = blocked[b]
    available = free_middles(
        state.all_masks[b], blocked_mask, state.failed_mask
    )
    cov = reach_map(available, req.dest_mask, blockers[b])
    su = getattr(state, "static_unreach_masks", None)
    fabric = state.geometries[b].fabric
    return block_cause(
        x=state.x,
        input_module=req.input_module,
        source_wavelength=req.source_wavelength,
        blocked_mask=blocked_mask,
        available=available,
        coverable=cov,
        dest_mask=req.dest_mask,
        msw_dominant=state.msw_dominant,
        failed_mask=state.failed_mask,
        fabric=None if fabric == "clos" else fabric,
        static_unreachable=(
            0 if su is None else su[b][req.source_wavelength]
        ),
    )
