"""Frozen fabric geometry shared by every admission-semantics consumer.

A :class:`FabricGeometry` pins down everything the admission kernels
need to know about one ``v(n, r, m, k)`` fabric: the topology numbers,
the construction (which stage dominates -- MSW or MAW middles), the
endpoint model the output stage runs under, the routing budget ``x``,
and the fabric model (:mod:`repro.engine.fabrics`) whose admission
program applies -- the paper's three-stage Clos by default.  It is
hashable and immutable, so batched state backends can carry one
geometry per replication and kernels can branch on the two derived
booleans (:attr:`msw_dominant`, :attr:`model_msw`) without re-deriving
them per event.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import valid_x_range
from repro.engine.fabrics import FabricSpec, get_fabric
from repro.engine.planes import PlaneLayout

__all__ = ["FabricGeometry"]


@dataclass(frozen=True)
class FabricGeometry:
    """One fabric's admission-relevant shape: ``v(n, r, m, k)`` + semantics.

    Attributes:
        n: ports per input/output module.
        r: input (= output) module count.
        k: wavelengths per fiber.
        m: middle-switch count.
        construction: MSW-dominant or MAW-dominant middles (Section 3.1).
        model: the endpoint multicast model (output-stage semantics).
        x: routing parameter -- max middle switches per connection.
        fabric: registered fabric-model name (``"clos"`` is the paper's
            three-stage network; see :mod:`repro.engine.fabrics`).
    """

    n: int
    r: int
    k: int
    m: int
    construction: Construction
    model: MulticastModel
    x: int
    fabric: str = "clos"

    def __post_init__(self) -> None:
        # The k/r guards come first: valid_x_range and the plane packing
        # behave nonsensically on degenerate counts, so a zero-wavelength
        # geometry must fail here with the uniform message rather than
        # deep inside a consumer.
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")
        legal_x = valid_x_range(self.n, self.r)
        if self.x not in legal_x:
            raise ValueError(
                f"x={self.x} outside the legal range "
                f"[{legal_x[0]}, {legal_x[-1]}] for n={self.n}, r={self.r}"
            )
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        get_fabric(self.fabric).validate_geometry(self)

    @property
    def msw_dominant(self) -> bool:
        """True when the middle modules pin carriers to the source wavelength."""
        return self.construction is Construction.MSW_DOMINANT

    @property
    def model_msw(self) -> bool:
        """True when the endpoint model pins deliveries to the source wavelength."""
        return self.model is MulticastModel.MSW

    @property
    def all_middles_mask(self) -> int:
        """Bitmask with one bit per middle switch."""
        return (1 << self.m) - 1

    @property
    def k_full(self) -> int:
        """Bitmask of a fully busy fiber (all ``k`` wavelengths set)."""
        return (1 << self.k) - 1

    @property
    def plane_layout(self) -> PlaneLayout:
        """Words-per-mask descriptor for this fabric's three mask families."""
        return PlaneLayout.for_fabric(self.m, self.r, self.k)

    @property
    def fabric_spec(self) -> FabricSpec:
        """The registered fabric model this geometry instantiates."""
        return get_fabric(self.fabric)

    def static_unreach_masks(self) -> list[int] | None:
        """Per source wavelength, modules no middle switch can reach.

        None for fabrics without a static wavelength-routing constraint
        (the Clos); otherwise ``masks[sw]`` is the evidence mask behind
        the ``awg_no_path`` blocking kind at this geometry's ``m``.
        """
        return self.fabric_spec.static_unreach(self.m, self.r, self.k)

    def with_m(self, m: int) -> "FabricGeometry":
        """The same fabric resized to ``m`` middle switches."""
        return replace(self, m=m)
