"""Bitmask set-cover search -- Lemma 4's routing core.

The paper routes each multicast connection through at most ``x`` middle
switches; Lemma 4 reduces admission to a set-cover problem with a
cardinality cap.  :func:`find_cover_bits` solves it exactly on integer
bitmasks: max-coverage greedy first, exact depth-first search with
dominance pruning as the fallback, so a request is declared blocked
only when *no* cover of size <= ``x`` exists.

This module is the bottom of the engine -- pure functions over ints,
no repro imports -- and is re-exported unchanged through
:mod:`repro.multistage.routing`, whose frozenset reference kernel the
equivalence tests pin it against (bit-identical covers: candidate
ordering, greedy tie-breaking, DFS expansion order and the final
destination->switch assignment).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = [
    "CoverSearch",
    "find_cover_bits",
    "iter_bits",
    "mask_of",
]


def mask_of(items: Iterable[int]) -> int:
    """Bitmask with bit ``i`` set for each ``i`` in ``items``."""
    mask = 0
    for item in items:
        mask |= 1 << item
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@dataclass
class CoverSearch:
    """Statistics of one cover search (exposed for tests/benchmarks)."""

    greedy_hit: bool = False
    exact_nodes: int = 0
    cover: dict[int, list[int]] | None = field(default=None)


def _greedy_bits(
    dest_mask: int,
    coverable: Mapping[int, int],
    candidates: Sequence[int],
    max_switches: int,
) -> dict[int, int] | None:
    """Max-coverage greedy on bitmasks; ties broken by candidate order."""
    uncovered = dest_mask
    chosen: dict[int, int] = {}
    while uncovered and len(chosen) < max_switches:
        best = None
        best_gain = 0
        best_count = 0
        for j in candidates:
            if j in chosen:
                continue
            gain = coverable[j] & uncovered
            count = gain.bit_count()
            if count > best_count:
                best, best_gain, best_count = j, gain, count
        if best is None:
            return None
        chosen[best] = best_gain
        uncovered &= ~best_gain
    return chosen if not uncovered else None


def _exact_bits(
    dest_mask: int,
    coverable: Mapping[int, int],
    candidates: Sequence[int],
    max_switches: int,
    stats: CoverSearch,
) -> dict[int, int] | None:
    # Keep only useful candidates, largest coverage first (helps pruning).
    useful = [j for j in candidates if coverable[j] & dest_mask]
    useful.sort(key=lambda j: -(coverable[j] & dest_mask).bit_count())

    def recurse(uncovered: int, start: int, picked: list[int]) -> list[int] | None:
        stats.exact_nodes += 1
        if not uncovered:
            return picked
        if len(picked) == max_switches:
            return None
        remaining_slots = max_switches - len(picked)
        # Bound: even taking the largest remaining coverages can't finish.
        best_possible = sum(
            sorted(
                ((coverable[j] & uncovered).bit_count() for j in useful[start:]),
                reverse=True,
            )[:remaining_slots]
        )
        if best_possible < uncovered.bit_count():
            return None
        for index in range(start, len(useful)):
            j = useful[index]
            gain = coverable[j] & uncovered
            if not gain:
                continue
            result = recurse(uncovered & ~gain, index + 1, [*picked, j])
            if result is not None:
                return result
        return None

    picked = recurse(dest_mask, 0, [])
    if picked is None:
        return None
    # Assign each destination to the first picked switch that covers it.
    cover: dict[int, int] = {j: 0 for j in picked}
    for p in iter_bits(dest_mask):
        bit = 1 << p
        for j in picked:
            if coverable[j] & bit:
                cover[j] |= bit
                break
    return {j: bits for j, bits in cover.items() if bits}


def find_cover_bits(
    dest_mask: int,
    coverable: Mapping[int, int],
    max_switches: int,
    *,
    stats: CoverSearch | None = None,
    preference: Sequence[int] | None = None,
) -> dict[int, int] | None:
    """Bitmask core of :func:`repro.multistage.routing.find_cover`.

    Args:
        dest_mask: bitmask of the output modules the request must reach.
        coverable: per available middle switch, the bitmask of output
            modules reachable through it right now (extra bits outside
            ``dest_mask`` are ignored).
        max_switches: the routing parameter ``x``.
        stats: optional search-statistics accumulator (``stats.cover``
            is left untouched here; the wrappers fill it).
        preference: candidate order for greedy tie-breaking.

    Returns:
        ``{middle_switch: assigned destination bitmask}`` or None when no
        cover of size <= ``max_switches`` exists.
    """
    if not dest_mask:
        return {}
    if max_switches < 1:
        raise ValueError(f"max_switches must be >= 1, got {max_switches}")
    candidates = sorted(coverable)
    if preference is not None:
        in_preference = [j for j in preference if j in coverable]
        rest = [j for j in candidates if j not in set(in_preference)]
        candidates = in_preference + rest
    greedy = _greedy_bits(dest_mask, coverable, candidates, max_switches)
    if greedy is not None:
        if stats is not None:
            stats.greedy_hit = True
        return greedy
    return _exact_bits(
        dest_mask,
        coverable,
        sorted(coverable),
        max_switches,
        stats if stats is not None else CoverSearch(),
    )
