"""The fabric-model registry -- the topology seam of the engine.

A *fabric model* is one switching-network family the engine can
replay traffic through: the paper's three-stage ``v(n, r, m, k)``
Clos, the single-stage nonblocking WDM crossbar it is compared
against (Section 2 / Table 1), or an AWG-based Clos variant whose
passive wavelength routers constrain which middle switch can reach
which output module (Ye & Lee, *AWG-based Non-blocking Clos
Networks*, arXiv:1308.4477).

Each registered :class:`FabricSpec` contributes the three things the
rest of the stack needs:

* **geometry** -- which :class:`~repro.engine.geometry.FabricGeometry`
  instances are legal (``validate_geometry``) and what the fabric
  costs in SOA crosspoints at that shape (``cost``);
* **admission program** -- either the full Clos middle-stage replay
  (optionally constrained by a static per-``(middle, wavelength)``
  reach rule that the state backends seed into their blocker
  bitplanes at construction), or the single-stage nonblocking fast
  path (``nonblocking=True``: every legal request is admitted, so the
  engine skips the replay entirely and the fabric doubles as a live
  zero-blocking oracle);
* **block-cause taxonomy** -- the subset of ``ALL_BLOCK_KINDS`` the
  fabric can produce (``block_kinds``), which ``repro.obs`` cause
  labels and the fused kernel's histogram columns share.

The compatibility anchor mirrors the workload registry: the Clos
fabric's cache/stream-key ``token()`` is ``None``, so every cache
address, golden value and adaptive round schedule recorded before the
seam existed is still valid, and the Clos path through the seam is
bit-identical to the pre-refactor engine (asserted in
``tests/engine/test_fabrics.py``).

Registering a new fabric is one :func:`register_fabric` call; the name
then works everywhere -- ``FabricGeometry(fabric=...)``, the batch
engine, ``api.blocking``/``api.sweep``, ``--fabric`` on the CLI, the
``wdm-repro fabrics`` matrix and the ``topology`` bench section -- with
no consumer changes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import module_crosspoints, multistage_cost

__all__ = [
    "CLOS",
    "FabricSpec",
    "fabric_names",
    "fabric_status",
    "get_fabric",
    "register_fabric",
]

#: the Clos blocking-cause taxonomy (mirrors ``kernel.BLOCK_KINDS``;
#: stated here as plain strings so this module stays import-light).
_CLOS_KINDS = (
    "saturated_wavelength",
    "converter_exhaustion",
    "full_middles",
    "no_cover",
)

#: the wavelength-routed taxonomy: everything Clos can produce plus the
#: structural ``awg_no_path`` (a destination module no middle switch can
#: reach on the request's wavelength, however idle the fabric is).
_AWG_KINDS = _CLOS_KINDS + ("awg_no_path",)


@dataclass(frozen=True)
class FabricSpec:
    """One registered fabric model (see the module docstring).

    Attributes:
        name: registry tag; the ``--fabric`` / cache-token name.
        title: short human label for tables and reports.
        description: one-line summary shown by ``wdm-repro fabrics``.
        nonblocking: True for single-stage fabrics that admit every
            legal request -- the engine skips the middle-stage replay
            and records zero blocked events (the live oracle property).
        constructions: constructions the fabric supports; None = all.
        reach_rule: static wavelength-routing constraint, or None.
            ``reach_rule(j, sw, r, k)`` returns the bitmask of output
            modules middle ``j`` can *never* reach on source wavelength
            ``sw`` -- a pure function of the topology, independent of
            occupancy, which the state backends OR into their blocker
            bitplanes once at construction.
        block_kinds: the cause taxonomy this fabric can produce.
        cost_fn: ``(n, r, m, k, construction, model) -> crosspoints``.
    """

    name: str
    title: str
    description: str
    nonblocking: bool = False
    constructions: tuple[Construction, ...] | None = None
    reach_rule: Callable[[int, int, int, int], int] | None = None
    block_kinds: tuple[str, ...] = _CLOS_KINDS
    cost_fn: Callable[..., int] = field(default=lambda *a: 0, repr=False)

    # -- identity ------------------------------------------------------------

    def token(self) -> str | None:
        """The fabric's cache/stream-key identity.

        Clos returns None -- it contributes nothing to any key, so
        every pre-seam cache address and adaptive schedule keeps its
        value (the same anchor the uniform workload uses).  Every other
        fabric returns its name, so cached Clos results can never be
        served for a different topology (and vice versa).
        """
        return None if self.name == "clos" else self.name

    # -- geometry ------------------------------------------------------------

    def validate_geometry(self, geometry: Any) -> None:
        """Reject geometries this fabric cannot be built at."""
        if (
            self.constructions is not None
            and geometry.construction not in self.constructions
        ):
            allowed = ", ".join(c.name for c in self.constructions)
            raise ValueError(
                f"fabric {self.name!r} supports only the {allowed} "
                f"construction(s), got {geometry.construction.name}"
            )

    def cost(
        self,
        n: int,
        r: int,
        m: int,
        k: int,
        construction: Construction = Construction.MSW_DOMINANT,
        model: MulticastModel = MulticastModel.MSW,
    ) -> int:
        """SOA crosspoint count at shape ``v(n, r, m, k)`` (Table 1)."""
        return self.cost_fn(n, r, m, k, construction, model)

    # -- admission program ---------------------------------------------------

    def middle_block_mask(self, j: int, sw: int, r: int, k: int) -> int:
        """Modules middle ``j`` can never reach on wavelength ``sw``."""
        if self.reach_rule is None:
            return 0
        return self.reach_rule(j, sw, r, k)

    def static_unreach(self, m: int, r: int, k: int) -> list[int] | None:
        """Per source wavelength, the modules *no* middle can reach.

        ``masks[sw]`` has bit ``p`` set when every middle ``j < m`` is
        statically blocked from module ``p`` on wavelength ``sw`` --
        the evidence behind the ``awg_no_path`` blocking kind.  None
        when the fabric has no static constraint.
        """
        if self.reach_rule is None:
            return None
        all_modules = (1 << r) - 1
        masks = []
        for sw in range(k):
            unreach = all_modules
            for j in range(m):
                unreach &= self.reach_rule(j, sw, r, k)
                if not unreach:
                    break
            masks.append(unreach)
        return masks


# -- the built-in fabric models ----------------------------------------------


def _clos_cost(
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
) -> int:
    return multistage_cost(n, r, m, k, construction, model).crosspoints


def _crossbar_cost(
    n: int,
    r: int,
    m: int,
    k: int,
    construction: Construction,
    model: MulticastModel,
) -> int:
    # One flat N x N module over all N = n*r terminals; m is meaningless
    # for a single-stage fabric (Figs. 4/6/7, Table 1).
    return module_crosspoints(model, n * r, n * r, k)


def _awg_reach_rule(j: int, sw: int, r: int, k: int) -> int:
    """The cyclic AWG routing constraint of the Ye & Lee construction.

    A ``k``-port arrayed waveguide grating routes wavelength ``w``
    entering port ``a`` to port ``(a + w) mod k``: the passive device
    permutes, it never switches.  Building the middle stage's output
    fan-out from AWGs therefore pins which output modules middle ``j``
    can reach on a given carrier: module ``p`` is reachable on source
    wavelength ``sw`` iff ``(j + p) mod k == sw mod k``.  The returned
    mask has a bit per *unreachable* module -- zero when ``k == 1``
    (one wavelength routes everywhere), which is exactly why the
    ``awg_clos`` fabric degenerates to plain ``clos`` bit for bit at
    ``k = 1``.
    """
    mask = 0
    for p in range(r):
        if (j + p) % k != sw % k:
            mask |= 1 << p
    return mask


CLOS = FabricSpec(
    name="clos",
    title="three-stage Clos",
    description=(
        "the paper's v(n, r, m, k) three-stage network -- the full "
        "middle-stage admission replay (the legacy engine, bit-identical)"
    ),
    cost_fn=_clos_cost,
)

_CROSSBAR = FabricSpec(
    name="crossbar",
    title="single-stage WDM crossbar",
    description=(
        "the nonblocking N x N crossbar of Figs. 4/6/7 -- admits every "
        "legal request, blocking is exactly zero (the live oracle)"
    ),
    nonblocking=True,
    block_kinds=(),
    cost_fn=_crossbar_cost,
)

_AWG_CLOS = FabricSpec(
    name="awg_clos",
    title="AWG-routed Clos",
    description=(
        "three-stage Clos with passive AWG wavelength routing on the "
        "middle stage (Ye & Lee, arXiv:1308.4477) -- middle j reaches "
        "module p on wavelength w iff (j + p) mod k == w mod k"
    ),
    # AWGs route, they do not convert: the middle stage must pin the
    # carrier to the source wavelength, i.e. the MSW-dominant
    # construction.  MAW-dominant middles would convert freely, which
    # the passive device cannot do.
    constructions=(Construction.MSW_DOMINANT,),
    reach_rule=_awg_reach_rule,
    block_kinds=_AWG_KINDS,
    cost_fn=_clos_cost,
)


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, FabricSpec] = {}


def register_fabric(spec: FabricSpec) -> FabricSpec:
    """Add a fabric model to the registry (the plug-in seam).

    The spec's name becomes a valid ``FabricGeometry(fabric=...)``
    value, a ``--fabric`` choice, a ``wdm-repro fabrics`` row and a
    cache-key token -- no consumer changes needed, mirroring
    :func:`repro.engine.backends.register_backend` and
    :func:`repro.workloads.register_workload`.
    """
    if spec.name in _REGISTRY:
        raise ValueError(f"fabric {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def fabric_names() -> list[str]:
    """Registered fabric names, sorted."""
    return sorted(_REGISTRY)


def get_fabric(name: str) -> FabricSpec:
    """The spec of ``name``; unknown names list the registry."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(fabric_names())
        raise ValueError(
            f"unknown fabric {name!r}; choose from: {known}"
        ) from None


def fabric_status() -> dict[str, str]:
    """Per-fabric one-line description (the CLI matrix's first column)."""
    return {
        name: _REGISTRY[name].description for name in fabric_names()
    }


register_fabric(CLOS)
register_fabric(_CROSSBAR)
register_fabric(_AWG_CLOS)
