"""Electronic multicast scheduling: rounds = conflict-graph coloring.

In a single-wavelength switch, two demands that share a source node or
a destination node cannot proceed in the same round; a minimal schedule
is a minimum coloring of the conflict graph.  We provide the standard
greedy bound (largest-first) and an exact branch-and-bound chromatic
number for small batches (the oracle the greedy is tested against).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.scheduling.demands import Demand

__all__ = ["conflict_graph", "electronic_rounds", "exact_chromatic_rounds"]


def conflict_graph(demands: Sequence[Demand]) -> nx.Graph:
    """The pairwise conflict graph of a demand batch (nodes = indices)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(len(demands)))
    for i in range(len(demands)):
        for j in range(i + 1, len(demands)):
            if demands[i].conflicts_with(demands[j]):
                graph.add_edge(i, j)
    return graph


def electronic_rounds(demands: Sequence[Demand]) -> tuple[int, list[list[int]]]:
    """Greedy (largest-first) schedule: ``(rounds, demand indices per round)``.

    Greedy coloring is within ``max_degree + 1`` of optimal and is what
    a practical scheduler would run; the exact oracle below bounds how
    much it gives away on small instances.
    """
    if not demands:
        return 0, []
    graph = conflict_graph(demands)
    coloring = nx.greedy_color(graph, strategy="largest_first")
    rounds = max(coloring.values()) + 1
    schedule: list[list[int]] = [[] for _ in range(rounds)]
    for index, color in sorted(coloring.items()):
        schedule[color].append(index)
    return rounds, schedule


def exact_chromatic_rounds(
    demands: Sequence[Demand], *, node_budget: int = 200_000
) -> int | None:
    """Exact minimum rounds (chromatic number) by branch and bound.

    Returns None if the budget runs out (instances beyond ~20 demands).
    """
    if not demands:
        return 0
    graph = conflict_graph(demands)
    order = sorted(graph.nodes, key=lambda v: -graph.degree(v))
    best = electronic_rounds(demands)[0]  # greedy upper bound
    colors: dict[int, int] = {}
    nodes_explored = 0

    def feasible(vertex: int, color: int) -> bool:
        return all(
            colors.get(neighbor) != color for neighbor in graph.neighbors(vertex)
        )

    def backtrack(index: int, used: int) -> None:
        nonlocal best, nodes_explored
        nodes_explored += 1
        if nodes_explored > node_budget:
            raise _Budget
        if used >= best:
            return
        if index == len(order):
            best = used
            return
        vertex = order[index]
        for color in range(min(used + 1, best - 1)):
            if feasible(vertex, color):
                colors[vertex] = color
                backtrack(index + 1, max(used, color + 1))
                del colors[vertex]

    try:
        backtrack(0, 0)
    except _Budget:
        return None
    return best


class _Budget(Exception):
    pass
