"""Node-level multicast demands and batch generators.

A :class:`Demand` is wavelength-free: "node ``s`` must deliver one
message to nodes ``D``".  How many demands can proceed concurrently is
exactly what distinguishes electronic from WDM switching, so the demand
abstraction deliberately knows nothing about wavelengths.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["Demand", "random_demand_batch", "video_fanout_batch"]


@dataclass(frozen=True)
class Demand:
    """One multicast message: source node -> set of destination nodes."""

    source: int
    destinations: frozenset[int]

    def __init__(self, source: int, destinations: Iterable[int]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "destinations", frozenset(destinations))
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        if not self.destinations:
            raise ValueError("a demand needs at least one destination")
        if any(d < 0 for d in self.destinations):
            raise ValueError("destinations must be >= 0")

    @property
    def fanout(self) -> int:
        """Number of destination nodes."""
        return len(self.destinations)

    def conflicts_with(self, other: Demand) -> bool:
        """Electronic conflict rule: shared source or shared destination.

        A node has one transmitter (can source one message per round)
        and one receiver (can accept one message per round) in the
        single-wavelength world.
        """
        if self.source == other.source:
            return True
        return bool(self.destinations & other.destinations)


def random_demand_batch(
    n_nodes: int,
    demands: int,
    *,
    seed: int,
    max_fanout: int | None = None,
) -> list[Demand]:
    """A reproducible random batch (sources may repeat across demands)."""
    if n_nodes < 2:
        raise ValueError(f"need >= 2 nodes, got {n_nodes}")
    rng = random.Random(seed)
    cap = max_fanout if max_fanout is not None else max(1, n_nodes // 2)
    batch = []
    for _ in range(demands):
        source = rng.randrange(n_nodes)
        others = [node for node in range(n_nodes) if node != source]
        fanout = rng.randint(1, min(cap, len(others)))
        batch.append(Demand(source, rng.sample(others, fanout)))
    return batch


def video_fanout_batch(
    n_nodes: int,
    channels: int,
    *,
    seed: int,
    popularity_skew: float = 1.0,
) -> list[Demand]:
    """A VoD-shaped batch: few hot sources, overlapping audiences.

    Channel ``c`` originates at node ``c % (n_nodes // 4 + 1)`` (a small
    pool of servers) and reaches a Zipf-sized audience -- the
    overlapped-destination regime where electronic scheduling hurts
    most.
    """
    if n_nodes < 4:
        raise ValueError(f"need >= 4 nodes, got {n_nodes}")
    rng = random.Random(seed)
    servers = max(1, n_nodes // 4)
    batch = []
    for channel in range(channels):
        source = channel % servers
        share = 1.0 / (1.0 + channel) ** popularity_skew
        audience_size = max(1, int(share * (n_nodes - servers)))
        audience_pool = [node for node in range(servers, n_nodes)]
        batch.append(
            Demand(source, rng.sample(audience_pool, min(audience_size, len(audience_pool))))
        )
    return batch
