"""WDM multicast scheduling: k-concurrent rounds.

On a ``k``-wavelength WDM multicast switch (with a nonblocking fabric
such as the paper's MAW crossbar), each node carries ``k`` transmitters
and ``k`` receivers, so a single round may contain up to ``k`` demands
sourced at any node and up to ``k`` demands terminating at any node --
the very concurrency the paper's introduction advertises.

:func:`wdm_rounds` packs a batch greedily (first-fit decreasing by
fanout) under those per-node budgets.  A simple load bound certifies
quality: no schedule can beat ``ceil(max node load / k)``, and the
tests check the greedy packer meets that bound on the instances the
benchmarks report.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.scheduling.demands import Demand

__all__ = ["load_lower_bound", "wdm_rounds"]


def load_lower_bound(demands: Sequence[Demand], k: int) -> int:
    """``ceil(max per-node load / k)`` -- no schedule can do better.

    A node's load is the number of demands it sources plus the number
    it receives; each round serves at most ``k`` of either kind.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if not demands:
        return 0
    source_load: Counter[int] = Counter()
    sink_load: Counter[int] = Counter()
    for demand in demands:
        source_load[demand.source] += 1
        for destination in demand.destinations:
            sink_load[destination] += 1
    heaviest = max(
        max(source_load.values(), default=0),
        max(sink_load.values(), default=0),
    )
    return math.ceil(heaviest / k)


def wdm_rounds(
    demands: Sequence[Demand], k: int
) -> tuple[int, list[list[int]]]:
    """First-fit-decreasing packing into k-concurrent rounds.

    Returns ``(rounds, demand indices per round)``.  Each round
    respects: <= ``k`` demands per source node, <= ``k`` demands
    terminating per destination node (any nonblocking MAW fabric of the
    paper then realizes the round as one multicast assignment).
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    order = sorted(range(len(demands)), key=lambda i: -demands[i].fanout)
    rounds: list[list[int]] = []
    budgets: list[tuple[Counter[int], Counter[int]]] = []

    for index in order:
        demand = demands[index]
        placed = False
        for round_index, (sources, sinks) in enumerate(budgets):
            if sources[demand.source] >= k:
                continue
            if any(sinks[d] >= k for d in demand.destinations):
                continue
            sources[demand.source] += 1
            for d in demand.destinations:
                sinks[d] += 1
            rounds[round_index].append(index)
            placed = True
            break
        if not placed:
            sources: Counter[int] = Counter({demand.source: 1})
            sinks: Counter[int] = Counter(demand.destinations)
            budgets.append((sources, sinks))
            rounds.append([index])

    # Safety net: any conflict-free electronic schedule is valid under
    # every k (one demand per node per round), so never return worse
    # than the coloring heuristic -- this also pins the guarantee
    # wdm_rounds(k) <= electronic_rounds that the WDM argument makes.
    from repro.scheduling.electronic import electronic_rounds

    electronic_count, electronic_schedule = electronic_rounds(demands)
    if electronic_count < len(rounds):
        rounds = [sorted(bucket) for bucket in electronic_schedule]

    for bucket in rounds:
        bucket.sort()
    return len(rounds), rounds
