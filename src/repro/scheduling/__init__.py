"""Multicast batch scheduling: the paper's Section 1 motivation, quantified.

The introduction argues that electronic multicast switches need "a
complex scheduling algorithm ... to avoid conflicts among multiple
multicast connections with overlapped destinations", while WDM lets a
source send different messages to multiple destination sets and a
destination receive several messages concurrently.

This package makes that comparison executable: given a batch of
node-level multicast *demands*,

* :mod:`repro.scheduling.electronic` computes how many sequential
  rounds a single-wavelength (electronic) switch needs -- a coloring of
  the demand conflict graph;
* :mod:`repro.scheduling.wdm` packs the same batch into rounds on a
  ``k``-wavelength WDM switch, where each node may source and sink up
  to ``k`` demands per round.

The benchmark ``bench_scheduling.py`` measures the resulting round
compression (up to ``k``-fold), the intro's claim in numbers.
"""

from repro.scheduling.demands import Demand, random_demand_batch, video_fanout_batch
from repro.scheduling.electronic import (
    conflict_graph,
    electronic_rounds,
    exact_chromatic_rounds,
)
from repro.scheduling.wdm import wdm_rounds

__all__ = [
    "Demand",
    "conflict_graph",
    "electronic_rounds",
    "exact_chromatic_rounds",
    "random_demand_batch",
    "video_fanout_batch",
    "wdm_rounds",
]
