"""Heavy-tailed (truncated Pareto) multicast fanout traffic."""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from typing import ClassVar

from repro.core.models import MulticastModel
from repro.switching.generators import TrafficEvent, dynamic_traffic
from repro.workloads.base import WorkloadConfig, register_workload

__all__ = ["HeavyTailFanoutConfig"]


@register_workload
@dataclass(frozen=True)
class HeavyTailFanoutConfig(WorkloadConfig):
    """Pareto-distributed multicast group sizes, truncated to the fabric.

    Fanouts follow a discrete heavy tail: ``f = floor(Pareto(alpha))``
    with scale 1, clamped to the feasible range ``[1, cap]`` (the
    fabric's free ports and ``max_fanout``).  Small ``alpha`` means
    frequent fabric-wide multicasts -- the stress regime of the
    AWG-based Clos comparison, where wide groups exhaust middle-stage
    cover sets long before uniform traffic would.  Destination ports
    stay uniform; only the group-size law changes.

    Attributes:
        alpha: Pareto tail exponent (> 0; smaller = heavier tail, so
            more near-broadcast groups).
    """

    alpha: float = 1.1

    workload: ClassVar[str] = "heavytail_fanout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")

    def events(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: random.Random,
        max_fanout: int | None,
    ) -> Iterator[TrafficEvent]:
        inverse_alpha = 1.0 / self.alpha

        def pick_fanout(pick_rng: random.Random, cap: int) -> int:
            # Inverse-CDF Pareto with scale 1: u in [0, 1) maps to
            # (1 - u) ** (-1/alpha) in [1, inf); the floor is the
            # discrete tail and draw_connection clamps to [1, cap].
            survival = 1.0 - pick_rng.random()
            return min(cap, int(survival ** -inverse_alpha))

        return dynamic_traffic(
            model, n_ports, k,
            steps=steps, seed=rng, max_fanout=max_fanout,
            pick_fanout=pick_fanout,
        )
