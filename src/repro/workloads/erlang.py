"""Poisson arrivals with exponential holding times (offered Erlangs)."""

from __future__ import annotations

import heapq
import random
from collections.abc import Iterator
from dataclasses import dataclass
from typing import ClassVar

from repro.core.models import MulticastModel
from repro.switching.generators import TrafficEvent, draw_connection
from repro.workloads.base import WorkloadConfig, register_workload

__all__ = ["PoissonErlangConfig"]


@register_workload
@dataclass(frozen=True)
class PoissonErlangConfig(WorkloadConfig):
    """Poisson call arrivals with exponential holding times.

    A continuous-time loss model: calls arrive at rate
    ``offered_erlangs / mean_holding`` and hold for
    ``Exponential(mean_holding)``, so the offered load is
    ``offered_erlangs`` -- sweeps can be expressed in Erlangs instead
    of a teardown probability.  Setups and teardowns are emitted in
    simulated-time order (a heap of scheduled departures) until
    ``steps`` events have been produced; arrivals that find no feasible
    source endpoint are lost without an event, exactly like the
    discrete generator's infeasible draws.  Connection shapes reuse the
    shared :func:`repro.switching.generators.draw_connection` draw
    sequence, so feasibility (and hence replay legality) is inherited.

    Attributes:
        offered_erlangs: offered load ``arrival rate x mean holding``
            (> 0; larger = more concurrent calls pressing the fabric).
        mean_holding: mean call duration in simulated time units (> 0;
            a pure time scale -- it cancels out of the event sequence
            except through ``offered_erlangs``).
    """

    offered_erlangs: float = 4.0
    mean_holding: float = 1.0

    workload: ClassVar[str] = "poisson_erlang"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.offered_erlangs <= 0.0:
            raise ValueError(
                f"offered_erlangs must be > 0, got {self.offered_erlangs}"
            )
        if self.mean_holding <= 0.0:
            raise ValueError(
                f"mean_holding must be > 0, got {self.mean_holding}"
            )

    def events(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: random.Random,
        max_fanout: int | None,
    ) -> Iterator[TrafficEvent]:
        cap = n_ports if max_fanout is None else min(max_fanout, n_ports)
        if cap < 1:
            raise ValueError(
                f"max_fanout must allow at least one destination, got {cap}"
            )
        arrival_rate = self.offered_erlangs / self.mean_holding
        departure_rate = 1.0 / self.mean_holding

        free_inputs: set[int] = {
            port * k + wavelength
            for port in range(n_ports)
            for wavelength in range(k)
        }
        free_outputs: set[int] = set(free_inputs)
        active: dict[int, "TrafficEvent"] = {}
        departures: list[tuple[float, int]] = []
        now = 0.0
        emitted = 0
        next_id = 0

        while emitted < steps:
            now += rng.expovariate(arrival_rate)
            # Scheduled departures before this arrival leave first.
            while departures and departures[0][0] <= now and emitted < steps:
                _, connection_id = heapq.heappop(departures)
                event = active.pop(connection_id)
                connection = event.connection
                free_inputs.add(
                    connection.source.port * k + connection.source.wavelength
                )
                free_outputs.update(
                    d.port * k + d.wavelength for d in connection.destinations
                )
                emitted += 1
                yield TrafficEvent("teardown", connection, connection_id)
            if emitted >= steps:
                return
            connection = draw_connection(
                rng, model, k, cap, free_inputs, free_outputs
            )
            if connection is None:
                if not active:
                    return  # degenerate fabric: nothing can ever connect
                continue  # all sources busy: the offered call is lost
            free_inputs.discard(
                connection.source.port * k + connection.source.wavelength
            )
            free_outputs.difference_update(
                d.port * k + d.wavelength for d in connection.destinations
            )
            holding = rng.expovariate(departure_rate)
            heapq.heappush(departures, (now + holding, next_id))
            event = TrafficEvent("setup", connection, next_id)
            active[next_id] = event
            next_id += 1
            emitted += 1
            yield event
