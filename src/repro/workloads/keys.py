"""The single home of seed/stream-key derivation.

Before the workload library, three modules each grew their own copy of
the same idiom: ``perf/adaptive.py`` formatted the round-schedule
stream key by hand, ``analysis/montecarlo.py`` formatted the
adversary-seed fingerprint by hand, and ``switching/generators.py``
owned the per-replication RNG constructor.  Every workload config needs
all three (its identity must enter the keys, its generator must consume
the replication stream), so the derivation now lives here and the
consumers delegate:

* :func:`key_fragment` -- the canonical ``a=1|b=2`` fingerprint of a
  parameter mapping (enums render by ``.name``, exactly the historical
  format, so existing schedule keys and golden adaptive rounds are
  unchanged);
* :func:`workload_fragment` -- the suffix a workload token appends to a
  stream key (empty for uniform traffic: the compatibility anchor);
* :func:`schedule_rng` -- the deterministic per-(key, round, stratum)
  RNG behind :func:`repro.perf.adaptive.round_specs`;
* :func:`stream_rng` -- re-exported from
  :mod:`repro.switching.generators`: the one constructor that maps a
  ``(seed, antithetic)`` pair to its replication stream.

This module deliberately imports nothing above the generator layer, so
any module (including :mod:`repro.perf.adaptive` and the workload
registry itself) can use it without import cycles.
"""

from __future__ import annotations

import json
import random
from enum import Enum
from typing import Any, Mapping

from repro.switching.generators import stream_rng

__all__ = [
    "fabric_fragment",
    "key_fragment",
    "schedule_rng",
    "stream_rng",
    "workload_fragment",
]


def _render(value: Any) -> str:
    """One parameter value in key form (enums by name, else ``str``)."""
    if isinstance(value, Enum):
        return value.name
    return str(value)


def key_fragment(params: Mapping[str, Any]) -> str:
    """Canonical ``name=value|...`` fingerprint of ``params``.

    Iterates in the mapping's own order (callers list parameters in
    their stable, documented order), so a given call site always
    produces the same string -- the property schedule keys and cache
    fingerprints depend on.
    """
    return "|".join(f"{name}={_render(value)}" for name, value in params.items())


def workload_fragment(token: Mapping[str, Any] | None) -> str:
    """The stream-key suffix of a workload token.

    ``None`` (uniform traffic) contributes nothing -- legacy keys, warm
    caches and golden adaptive schedules stay valid verbatim.  Any
    other token is serialized canonically, so two workloads differing
    in any shape parameter get disjoint schedules and cache entries.
    """
    if token is None:
        return ""
    body = json.dumps(dict(token), sort_keys=True, separators=(",", ":"))
    return f"|workload={body}"


def fabric_fragment(token: str | None) -> str:
    """The stream-key suffix of a fabric-model token.

    The same anchor rule as :func:`workload_fragment`: the Clos fabric's
    token is ``None`` (:meth:`repro.engine.fabrics.FabricSpec.token`)
    and contributes nothing, so every pre-seam stream key, warm cache
    and golden adaptive schedule stays valid verbatim; any other fabric
    appends its name, so its schedules and cache entries are disjoint.
    """
    if token is None:
        return ""
    return f"|fabric={token}"


def schedule_rng(key: str, round_index: int, stratum: int) -> random.Random:
    """The deterministic RNG of one (stream key, round, stratum) draw.

    A pure function of its arguments: resume and kill-and-restart
    bit-identity of the adaptive driver rest on exactly this string
    format, so it is stated once, here.
    """
    return random.Random(f"{key}|round={round_index}|stratum={stratum}")
