"""Pluggable deterministic workload library (``repro.workloads``).

The registry of traffic models behind the redesigned
:mod:`repro.api` traffic surface.  Every model is a frozen config
dataclass producing the :class:`repro.switching.generators.TrafficEvent`
stream contract the whole simulator stack consumes, so all routing
kernels, state backends, the adaptive sweep engine and the result
caches support every registered workload with no per-consumer code:

========================  ==============================================
``uniform``               uniform-random arrivals -- bit-identical to
                          the historical generator (the anchor the
                          golden-seed tests pin)
``hotspot``               Zipf-skewed destination popularity with a
                          configurable hot-port fraction
``heavytail_fanout``      truncated-Pareto multicast group sizes
``poisson_erlang``        Poisson arrivals + exponential holding times
                          (sweeps in offered Erlangs)
``trace``                 JSONL/CSV trace replay (``wdm-repro
                          trace-gen`` records one)
========================  ==============================================

Workload identity (:meth:`WorkloadConfig.token`) enters every
traffic-cell cache key and adaptive stream/round key, so cached
uniform results are never served for non-uniform traffic; uniform's
token is ``None``, keeping all pre-workload keys and schedules valid.
:mod:`repro.workloads.keys` is the shared seed/stream-key derivation
helper the registry and the perf layers both feed from.
"""

from repro.workloads.base import (
    WorkloadConfig,
    make_workload,
    register_workload,
    workload_class,
    workload_from_dict,
    workload_names,
)
from repro.workloads.erlang import PoissonErlangConfig
from repro.workloads.heavytail import HeavyTailFanoutConfig
from repro.workloads.hotspot import HotspotConfig
from repro.workloads.keys import (
    key_fragment,
    schedule_rng,
    stream_rng,
    workload_fragment,
)
from repro.workloads.trace import (
    TraceConfig,
    generate_trace,
    load_trace,
    write_trace,
)
from repro.workloads.uniform import UniformConfig

__all__ = [
    "HeavyTailFanoutConfig",
    "HotspotConfig",
    "PoissonErlangConfig",
    "TraceConfig",
    "UniformConfig",
    "WorkloadConfig",
    "generate_trace",
    "key_fragment",
    "load_trace",
    "make_workload",
    "register_workload",
    "schedule_rng",
    "stream_rng",
    "workload_class",
    "workload_from_dict",
    "workload_names",
    "write_trace",
]
