"""Trace replay: a recorded event stream drives every kernel identically.

Traces are flat files -- JSONL (one event object per line) or CSV,
chosen by extension -- produced by ``wdm-repro trace-gen`` (or any
external tool speaking the schema):

JSONL::

    {"kind": "setup", "id": 0, "source": [2, 0],
     "destinations": [[5, 0], [7, 0]]}
    {"kind": "teardown", "id": 0}

CSV (header required; destinations are ``port:wavelength`` pairs
joined by ``;``; teardown rows leave source/destinations empty)::

    kind,id,source_port,source_wavelength,destinations
    setup,0,2,0,5:0;7:0
    teardown,0,,,

Loading validates the guaranteed-legality contract the batched replay
depends on -- endpoints free at setup, ids live at teardown -- and
:meth:`TraceConfig.events` additionally checks the trace against the
requested fabric and multicast model, so a trace can never silently
drive a kernel outside its admission semantics.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, ClassVar

from repro.core.models import MulticastModel
from repro.switching.generators import TrafficEvent
from repro.switching.requests import Endpoint, MulticastConnection
from repro.workloads.base import WorkloadConfig, register_workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.perf.adaptive import PrecisionConfig

__all__ = [
    "TraceConfig",
    "generate_trace",
    "load_trace",
    "write_trace",
]


def _parse_jsonl(path: str) -> Iterator[dict[str, Any]]:
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON object ({error})"
                ) from None
            record["_line"] = line_no
            yield record


def _parse_csv(path: str) -> Iterator[dict[str, Any]]:
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for line_no, row in enumerate(reader, start=2):
            record: dict[str, Any] = {
                "kind": (row.get("kind") or "").strip(),
                "id": int(row["id"]),
                "_line": line_no,
            }
            if record["kind"] == "setup":
                record["source"] = [
                    int(row["source_port"]), int(row["source_wavelength"])
                ]
                record["destinations"] = [
                    [int(part) for part in pair.split(":")]
                    for pair in (row.get("destinations") or "").split(";")
                    if pair.strip()
                ]
            yield record


@lru_cache(maxsize=8)
def _load_trace_cached(
    path: str, _mtime_ns: int, _size: int
) -> tuple[TrafficEvent, ...]:
    """Parse + validate one trace file (cached by path/mtime/size)."""
    records = _parse_csv(path) if path.endswith(".csv") else _parse_jsonl(path)
    events: list[TrafficEvent] = []
    live: dict[int, MulticastConnection] = {}
    busy_inputs: set[Endpoint] = set()
    busy_outputs: set[Endpoint] = set()
    for record in records:
        line_no = record.get("_line", "?")
        kind = record.get("kind")
        connection_id = record.get("id")
        if kind not in ("setup", "teardown") or not isinstance(
            connection_id, int
        ):
            raise ValueError(
                f"{path}:{line_no}: expected a setup/teardown record "
                f"with an integer id, got {kind!r}/{connection_id!r}"
            )
        if kind == "teardown":
            if connection_id not in live:
                raise ValueError(
                    f"{path}:{line_no}: teardown of connection "
                    f"{connection_id}, which is not live at this point"
                )
            connection = live.pop(connection_id)
            busy_inputs.discard(connection.source)
            busy_outputs.difference_update(connection.destinations)
            events.append(TrafficEvent("teardown", connection, connection_id))
            continue
        if connection_id in live:
            raise ValueError(
                f"{path}:{line_no}: connection id {connection_id} set up "
                "twice without an intervening teardown"
            )
        try:
            source = Endpoint(*record["source"])
            destinations = [
                Endpoint(*pair) for pair in record["destinations"]
            ]
        except (KeyError, TypeError) as error:
            raise ValueError(
                f"{path}:{line_no}: malformed setup record ({error})"
            ) from None
        if not destinations:
            raise ValueError(
                f"{path}:{line_no}: setup with no destinations"
            )
        if source in busy_inputs:
            raise ValueError(
                f"{path}:{line_no}: source endpoint {source} is already "
                "in use -- the trace is not a feasible event sequence"
            )
        clashes = busy_outputs.intersection(destinations)
        if clashes or len(set(destinations)) != len(destinations):
            raise ValueError(
                f"{path}:{line_no}: destination endpoint(s) "
                f"{sorted(clashes) or destinations} already in use -- "
                "the trace is not a feasible event sequence"
            )
        connection = MulticastConnection(source, destinations)
        live[connection_id] = connection
        busy_inputs.add(source)
        busy_outputs.update(destinations)
        events.append(TrafficEvent("setup", connection, connection_id))
    return tuple(events)


def load_trace(path: str) -> tuple[TrafficEvent, ...]:
    """Parse and feasibility-validate a JSONL/CSV trace file."""
    stat = os.stat(path)
    return _load_trace_cached(os.fspath(path), stat.st_mtime_ns, stat.st_size)


@lru_cache(maxsize=8)
def _digest_cached(path: str, _mtime_ns: int, _size: int) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()[:16]


def _digest(path: str) -> str:
    """Content digest of the trace file (its cache-key identity)."""
    stat = os.stat(path)
    return _digest_cached(os.fspath(path), stat.st_mtime_ns, stat.st_size)


@register_workload
@dataclass(frozen=True)
class TraceConfig(WorkloadConfig):
    """Replay of a recorded JSONL/CSV trace file.

    The same fixed event sequence drives every kernel and backend, so a
    single recorded stream (from ``wdm-repro trace-gen`` or an external
    source) is a cross-kernel regression vector.  The replication
    ``rng`` is deliberately unused -- a trace has no randomness left --
    which is why ``seeds`` defaults to a single replication and
    precision-targeted (adaptive) runs are rejected: every round would
    re-walk the identical recording and the Wilson interval would
    silently collapse around a single sample.

    The cache/stream-key token is the file's *content digest*, not its
    path: editing a trace invalidates cached results, moving it does
    not.

    Attributes:
        path: the trace file (``.csv`` parses as CSV, anything else as
            JSONL).
        steps: optional prefix length; None replays the whole trace,
            and values beyond the recording raise with the event count.
    """

    path: str = ""
    seeds: tuple[int, ...] = (0,)

    workload: ClassVar[str] = "trace"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.path:
            raise ValueError(
                "trace workload needs a path "
                "(e.g. --workload-param path=trace.jsonl)"
            )

    def events(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: random.Random,
        max_fanout: int | None,
    ) -> Iterator[TrafficEvent]:
        del rng  # a recording has no randomness left to draw
        events = load_trace(self.path)
        if steps > len(events):
            raise ValueError(
                f"trace {self.path} has {len(events)} events, "
                f"but {steps} were requested; shorten steps or record a "
                "longer trace"
            )
        cap = n_ports if max_fanout is None else min(max_fanout, n_ports)
        for index, event in enumerate(events[:steps]):
            if event.kind == "setup":
                self._check_event(event, model, n_ports, k, cap, index)
            yield event

    def _check_event(
        self,
        event: TrafficEvent,
        model: MulticastModel,
        n_ports: int,
        k: int,
        cap: int,
        index: int,
    ) -> None:
        connection = event.connection
        endpoints = [connection.source, *connection.destinations]
        for endpoint in endpoints:
            if not (0 <= endpoint.port < n_ports and 0 <= endpoint.wavelength < k):
                raise ValueError(
                    f"trace {self.path} event {index}: endpoint {endpoint} "
                    f"outside the fabric (N={n_ports}, k={k})"
                )
        if len(connection.destinations) > cap:
            raise ValueError(
                f"trace {self.path} event {index}: fanout "
                f"{len(connection.destinations)} exceeds max_fanout={cap}"
            )
        wavelengths = {d.wavelength for d in connection.destinations}
        if model is MulticastModel.MSW:
            if wavelengths != {connection.source.wavelength}:
                raise ValueError(
                    f"trace {self.path} event {index}: MSW requires all "
                    "endpoints on the source wavelength, got "
                    f"{sorted(wavelengths)} vs {connection.source.wavelength}"
                )
        elif model is MulticastModel.MSDW and len(wavelengths) > 1:
            raise ValueError(
                f"trace {self.path} event {index}: MSDW requires one "
                f"destination wavelength, got {sorted(wavelengths)}"
            )

    def token(self) -> dict[str, Any] | None:
        return {"workload": self.workload, "digest": _digest(self.path)}

    def resolved_steps(self, default: int) -> int:
        if self.steps is not None:
            return self.steps
        return len(load_trace(self.path))

    def validate_precision(
        self, precision: "PrecisionConfig", steps: int
    ) -> None:
        count = len(load_trace(self.path))
        raise ValueError(
            "precision-targeted (adaptive) runs need fresh replication "
            f"streams every round, but trace {self.path} is one fixed "
            f"recording of {count} events -- every round would re-walk "
            "the same stream. Use a fixed seeds budget instead, or "
            "switch to a generative workload."
        )


def write_trace(path: str, events: Iterable[TrafficEvent]) -> int:
    """Write events as a trace file (CSV by extension, else JSONL)."""
    count = 0
    if path.endswith(".csv"):
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["kind", "id", "source_port", "source_wavelength",
                 "destinations"]
            )
            for event in events:
                if event.kind == "setup":
                    source = event.connection.source
                    destinations = ";".join(
                        f"{d.port}:{d.wavelength}"
                        for d in event.connection.destinations
                    )
                    writer.writerow(
                        [event.kind, event.connection_id, source.port,
                         source.wavelength, destinations]
                    )
                else:
                    writer.writerow(
                        [event.kind, event.connection_id, "", "", ""]
                    )
                count += 1
    else:
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                if event.kind == "setup":
                    source = event.connection.source
                    record: dict[str, Any] = {
                        "kind": "setup",
                        "id": event.connection_id,
                        "source": [source.port, source.wavelength],
                        "destinations": [
                            [d.port, d.wavelength]
                            for d in event.connection.destinations
                        ],
                    }
                else:
                    record = {"kind": "teardown", "id": event.connection_id}
                handle.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
                count += 1
    return count


def generate_trace(
    workload: WorkloadConfig,
    path: str,
    model: MulticastModel,
    n_ports: int,
    k: int,
    *,
    steps: int,
    seed: int,
    max_fanout: int | None = None,
) -> int:
    """Record one replication of ``workload`` as a trace file.

    The ``wdm-repro trace-gen`` companion: the stream written here,
    replayed through :class:`TraceConfig`, is event-for-event identical
    to running ``workload`` live with the same seed -- which is the
    round-trip property the trace tests assert.  Returns the event
    count.
    """
    from repro.workloads.keys import stream_rng

    events = workload.events(
        model, n_ports, k,
        steps=steps, rng=stream_rng(seed), max_fanout=max_fanout,
    )
    return write_trace(path, events)
