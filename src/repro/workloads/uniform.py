"""Uniform-random multicast traffic (the compatibility anchor)."""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.models import MulticastModel
from repro.switching.generators import TrafficEvent, dynamic_traffic
from repro.workloads.base import WorkloadConfig, register_workload

__all__ = ["UniformConfig"]


@register_workload
@dataclass(frozen=True)
class UniformConfig(WorkloadConfig):
    """Uniform-random arrivals (the historical generator, bit-identical).

    Sources, fanouts, destination ports and wavelengths are all drawn
    uniformly over the feasible choices -- exactly
    :func:`repro.switching.generators.dynamic_traffic` with no hooks,
    so every stream this config produces is bit-identical to the
    pre-workload-library generator for the same ``(seed, antithetic)``
    pair (the golden-seed contract the equivalence tests assert).  It
    is also the only workload whose :meth:`token` is ``None``: uniform
    runs keep their legacy cache keys and adaptive schedules verbatim.
    """

    workload: ClassVar[str] = "uniform"

    def events(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: random.Random,
        max_fanout: int | None,
    ) -> Iterator[TrafficEvent]:
        return dynamic_traffic(
            model, n_ports, k, steps=steps, seed=rng, max_fanout=max_fanout
        )

    def token(self) -> dict[str, Any] | None:
        return None
