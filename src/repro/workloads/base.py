"""Workload config base class and the pluggable model registry.

A *workload* is a deterministic traffic model: a frozen config
dataclass whose :meth:`WorkloadConfig.events` turns one replication's
RNG stream into the :class:`repro.switching.generators.TrafficEvent`
sequence that every consumer -- the serial simulator, the stream
compiler behind the batched kernel, the adaptive round driver --
already speaks.  Because the contract is the event stream (not the
generator), a registered workload inherits all three routing kernels,
every state backend, common random numbers across ``m``, antithetic
pairing and the content-addressed caches without those layers knowing
it exists.

Two invariants keep the existing golden values intact:

* the base fields (``steps``/``seeds``/``max_fanout``/``adversarial``/
  ``adversary_seeds``) are exactly the legacy ``TrafficConfig``
  surface, so the uniform member of the family is a drop-in;
* :meth:`WorkloadConfig.token` is the workload's cache/stream-key
  identity.  Uniform traffic returns ``None`` -- it contributes
  nothing, so keys, warm caches and adaptive schedules predating the
  workload library are still valid -- while every other model returns
  its tag + shape parameters, so cached uniform results are never
  served for non-uniform traffic (and vice versa).

Models register with :func:`register_workload`;
:func:`make_workload` / :func:`workload_from_dict` build configs from
CLI ``key=value`` pairs and JSON provenance payloads respectively.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    import random

    from repro.core.models import MulticastModel
    from repro.perf.adaptive import PrecisionConfig
    from repro.switching.generators import TrafficEvent

__all__ = [
    "WorkloadConfig",
    "make_workload",
    "register_workload",
    "workload_class",
    "workload_from_dict",
    "workload_names",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Base of the workload-config family (the legacy traffic surface).

    Attributes:
        steps: traffic events per replication; None keeps the caller's
            default (2000 for ``blocking``, 1500 per ``sweep`` point --
            the legacy budget) or, for trace replay, the whole trace.
        seeds: independent replications (pooled deterministically).
        max_fanout: cap on destinations per request (None = fabric
            size).
        adversarial: in ``sweep``, also run the randomized adversary at
            every ``m`` where random traffic saw no blocking.  Only
            meaningful for uniform traffic (the adversary constructs
            its own worst-case states; a traffic shape has nothing to
            add), so non-uniform workloads reject it.
        adversary_seeds: adversary restarts per ``m`` point.
    """

    steps: int | None = None
    seeds: tuple[int, ...] = (0, 1, 2)
    max_fanout: int | None = None
    adversarial: bool = False
    adversary_seeds: int = 20

    #: registry tag of the model; class-level, not a field, so it never
    #: collides with the parameter surface
    workload: ClassVar[str] = "abstract"

    def __post_init__(self) -> None:
        if not isinstance(self.seeds, tuple):
            object.__setattr__(self, "seeds", tuple(self.seeds))

    # -- the generator contract ---------------------------------------------

    def events(
        self,
        model: "MulticastModel",
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: "random.Random",
        max_fanout: int | None,
    ) -> "Iterator[TrafficEvent]":
        """One replication's event stream.

        Must be a pure function of its arguments: ``rng`` is the
        replication's whole randomness budget (one
        :func:`repro.workloads.keys.stream_rng` stream threaded
        end-to-end), and every prefix of the yielded sequence must keep
        the active set a legal multicast assignment under ``model`` --
        the guaranteed-legality contract that lets the batched kernel's
        replay skip admission validation.
        """
        raise NotImplementedError

    # -- identity -----------------------------------------------------------

    @classmethod
    def shape_fields(cls) -> tuple[dataclasses.Field, ...]:
        """The model-specific parameter fields (base surface excluded)."""
        base = {field.name for field in dataclasses.fields(WorkloadConfig)}
        return tuple(
            field
            for field in dataclasses.fields(cls)
            if field.name not in base
        )

    def shape_params(self) -> dict[str, Any]:
        """The model-specific parameter values."""
        return {
            field.name: getattr(self, field.name)
            for field in self.shape_fields()
        }

    def token(self) -> dict[str, Any] | None:
        """The workload's cache/stream-key identity.

        Mixed into every traffic-cell cache key, adaptive stream key
        and round key, so results of different workloads can never
        shadow each other.  Uniform traffic overrides this to ``None``
        (contributes nothing -- the backward-compatibility anchor).
        """
        return {"workload": self.workload, **self.shape_params()}

    # -- integration hooks --------------------------------------------------

    def resolved_steps(self, default: int) -> int:
        """The per-replication event budget (``default`` if unset)."""
        return self.steps if self.steps is not None else default

    def validate_precision(
        self, precision: "PrecisionConfig", steps: int
    ) -> None:
        """Reject precision-targeted runs the model cannot support.

        The adaptive driver assumes every round can draw fresh
        replication streams; models that cannot (trace replay) raise
        here with a diagnosis.  The default accepts.
        """

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Tagged dict form; inverse of :func:`workload_from_dict`."""
        return {"workload": self.workload, **dataclasses.asdict(self)}

    @classmethod
    def describe(cls) -> str:
        """One-line description (the docstring's first line)."""
        doc = cls.__doc__ or cls.workload
        return doc.strip().splitlines()[0].rstrip(".")


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type[WorkloadConfig]] = {}


def register_workload(cls: type[WorkloadConfig]) -> type[WorkloadConfig]:
    """Class decorator: add a config class to the workload registry.

    The class's ``workload`` tag becomes a valid ``--workload`` name,
    a ``wdm-repro workloads`` row and a ``workload_from_dict`` tag --
    no consumer changes needed, mirroring
    :func:`repro.engine.backends.register_backend`.
    """
    tag = cls.workload
    if tag in _REGISTRY:
        raise ValueError(f"workload {tag!r} is already registered")
    _REGISTRY[tag] = cls
    return cls


def workload_names() -> list[str]:
    """Registered workload tags, sorted."""
    return sorted(_REGISTRY)


def workload_class(name: str) -> type[WorkloadConfig]:
    """The config class of ``name``; unknown names list the registry."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise ValueError(
            f"unknown workload {name!r}; choose from: {known}"
        ) from None


def _coerce(hint: Any, text: str) -> Any:
    """Parse one CLI ``key=value`` string into a field's type."""
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        if text.lower() in ("none", "null"):
            return None
        hint = next(
            arg for arg in typing.get_args(hint) if arg is not type(None)
        )
        origin = typing.get_origin(hint)
    if hint is bool:
        lowered = text.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"expected a boolean, got {text!r}")
    if hint is int:
        return int(text)
    if hint is float:
        return float(text)
    if origin is tuple:
        return tuple(
            int(part) for part in text.split(",") if part.strip() != ""
        )
    return text


def make_workload(name: str, **params: Any) -> WorkloadConfig:
    """Build a registered workload config from loosely typed parameters.

    String values (the CLI's ``--workload-param key=value`` form) are
    coerced to the target field's annotated type; typed values pass
    through.  Unknown parameter names raise with the model's parameter
    list, mirroring the unknown-workload error.
    """
    cls = workload_class(name)
    hints = typing.get_type_hints(cls)
    valid = {field.name for field in dataclasses.fields(cls)}
    kwargs: dict[str, Any] = {}
    for key, value in params.items():
        if key not in valid:
            known = ", ".join(sorted(valid))
            raise ValueError(
                f"workload {name!r} has no parameter {key!r}; "
                f"parameters: {known}"
            )
        if isinstance(value, str) and hints.get(key) is not str:
            value = _coerce(hints[key], value)
        kwargs[key] = value
    return cls(**kwargs)


def workload_from_dict(data: dict[str, Any]) -> WorkloadConfig:
    """Rebuild a config from its :meth:`WorkloadConfig.as_dict` form."""
    payload = dict(data)
    try:
        tag = payload.pop("workload")
    except KeyError:
        raise ValueError(
            "workload dict is missing the 'workload' tag"
        ) from None
    return make_workload(tag, **payload)
