"""Zipf-skewed hotspot destination traffic."""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass
from typing import ClassVar

from repro.core.models import MulticastModel
from repro.switching.generators import TrafficEvent, dynamic_traffic
from repro.workloads.base import WorkloadConfig, register_workload

__all__ = ["HotspotConfig"]


@register_workload
@dataclass(frozen=True)
class HotspotConfig(WorkloadConfig):
    """Zipf-skewed destination popularity with a configurable hot set.

    The first ``ceil(hot_fraction * N)`` output ports are *hotspots*:
    hot port ``i`` carries Zipf weight ``(i + 1) ** -zipf_s`` while
    every cold port shares the flat tail weight ``(H + 1) ** -zipf_s``
    (``H`` = hot-set size), the shape of the WDM-packet-ring hotspot
    study.  Destination ports are drawn by weighted sampling without
    replacement among the *currently feasible* ports, so the stream
    keeps the guaranteed-legality contract -- only the popularity
    changes, never the feasibility bookkeeping, which stays in
    :func:`repro.switching.generators.draw_connection`.

    Attributes:
        zipf_s: Zipf exponent of the hot set (larger = more skew).
        hot_fraction: fraction of output ports forming the hot set,
            in (0, 1].
    """

    zipf_s: float = 1.2
    hot_fraction: float = 0.25

    workload: ClassVar[str] = "hotspot"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.zipf_s <= 0.0:
            raise ValueError(f"zipf_s must be > 0, got {self.zipf_s}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )

    def _weight_table(self, n_ports: int) -> list[float]:
        hot = max(1, round(self.hot_fraction * n_ports))
        tail = (hot + 1.0) ** -self.zipf_s
        return [
            (port + 1.0) ** -self.zipf_s if port < hot else tail
            for port in range(n_ports)
        ]

    def events(
        self,
        model: MulticastModel,
        n_ports: int,
        k: int,
        *,
        steps: int,
        rng: random.Random,
        max_fanout: int | None,
    ) -> Iterator[TrafficEvent]:
        weight_of = self._weight_table(n_ports)

        def pick_ports(
            pick_rng: random.Random,
            port_options: dict[int, list[int]],
            fanout: int,
        ) -> list[int]:
            # Weighted sampling without replacement by cumulative scan:
            # O(fanout * ports), deterministic, and exact for the tiny
            # port counts of a fabric (no float-sum reordering).
            ports = sorted(port_options)
            weights = [weight_of[port] for port in ports]
            chosen: list[int] = []
            for _ in range(fanout):
                total = sum(weights)
                threshold = pick_rng.random() * total
                acc = 0.0
                index = len(ports) - 1
                for i, weight in enumerate(weights):
                    acc += weight
                    if threshold < acc:
                        index = i
                        break
                chosen.append(ports.pop(index))
                weights.pop(index)
            return chosen

        return dynamic_traffic(
            model, n_ports, k,
            steps=steps, seed=rng, max_fanout=max_fanout,
            pick_ports=pick_ports,
        )
