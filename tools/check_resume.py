#!/usr/bin/env python
"""CI smoke test for the adaptive sweep's resume contract.

Orchestrates three ``wdm-repro sweep`` subprocesses:

1. **reference** -- the sweep run to completion without a cache;
2. **interrupted** -- the same sweep with ``--resume`` into a fresh
   cache directory, SIGKILLed partway through (the kill lands wherever
   it lands -- the contract must hold for *any* interruption point);
3. **resumed** -- the same ``--resume`` command again, run to
   completion against the surviving cache.

The resumed run's table must be byte-identical to the reference run's
(the cache-traffic footer is stripped: hit/store counts legitimately
differ between a cold and a resumed run -- they are *how* the contract
is met, not part of the result).  Exit 0 on success, 1 on divergence.

The kill is timed at half the reference run's wall time.  If it lands
before the first round completes (nothing cached) or after the sweep
finished (everything cached), the comparison still must pass -- the
report just notes how many warm rounds the resume actually replayed.

Usage::

    python tools/check_resume.py [--kill-fraction F]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: one adaptive sweep, sized so the reference run takes a second or two:
#: long enough that a half-way SIGKILL reliably lands mid-run, short
#: enough for a CI smoke job
SWEEP_ARGS = [
    "sweep",
    "--n", "3", "--r", "3", "--k", "1",
    "--m-max", "6",
    "--steps", "200",
    "--ci-halfwidth", "0.008",
    "--kernel", "batched",
]


def _command(extra: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", *SWEEP_ARGS, *extra]


def _comparable(output: str) -> str:
    """The result table without the cache-traffic footer."""
    lines = [
        line
        for line in output.splitlines()
        if not line.startswith("cache:")
    ]
    return "\n".join(lines).rstrip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kill-fraction",
        type=float,
        default=0.5,
        help="kill the interrupted run after this fraction of the "
        "reference run's wall time (default 0.5)",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    reference = subprocess.run(
        _command([]), capture_output=True, text=True
    )
    reference_s = time.perf_counter() - start
    if reference.returncode != 0:
        print(reference.stdout)
        print(reference.stderr, file=sys.stderr)
        print("FAIL: reference sweep exited nonzero")
        return 1
    print(f"reference sweep: {reference_s:.2f}s")

    with tempfile.TemporaryDirectory(prefix="wdm-resume-smoke-") as tmp:
        resume_args = ["--resume", "--cache-dir", tmp]

        interrupted = subprocess.Popen(
            _command(resume_args),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(max(0.05, args.kill_fraction * reference_s))
        interrupted.kill()  # SIGKILL: no cleanup handlers run
        interrupted.wait()
        cached_rounds = len(list(Path(tmp).glob("*.pkl")))
        print(
            f"interrupted sweep killed; {cached_rounds} round entries "
            "survived in the cache"
        )

        resumed = subprocess.run(
            _command(resume_args), capture_output=True, text=True
        )
        if resumed.returncode != 0:
            print(resumed.stdout)
            print(resumed.stderr, file=sys.stderr)
            print("FAIL: resumed sweep exited nonzero")
            return 1
        hits = re.search(r"cache: (\d+) hits", resumed.stdout)
        print(f"resumed sweep: {hits.group(0) if hits else 'no cache footer'}")

    if _comparable(resumed.stdout) != _comparable(reference.stdout):
        print("FAIL: resumed sweep diverged from the uninterrupted run")
        print("--- reference ---")
        print(_comparable(reference.stdout))
        print("--- resumed ---")
        print(_comparable(resumed.stdout))
        return 1
    print("ok: resumed sweep is bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
