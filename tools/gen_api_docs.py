#!/usr/bin/env python3
"""Regenerate docs/API.md from the package's public surface.

Walks every subpackage's ``__all__``, pulls the first docstring line of
each exported item, and writes a compact API reference.  Run after
changing public APIs::

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib

PACKAGES = [
    "repro",
    "repro.combinatorics",
    "repro.core",
    "repro.engine",
    "repro.switching",
    "repro.fabric",
    "repro.multistage",
    "repro.analysis",
    "repro.scheduling",
    "repro.perf",
    "repro.perf.adaptive",
    "repro.workloads",
    "repro.api",
    "repro.obs",
]

#: hand-written notes appended after a package's export table (markdown)
NOTES = {
    "repro.engine": """\
### One admission kernel, many consumers

`repro.engine` is the bottom layer of the simulator stack (see
`docs/ARCHITECTURE.md`): the serial `ThreeStageNetwork`, the lockstep
batch engine, the exhaustive model checker and the adversary all route
their wavelength-availability, converter-budget and Lemma-4 cover
decisions through these kernels, so MSW/MSDW/MAW semantics and the
blocking-cause taxonomy are stated exactly once. The mask-level
functions (`free_middles`, `reach_map`, `probe_cover`, `classify_kind`,
`block_cause`) are what the hot paths call with their own caches; the
state-level functions (`avail`, `coverable`, `admit`, `release`,
`classify_block`) pair an `AdmissionRequest` with a `FabricState`.

### The backend seam

`FabricState` has three interchangeable bitplane backends -- pure-Python
ints, numpy int64 structure-of-arrays, and the fused `numba` backend
(`repro.engine.fused`), which lowers the whole compiled stream to flat
int64 arrays and replays it in one `@njit` kernel. Masks pack into
`W = ceil(bits / NUMPY_WORD_BITS)` signed int64 words per the fabric's
`PlaneLayout` (`repro.engine.planes`), so every built-in backend
accepts fabrics of any width; the `W == 1` layout is byte-identical to
the historical single-word one. `resolve_backend` picks one (`auto`
prefers `numba` when importable, else `python`;
`WDM_REPRO_BATCH_BACKEND` overrides) and `make_state` instantiates it.
`register_backend(name, factory, missing=..., max_plane_width=...)`
plugs in further backends -- registered names become valid `backend=`
arguments everywhere without touching any consumer, and
`backend_status` / `wdm-repro kernels` report live availability plus
each backend's plane-width capability.
`WDM_REPRO_FUSED_PY=1` forces the fused kernel's interpreted mode (the
identity-test vehicle on machines without numba). The package ships
`py.typed` and is kept fully typed (`mypy src/repro/engine` in CI).
""",
    "repro.multistage": """\
### Debug checks

`ThreeStageNetwork(..., debug_checks=True)` -- or setting the
`WDM_REPRO_DEBUG_CHECKS` environment variable to `1`/`true`/`yes`/`on`
-- re-runs `check_invariants()` after every `connect`/`disconnect`, so
any incremental-cache leak surfaces at the exact event that caused it.
Off by default: the scan is O(state) per event, far too slow for the
Monte-Carlo hot paths. Explicit `check_invariants()` calls always run
regardless of the flag; the fuzz tests enable it, the hot paths leave
it off.

### Canonicalized exhaustive search

`is_blockable` / `exact_minimal_m` default to `canonicalize=True`: the
DFS transposition table keys on
`ThreeStageNetwork.canonical_signature()` (invariant under
middle-switch permutation, plus global wavelength relabeling for the
MSW model) and a monotone victim probe replaces the exhaustive
per-request scan. Verdicts are identical to `canonicalize=False` (the
reference search, kept for the property tests); `states_explored`
counts symmetry classes and witnesses may differ but still `replay()`.
`exact_minimal_m` also accepts `jobs` (parallel m-candidates) and
`cache` (a `repro.perf.ResultCache`).
""",
    "repro.perf": """\
### Executor selection

`ParallelSweeper(jobs, executor=...)` accepts `jobs=1` (inline, the
default), an explicit worker count, or `"auto"`/`None`/`<= 0` for the
effective CPU count; `executor` is `"process"` (default) or
`"thread"`. Whatever was requested, the engine falls back to inline
serial execution whenever a pool cannot win -- a single effective CPU,
a single pending unit, or an explicit `jobs` exceeding the unit count
-- and records what actually ran (executor, resolved worker count,
dispatched units, cache hits, fallback reason) in the `ExecutionPlan`
available as `sweeper.last_plan` / `last_plan()`. Pools persist across
one sweeper's `run` calls; `close()` or the context-manager form shuts
them down.

### Result caching

`ResultCache(directory)` content-addresses each sweep cell by a
SHA-256 digest of (namespace, `CODE_VERSION`, routing-kernel id,
canonical-JSON parameters). `blocking_probability`, `blocking_vs_m`
and `exact_minimal_m` accept `cache=`; work units carrying a
`cache_key` are looked up before execution and stored after, so
interrupted or repeated sweeps recompute only missing cells. Writes
are atomic (temp file + `os.replace`); entries that fail to unpickle
are deleted and recomputed. The CLI flags are `--cache` / `--no-cache`
and `--cache-dir DIR` on `blocking` and `exact`.

`ResultCache(directory, max_bytes=N)` bounds on-disk growth: every
`put` prunes least-recently-used entries (hits refresh recency) until
the cache fits the budget, never evicting the entry just written. A
pruned entry is a plain miss on the next lookup -- the cell is
recomputed and re-stored -- so a bounded cache trades disk for
recompute without ever changing results.

### Lockstep batch Monte Carlo

`repro.perf.batch` is the engine behind the `"batched"` routing
kernel. A blocking-vs-m sweep replays the *same* traffic per `(m,
seed)` cell, so `compile_stream` compiles each seed's stream once
(traffic is m-independent -- common random numbers) and the engine
replays it through B structure-of-arrays fabric states in lockstep.
`simulate_batch` is the picklable sweeper work unit; `replay_cell`
exposes one replication with `explain_block`-identical causes. The
replay itself is one backend-parameterized event loop over the shared
admission kernels of `repro.engine`; the fabric-state backends (the
pure-Python int-bitplane backend, an optional numpy int64 backend, and
the fused `numba` backend -- the `auto` choice when numba is
importable -- the numpy-based pair carrying `[..., W]` word planes on
fabrics wider than `NUMPY_WORD_BITS` bits) live in `repro.engine.state` /
`repro.engine.fused` behind the `repro.engine.backends` registry and
are bit-identical to the serial simulator per replication, blocking
causes included. For the fused backend, `lower_stream` flattens the
compiled stream to int64 arrays and `FusedState.replay_ops` runs the
entire event loop in one `@njit` kernel. Override with the
`WDM_REPRO_BATCH_BACKEND` environment variable; `wdm-repro kernels`
prints the availability matrix.
""",
    "repro.perf.adaptive": """\
### Sequential stopping instead of fixed budgets

`adaptive_sweep` / `adaptive_blocking` replace fixed replication
counts with a precision target: each `(m, traffic)` cell runs rounds
of replications until the Wilson score interval on its
`BlockingEstimate` is narrower than `PrecisionConfig.half_width`
(absolute, or relative to the point estimate with
`relative=True`; `zero_half_width` keeps the relative mode's stopping
rule meaningful at p = 0, where a relative target can never be met).
Cheap cells (deep in the nonblocking regime) stop after `min_rounds`;
hard cells keep going to `max_rounds` and report
`converged=False` rather than run forever.  The estimate's
`.adaptive` field records rounds, schedule shape and convergence.

### Variance reduction, deterministically

Each round draws `pairs_per_round` antithetic seed pairs
(`AntitheticRandom` replays the mirrored uniform stream) from
stratified slices of the seed space, keyed by a `stream_key` that
covers the full traffic configuration *except* `m` -- common random
numbers across the whole curve, so neighboring cells share traffic
schedules and their difference is low-variance.  The schedule is a
pure function of (key, round); nothing depends on wall clock,
iteration order or worker count.

### Resumable by construction

With a `ResultCache`, every completed round is stored under a key
covering the cell and the schedule shape -- but *not* the precision
target -- so an interrupted sweep replays warm rounds bit-identically
(`wdm-repro sweep --resume`), and tightening the target reuses every
round already paid for.  `tools/check_resume.py` (CI) SIGKILLs a
sweep mid-run and asserts the resumed table equals an uninterrupted
run's byte for byte.
""",
    "repro.workloads": """\
### The traffic seam

A workload is a frozen config dataclass plus a pure generator: given a
fabric (`model`, `n_ports`, `k`), a `random.Random` stream and an
optional fanout cap, `events()` yields the same guaranteed-legal
`TrafficEvent` stream contract `compile_stream` consumes -- so every
registered model runs unchanged through the serial simulator, the
lockstep batch engine and the fused numba backend, bit-identically per
replication. `register_workload` adds a model to the registry; the tag
becomes a `--workload` name, a `wdm-repro workloads` row and a
`workload_from_dict` tag with no consumer changes.

### Identity and caching

`token()` is a workload's cache/stream-key identity. `uniform` returns
None -- it joins no key, so every pre-workload cache entry and adaptive
schedule keeps its address (the compatibility anchor). Every other
model returns `{"workload": tag, **shape_params}`, which joins every
traffic-cell cache key, adaptive stream key and round key -- a warm
uniform cache can never answer for skewed traffic. `TraceConfig`'s
token is content-addressed (a digest of the file), so the same
recording at two paths shares cache entries and an edited recording
never aliases the old one.

### Shipped models

`uniform` (the historical generator, bit-identical), `hotspot`
(Zipf-skewed destination popularity over a configurable hot set),
`heavytail_fanout` (truncated-Pareto multicast group sizes),
`poisson_erlang` (continuous-time Poisson arrivals with exponential
holding, offered load in Erlangs) and `trace` (JSONL/CSV replay of a
recorded stream; `wdm-repro trace-gen` writes one, `generate_trace` /
`write_trace` / `load_trace` are the library surface). Traces are one
fixed recording, so combining them with a precision target raises.
""",
    "repro.api": """\
### Typed configs over kwargs sprawl

The three verbs take frozen config dataclasses grouped by concern:
a `repro.workloads.WorkloadConfig` as `traffic=` (steps, seeds, fanout
cap, adversarial probing on the base surface, model shape on each
subclass), `ExecConfig` (jobs, executor kind, cache directory) and
`SearchConfig` (routing kernel, canonicalization, debug checks).
Results are bit-identical to the legacy entry points with the same
parameters and carry a `repro.obs.meta.ResultMeta` provenance envelope
(code version, kernel id, execution plan, obs summary, workload
identity) on `.meta`; the envelope and `BlockingEstimate` both
round-trip through `to_json()`/`from_json()`.

`blocking` and `sweep` accept any registered workload config --
`UniformConfig` (the default), `HotspotConfig`,
`HeavyTailFanoutConfig`, `PoissonErlangConfig`, `TraceConfig` -- and
the estimators, kernels, caches and the adaptive driver treat them
uniformly. `TrafficConfig` is a deprecated alias of `UniformConfig`
(same fields, same numbers, plus a `DeprecationWarning`).

`SearchConfig(kernel="batched")` routes the Monte-Carlo estimators
through the lockstep batch engine (`repro.perf.batch`) -- same numbers,
one compiled-stream replay per seed instead of one per `(m, seed)`
cell; `ExecConfig(batch=B)` caps replications per work unit without
affecting results.

`ExecConfig(precision=PrecisionConfig(...))` switches `blocking` and
`sweep` from the fixed seed list to the adaptive sequential-stopping
driver (`repro.perf.adaptive`): replication rounds continue until the
Wilson interval meets the requested half-width.  Adversarial traffic
has no precision-targeted mode and is rejected with a `ValueError`.

The legacy kwargs signatures (`blocking_probability`, `blocking_vs_m`,
`exact_minimal_m`) keep working but emit `DeprecationWarning`. One
behavioral fix ships only in the facade: `sweep` derives adversary
seeds from the whole traffic configuration instead of from `m` alone,
so two sweeps sharing an `m` value no longer replay identical
adversary streams; the deprecated `blocking_vs_m` keeps the old
`m`-only schedule so golden values stay reproducible.
""",
    "repro.obs": """\
### Zero cost when off

Every hot-path hook guards on `obs.enabled()` -- one module-level
boolean read -- and the disabled hooks return before allocating
anything (`tests/obs/test_overhead.py` asserts zero allocations;
`benchmarks/bench_perf.py` bounds the obs-off overhead at <= 2% of the
routing replay). Enable for a block with `obs.capture()`, which yields
the metrics registry and optional `Tracer`.

### Tracing blocking causes

With a tracer active, every `connect`/`disconnect` emits one JSONL
record; blocked requests carry a cause reconstructed from the
network's bitmask caches by `ThreeStageNetwork.explain_block`:
`saturated_wavelength`, `converter_exhaustion`, `full_middles` or
`no_cover`, plus the evidence masks. The `summary` record's per-cause
counts always sum to the blocked total -- the blocking-probability
numerator. CLI: `wdm-repro trace fig10 --trace-out -` and
`wdm-repro trace blocking ...`.

### Cross-process metrics

`ParallelSweeper` worker processes run chunks under a reset,
metrics-only registry and ship snapshots back for the parent to merge,
so counters from `jobs=N` process pools equal the serial run's.
""",
}


def first_line(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.strip().splitlines()[0] if doc.strip() else ""
    return line


def describe_package(name: str) -> list[str]:
    module = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    summary = first_line(module)
    if summary:
        lines += [summary, ""]
    lines.append("| export | kind | summary |")
    lines.append("|---|---|---|")
    for export in sorted(getattr(module, "__all__", [])):
        member = getattr(module, export)
        if inspect.isclass(member):
            kind = "class"
        elif inspect.isfunction(member):
            kind = "function"
        elif callable(member):
            kind = "callable"
        else:
            kind = type(member).__name__
        lines.append(f"| `{export}` | {kind} | {first_line(member)} |")
    lines.append("")
    if name in NOTES:
        lines += [NOTES[name].rstrip(), ""]
    return lines


def main() -> None:
    out = [
        "# API reference",
        "",
        "_Generated by `tools/gen_api_docs.py`; do not edit by hand._",
        "",
    ]
    for package in PACKAGES:
        out.extend(describe_package(package))
    target = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.write_text("\n".join(out) + "\n", encoding="utf-8")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
