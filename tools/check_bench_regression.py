#!/usr/bin/env python
"""Guard benchmark speedups against regressions.

Compares a freshly generated ``BENCH_perf.json`` against a committed
baseline and fails (exit 1) when any guarded section's *speedup ratio*
fell by more than the threshold (default 15%).

The guarded metric is each section's ``speedup`` -- the ratio of the
reference path's time to the fast path's time *measured in the same
process on the same host*.  Unlike raw seconds, that ratio is largely
machine-independent, so a baseline recorded on one box is meaningful on
a CI runner: if the bitmask kernel used to beat the reference 8x and
now only manages 4x, something in the fast path got slower regardless
of the hardware.

Writes a ``BENCH_diff.json`` report with per-section baseline/fresh
speedups and relative deltas (all sections, guarded or not), suitable
for uploading as a CI artifact.

Usage::

    python tools/check_bench_regression.py \
        --fresh BENCH_perf.json \
        --baseline benchmarks/BENCH_baseline_quick.json \
        --output BENCH_diff.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Sections whose speedup regressions fail the build.  The remaining
#: sections (cache, parallel, obs, exact_search, batched over-guard)
#: are reported in the diff but only the kernel-critical paths gate:
#: a slow cache disk or an adaptive-executor fallback is environmental,
#: a cover-kernel slowdown is a code regression.  A guarded section may
#: opt out of one run by reporting ``"guard_exempt": true`` -- the
#: ``fused`` section does this when numba is missing and its timing
#: covers the interpreted stand-in kernel rather than the compiled one
#: (identity is still asserted by ``bench_perf.py`` itself either way).
#: Sections may also declare an absolute ``min_speedup`` floor enforced
#: regardless of the baseline: ``engine`` floors at 1.0 (the
#: probe_cover shortcut must never lose to the composition it
#: short-circuits), ``wide`` at 3.0 (the multi-word numpy backend over
#: the serial path wide fabrics were once gated onto) and ``adaptive``
#: at 2.0 (the matched-precision event ratio).
GUARDED_SECTIONS = (
    "cover_kernel",
    "engine",
    "routing_replay",
    "end_to_end",
    "fused",
    "wide",
    "workloads",
    "topology",
    "adaptive",
)

DEFAULT_THRESHOLD = 0.15


def load_report(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: benchmark report not found: {path}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def diff_reports(
    baseline: dict, fresh: dict, guarded: tuple[str, ...], threshold: float
) -> dict:
    """Per-section speedup comparison plus the overall verdict."""
    sections = {}
    regressions = []
    floor_failures = []
    for name, result in fresh.items():
        if name == "meta" or not isinstance(result, dict):
            continue
        if "speedup" not in result:
            continue
        exempt = bool(result.get("guard_exempt"))
        entry = {
            "fresh_speedup": result["speedup"],
            "identical": result.get("identical"),
            "guarded": name in guarded and not exempt,
            "guard_exempt": exempt,
        }
        # A section may declare an absolute floor its speedup must meet
        # regardless of the baseline (the ``adaptive`` section floors
        # its matched-precision event ratio at 2x).
        floor = result.get("min_speedup")
        if floor is not None:
            entry["min_speedup"] = floor
            if name in guarded and not exempt and result["speedup"] < floor:
                entry["below_floor"] = True
                floor_failures.append(name)
        base = baseline.get(name)
        if isinstance(base, dict) and "speedup" in base:
            entry["baseline_speedup"] = base["speedup"]
            entry["relative_change"] = (
                result["speedup"] / base["speedup"] - 1.0
            )
            # An exempt baseline measured a different code path (e.g.
            # the interpreted fused kernel), so its ratio cannot gate a
            # compiled fresh run either.
            comparable = not exempt and not bool(base.get("guard_exempt"))
            entry["regressed"] = (
                name in guarded
                and comparable
                and entry["relative_change"] < -threshold
            )
        else:
            # A section the baseline predates cannot regress; record it
            # so the baseline refresh is visible in the artifact.
            entry["baseline_speedup"] = None
            entry["relative_change"] = None
            entry["regressed"] = False
        if entry["regressed"]:
            regressions.append(name)
        sections[name] = entry
    missing = [
        name
        for name in guarded
        if name not in sections
    ]
    return {
        "threshold": threshold,
        "guarded_sections": list(guarded),
        "missing_guarded_sections": missing,
        "sections": sections,
        "regressions": regressions,
        "floor_failures": floor_failures,
        "ok": not regressions and not missing and not floor_failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        type=Path,
        default=Path("BENCH_perf.json"),
        help="freshly generated benchmark report",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/BENCH_baseline_quick.json"),
        help="committed baseline report",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_diff.json"),
        help="where to write the diff report",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated relative speedup drop (default 0.15)",
    )
    parser.add_argument(
        "--sections",
        type=lambda v: tuple(v.split(",")),
        default=GUARDED_SECTIONS,
        help="comma-separated guarded sections",
    )
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)
    base_quick = baseline.get("meta", {}).get("quick")
    fresh_quick = fresh.get("meta", {}).get("quick")
    if base_quick != fresh_quick:
        # Quick and full mode size their workloads differently, which
        # shifts the speedup ratios; comparing across modes reports
        # workload mismatch as a fake regression.
        sys.exit(
            "error: benchmark mode mismatch -- baseline quick="
            f"{base_quick}, fresh quick={fresh_quick}; regenerate the "
            "fresh report in the baseline's mode"
        )
    diff = diff_reports(baseline, fresh, args.sections, args.threshold)
    args.output.write_text(json.dumps(diff, indent=2) + "\n")

    for name, entry in diff["sections"].items():
        base = entry["baseline_speedup"]
        change = entry["relative_change"]
        if entry["guarded"]:
            mark = "GUARD"
        elif entry.get("guard_exempt"):
            mark = "EXMPT"
        else:
            mark = "     "
        if base is None:
            print(
                f"{mark} {name:15s} {entry['fresh_speedup']:6.2f}x "
                "(no baseline)"
            )
        else:
            flag = "REGRESSED" if entry["regressed"] else "ok"
            print(
                f"{mark} {name:15s} {base:6.2f}x -> "
                f"{entry['fresh_speedup']:6.2f}x "
                f"({change:+.1%})  [{flag}]"
            )
    print(f"wrote {args.output}")
    if diff["missing_guarded_sections"]:
        print(
            "FAIL: guarded sections missing from the fresh report: "
            + ", ".join(diff["missing_guarded_sections"])
        )
        return 1
    if diff["regressions"]:
        print(
            f"FAIL: speedup dropped more than {args.threshold:.0%} in: "
            + ", ".join(diff["regressions"])
        )
        return 1
    if diff["floor_failures"]:
        print(
            "FAIL: speedup below the section's declared min_speedup floor "
            "in: " + ", ".join(diff["floor_failures"])
        )
        return 1
    print("all guarded benchmark speedups within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
