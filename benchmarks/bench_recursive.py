"""Experiment X5: recursive (5+ stage) constructions.

The paper's extension remark: networks "can have any odd number of
stages and be built in a recursive fashion".  The recursion should
never lose to the flat three-stage design and should strictly win for
large N (when decomposing the middle modules pays for itself).
"""

from __future__ import annotations

from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design
from repro.multistage.recursive import best_recursive_design


def test_recursive_vs_flat_vs_crossbar(benchmark):
    def sweep():
        rows = []
        for exponent in (8, 10, 12, 14, 16):
            n_ports = 2**exponent
            crossbar = 2 * n_ports**2
            flat = optimal_design(n_ports, 2).cost.crosspoints
            recursive = best_recursive_design(n_ports, 2)
            rows.append((n_ports, crossbar, flat, recursive))
        return rows

    rows = benchmark(sweep)
    print()
    print("crosspoints: crossbar vs flat 3-stage vs best recursive (k=2, MSW):")
    for n_ports, crossbar, flat, recursive in rows:
        print(
            f"  N={n_ports:6d}: crossbar={crossbar:>13}  flat={flat:>12}  "
            f"recursive={recursive.crosspoints:>12} ({recursive.stages} stages)"
        )
        assert recursive.crosspoints <= flat <= crossbar or flat >= crossbar
        assert recursive.crosspoints <= min(flat, crossbar)
    # Depth must eventually exceed 3 stages.
    assert any(row[3].stages >= 5 for row in rows)


def test_recursive_design_with_maw_output(benchmark):
    design = benchmark(best_recursive_design, 4096, 4, MulticastModel.MAW)
    assert design.converters >= 4096 * 4 or design.structure[0] == "crossbar"
    print()
    print(f"best recursive MAW design for N=4096, k=4 "
          f"({design.stages} stages, {design.crosspoints} gates):")
    print(design.describe(indent=1))
