"""Ablation: routing-strategy design choices called out in DESIGN.md.

1. The routing parameter x: larger x means fewer middle switches but
   more splitting work per connection -- we measure m_min(x) and the
   realized routing behaviour at each x.
2. Greedy-vs-exact cover search: how often does the greedy pass
   suffice?  (The exact fallback is what makes the simulator a faithful
   Lemma 4 oracle, but it should be cold in practice.)
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import NonblockingBound, min_middle_switches_msw_dominant
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import CoverSearch
from repro.switching.generators import dynamic_traffic


def test_x_ablation(benchmark):
    """Sweep x on v(4, 8, m_min(x), 2): all x values route everything,
    with different m budgets."""
    n, r, k = 4, 8, 2
    events = list(dynamic_traffic(MulticastModel.MSW, n * r, k, steps=250, seed=3))

    def sweep():
        results = []
        for x in (1, 2, 3):
            m = min_middle_switches_msw_dominant(n, r, k, x=x)
            net = ThreeStageNetwork(n, r, m, k, x=x)
            live = {}
            middles_used = 0
            for event in events:
                if event.kind == "setup":
                    live[event.connection_id] = net.connect(event.connection)
                    routed = net.active_connections[live[event.connection_id]]
                    middles_used += len(routed.branches)
                else:
                    net.disconnect(live.pop(event.connection_id))
            results.append((x, m, net.setups, middles_used / max(net.setups, 1)))
        return results

    results = benchmark(sweep)
    print()
    print("x ablation on v(4, 8, m_min(x), 2):")
    for x, m, setups, avg_branches in results:
        print(
            f"  x={x}: m_min={m:3d}  setups={setups}  "
            f"avg middles/connection={avg_branches:.2f}"
        )
    ms = [m for _, m, _, _ in results]
    assert ms[1] < ms[0]  # x=2 needs far fewer middles than x=1


def test_greedy_hit_rate(benchmark):
    """Count greedy vs exact cover searches under random traffic."""
    n, r, k = 3, 3, 2
    bound = NonblockingBound.compute(n, r, k, Construction.MSW_DOMINANT)
    events = list(
        dynamic_traffic(MulticastModel.MSW, n * r, k, steps=400, seed=9)
    )

    def drive():
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, x=bound.best_x
        )
        live = {}
        greedy_hits = 0
        searches = 0
        for event in events:
            if event.kind == "setup":
                stats = CoverSearch()
                live[event.connection_id] = net.connect(event.connection, stats=stats)
                searches += 1
                greedy_hits += stats.greedy_hit
            else:
                net.disconnect(live.pop(event.connection_id))
        return greedy_hits, searches

    greedy_hits, searches = benchmark(drive)
    assert searches > 100
    hit_rate = greedy_hits / searches
    print()
    print(f"greedy cover hit rate at m = m_min: {hit_rate:.3f} "
          f"({greedy_hits}/{searches})")
    assert hit_rate > 0.9  # the exact fallback is a rarely-needed safety net


@pytest.mark.parametrize("construction", list(Construction), ids=lambda c: c.value)
def test_construction_ablation(benchmark, construction):
    """Same traffic, both constructions, identical m: MAW-dominant has
    more wavelength freedom so it never blocks where MSW-dominant doesn't."""
    n, r, k = 2, 3, 2
    m = NonblockingBound.compute(n, r, k, construction).m_min
    events = list(
        dynamic_traffic(MulticastModel.MAW, n * r, k, steps=300, seed=1)
    )

    def drive():
        net = ThreeStageNetwork(
            n, r, m, k, construction=construction, model=MulticastModel.MAW
        )
        live = {}
        for event in events:
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        return net

    net = benchmark(drive)
    assert net.blocks == 0
