"""Experiment T2: regenerate Table 2 (crossbar vs multistage cost).

Paper claim (Section 3.4, Table 2): the optimized three-stage network
cuts crosspoints from Theta(N^2) to O(N^{3/2} log N / log log N); MAW/MS
keeps exactly kN converters while MSDW/MS needs a log factor more;
MSW-dominant beats MAW-dominant.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table2, table2
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import multistage_cost, optimal_design

SIZES = [(256, 4), (1024, 4), (4096, 2)]


@pytest.mark.parametrize("n_ports,k", SIZES)
def test_table2_regeneration(benchmark, n_ports, k):
    rows = benchmark(table2, n_ports, k)
    by_label = {row.label: row for row in rows}

    # Multistage beats crossbar at these sizes, for every model.
    for model in ("MSW", "MSDW", "MAW"):
        assert by_label[f"{model}/MS"].crosspoints < by_label[f"{model}/CB"].crosspoints

    # Converter columns: MSW zero, MAW exactly kN, MSDW at least MAW.
    assert by_label["MSW/MS"].converters == 0
    assert by_label["MAW/MS"].converters == k * n_ports
    assert by_label["MSDW/MS"].converters >= by_label["MAW/MS"].converters

    print()
    print(render_table2(n_ports, k))


def test_msw_dominant_beats_maw_dominant(benchmark):
    """Section 3.4's conclusion, on exact optimized designs."""

    def compare():
        results = {}
        for construction in Construction:
            design = optimal_design(256, 4, MulticastModel.MAW, construction)
            results[construction] = design.cost
        return results

    costs = benchmark(compare)
    assert (
        costs[Construction.MSW_DOMINANT].crosspoints
        <= costs[Construction.MAW_DOMINANT].crosspoints
    )


def test_stage_sum_identities(benchmark):
    """The closed forms k m r (2n + r) and k m r ((k+1) n + r)."""

    def check():
        for n, r, m, k in [(16, 16, 83, 4), (8, 32, 44, 4)]:
            msw = multistage_cost(n, r, m, k)
            assert msw.crosspoints == k * m * r * (2 * n + r)
            maw = multistage_cost(n, r, m, k, output_model=MulticastModel.MAW)
            assert maw.crosspoints == k * m * r * ((k + 1) * n + r)
        return True

    assert benchmark(check)
