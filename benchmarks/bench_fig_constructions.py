"""Experiments F1-F9: the paper's construction figures, built and verified.

* Fig. 4: MSW crossbar = k parallel space planes (k N^2 gates).
* Fig. 5: N x N single-wavelength multicast space switch (N^2 gates).
* Fig. 6: MSDW crossbar with input-side converters (paper example N=3, k=2).
* Fig. 7: MAW crossbar with output-side converters (same example).
* Fig. 8/9: the three-stage topology under both construction methods,
  with per-stage component counts matching Section 3.4.

Each benchmark times the construction and validates the component
census and a realization round-trip.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import multistage_cost
from repro.fabric.space_crossbar import SpaceCrossbar
from repro.fabric.wdm_crossbar import build_crossbar
from repro.multistage.fabric_backed import FabricBackedThreeStage
from repro.switching.generators import AssignmentGenerator


def test_fig5_space_switch(benchmark):
    xbar = benchmark(SpaceCrossbar, 8)
    assert xbar.crosspoint_count() == 64
    assert xbar.delivered({0: {0, 1, 2, 3, 4, 5, 6, 7}}) == {
        j: 0 for j in range(8)
    }


@pytest.mark.parametrize(
    "model,expected_gates,expected_converters",
    [
        (MulticastModel.MSW, 2 * 9, 0),  # Fig. 4 at N=3, k=2
        (MulticastModel.MSDW, 4 * 9, 6),  # Fig. 6 (the paper's example)
        (MulticastModel.MAW, 4 * 9, 6),  # Fig. 7 (the paper's example)
    ],
    ids=["fig4-MSW", "fig6-MSDW", "fig7-MAW"],
)
def test_paper_example_crossbars(benchmark, model, expected_gates, expected_converters):
    crossbar = benchmark(build_crossbar, model, 3, 2)
    assert crossbar.crosspoint_count() == expected_gates
    assert crossbar.converter_count() == expected_converters
    census = crossbar.fabric.census()
    print()
    print(f"{model.value} crossbar (N=3, k=2) component census:")
    for kind, count in sorted(census.items()):
        print(f"  {kind:>22}: {count}")


@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_crossbar_realization_throughput(benchmark, model):
    """Time a full configure-propagate-verify cycle on a random assignment."""
    crossbar = build_crossbar(model, 4, 2)
    generator = AssignmentGenerator(model, 4, 2, rng=0)
    assignments = [generator.random_assignment(0.3) for _ in range(10)]
    index = 0

    def realize_next():
        nonlocal index
        crossbar.realize(assignments[index % len(assignments)])
        index += 1

    benchmark(realize_next)


@pytest.mark.parametrize(
    "construction", list(Construction), ids=lambda c: c.value
)
def test_fig8_fig9_three_stage_builds(benchmark, construction):
    """Build the full physical v(2,3,5,2) network; census must match
    the Section 3.4 stage sums."""
    physical = benchmark(
        FabricBackedThreeStage,
        2,
        3,
        5,
        2,
        construction=construction,
        model=MulticastModel.MAW,
    )
    cost = multistage_cost(2, 3, 5, 2, construction, MulticastModel.MAW)
    assert physical.crosspoint_count() == cost.crosspoints
    assert physical.converter_count() == cost.converters
    print()
    print(
        f"{construction.value} v(2,3,5,2): "
        f"{physical.crosspoint_count()} gates, "
        f"{physical.converter_count()} converters"
    )
