"""Experiment X3a: nonblocking validation at the theorem bound.

Paper claim (Theorems 1-2): with m at the bound, no legal dynamic
multicast traffic can block.  We fuzz every construction/model pair at
m = m_min and time routing throughput (connection setups + teardowns
per second) on a mid-sized network.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import NonblockingBound
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic


@pytest.mark.parametrize("construction", list(Construction), ids=lambda c: c.value)
@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_zero_blocking_at_bound(benchmark, construction, model):
    n, r, k = 3, 3, 2
    bound = NonblockingBound.compute(n, r, k, construction)
    events = list(
        dynamic_traffic(model, n * r, k, steps=300, seed=42)
    )

    def drive():
        net = ThreeStageNetwork(
            n,
            r,
            bound.m_min,
            k,
            construction=construction,
            model=model,
            x=bound.best_x,
        )
        live = {}
        for event in events:
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        return net

    net = benchmark(drive)
    assert net.blocks == 0
    assert net.setups > 100


def test_routing_throughput_large(benchmark):
    """Setup/teardown throughput on v(8, 8, m_min, 4) -- a 64x64 switch."""
    n, r, k = 8, 8, 4
    bound = NonblockingBound.compute(n, r, k, Construction.MSW_DOMINANT)
    events = list(
        dynamic_traffic(MulticastModel.MSW, n * r, k, steps=500, seed=7)
    )

    def drive():
        net = ThreeStageNetwork(
            n, r, bound.m_min, k, x=bound.best_x
        )
        live = {}
        for event in events:
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        return net

    net = benchmark(drive)
    assert net.blocks == 0
