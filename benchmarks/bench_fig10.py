"""Experiment F10: the Fig. 10 blocking scenario.

Paper claim: a multicast connection may be blocked at a middle-stage
MSW switch because its wavelength is pinned end-to-end, while MAW
switches in the first two stages avoid the block.  The scenario routes
the same three connections through both constructions.
"""

from __future__ import annotations

from repro.multistage.adversary import fig10_scenario


def test_fig10(benchmark):
    outcome = benchmark(fig10_scenario)
    assert outcome.msw_dominant_blocked, "MSW middle switch must block"
    assert not outcome.maw_dominant_blocked, "MAW middles must route it"
    print()
    print("Fig. 10 -- v(2,2,2,2), MAW model, x=1:")
    for connection in outcome.connections:
        print(f"  prior: {connection}")
    print(f"  contested: {outcome.contested}")
    print("  MSW-dominant: BLOCKED (wavelength pinned through MSW middles)")
    print("  MAW-dominant: routed (first two stages convert)")
