"""Experiment X9: loss vs offered load (Erlang study).

The operational meaning of the nonblocking bounds: a network at the
corrected bound drops *zero* connections at any offered load, while an
under-provisioned one sheds a growing fraction.  Also compares the
middle-selection strategies below the bound (packing vs spreading).
"""

from __future__ import annotations

import pytest

from repro.analysis.traffic import loss_vs_load
from repro.core.corrected import min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel

N, R, K, X = 3, 3, 2, 1
MODEL = MulticastModel.MAW
LOADS = [1.0, 4.0, 12.0]


def test_loss_curves_by_provisioning(benchmark):
    m_bound = min_middle_switches_corrected(
        N, R, K, Construction.MSW_DOMINANT, MODEL, x=X
    )

    def sweep():
        return {
            m: loss_vs_load(
                N, R, m, K, LOADS, model=MODEL, x=X, arrivals=1200, seed=7
            )
            for m in (2, 4, m_bound)
        }

    curves = benchmark(sweep)
    print()
    print(f"fabric loss probability vs offered load "
          f"(v({N},{R},m,{K}), MAW, x={X}; corrected bound m={m_bound}):")
    for m, points in curves.items():
        row = "  ".join(
            f"rho={p.offered_erlangs:5.1f}: {p.fabric_loss_probability:.3f}"
            for p in points
        )
        print(f"  m={m:2d}: {row}")
    # Zero loss at the bound, for every load.
    assert all(p.fabric_losses == 0 for p in curves[m_bound])
    # Starved network loses plenty at high load.
    assert curves[2][-1].fabric_loss_probability > 0.2


@pytest.mark.parametrize("selection", ["first_fit", "least_loaded", "most_loaded"])
def test_selection_strategies_below_bound(benchmark, selection):
    """Strategy ablation under load at m well below the bound."""

    def run():
        return loss_vs_load(
            N, R, 3, K, [8.0],
            model=MODEL, x=X, arrivals=1500, seed=11, selection=selection,
        )[0]

    point = benchmark(run)
    print()
    print(
        f"  {selection:>12} @ m=3, rho=8: "
        f"fabric loss {point.fabric_loss_probability:.3f}"
    )
    assert 0.0 <= point.fabric_loss_probability <= 1.0
