"""Experiment T1: regenerate Table 1 (capacity and cost per model).

Paper claim (Section 2.4, Table 1): capacities grow MSW < MSDW < MAW;
crosspoints are k N^2 vs k^2 N^2; converters 0 vs kN; MSDW and MAW cost
the same.  We regenerate the table for several concrete (N, k), assert
the shape, and time the exact big-integer evaluation.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table1, table1
from repro.core.capacity import CapacityResult
from repro.core.models import MulticastModel

SIZES = [(4, 2), (8, 4), (16, 8)]


@pytest.mark.parametrize("n_ports,k", SIZES)
def test_table1_regeneration(benchmark, n_ports, k):
    rows = benchmark(table1, n_ports, k)
    msw, msdw, maw = rows

    # Capacity ordering (Lemmas 1-3).
    assert msw.capacity_full < msdw.capacity_full < maw.capacity_full
    assert msw.capacity_any < msdw.capacity_any < maw.capacity_any

    # Cost columns (Section 2.3).
    assert msw.crosspoints == k * n_ports**2
    assert msdw.crosspoints == maw.crosspoints == k**2 * n_ports**2
    assert msw.converters == 0
    assert msdw.converters == maw.converters == n_ports * k

    print()
    print(render_table1(n_ports, k))


def test_table1_large_instance(benchmark):
    """Exact capacities stay tractable at realistic switch sizes."""
    result = benchmark(CapacityResult.compute, MulticastModel.MSDW, 64, 16)
    assert result.log10_full > 1000  # astronomically many assignments


def test_table1_wdm_weaker_than_big_electronic(benchmark):
    """Section 2.2's remark: an N x N k-lambda WDM net is NOT an Nk x Nk net."""

    def compute():
        return [
            CapacityResult.compute(model, 8, 4).full for model in MulticastModel
        ]

    capacities = benchmark(compute)
    electronic = (8 * 4) ** (8 * 4)
    assert all(capacity < electronic for capacity in capacities)
