"""Experiment X7: crosstalk & power loss -- the §2.3 remark, quantified.

The paper uses crosspoint counts as a proxy for crosstalk and power
loss.  With built fabrics we can measure the real thing: worst-case
insertion loss and cascaded-gate (crosstalk) stages for the crossbar vs
the multistage construction.  The multistage design saves gates
(Table 2) but pays ~3x the gate cascade and substantially more
splitting loss per path -- the hidden cost of the cheaper fabric.
"""

from __future__ import annotations

import pytest

from repro.core.models import MulticastModel
from repro.fabric.power import analyze_power
from repro.fabric.wdm_crossbar import build_crossbar
from repro.multistage.fabric_backed import FabricBackedThreeStage


@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_crossbar_power_scaling(benchmark, model):
    def sweep():
        return {
            n_ports: analyze_power(build_crossbar(model, n_ports, 2).fabric)
            for n_ports in (2, 4, 8)
        }

    reports = benchmark(sweep)
    print()
    print(f"{model.value} crossbar worst-case path loss (k=2):")
    for n_ports, report in reports.items():
        print(f"  N={n_ports}: {report.worst_loss_db:5.1f} dB, "
              f"{report.max_gate_cascade} gate stage(s)")
    losses = [report.worst_loss_db for report in reports.values()]
    assert losses == sorted(losses)
    assert all(r.max_gate_cascade == 1 for r in reports.values())


def test_crossbar_vs_multistage_tradeoff(benchmark):
    """Fewer gates (Table 2) but more loss and crosstalk stages."""
    n, r, m, k = 2, 3, 5, 2
    n_ports = n * r

    def build_and_analyze():
        crossbar = build_crossbar(MulticastModel.MAW, n_ports, k)
        physical = FabricBackedThreeStage(n, r, m, k, model=MulticastModel.MAW)
        return (
            analyze_power(crossbar.fabric),
            crossbar.crosspoint_count(),
            analyze_power(physical.fabric),
            physical.crosspoint_count(),
        )

    cb_report, cb_gates, ms_report, ms_gates = benchmark(build_and_analyze)
    print()
    print(f"6x6 MAW network, k=2 (three-stage: v({n},{r},{m},{k})):")
    print(f"  crossbar:   {cb_gates:4d} gates, {cb_report.worst_loss_db:5.1f} dB, "
          f"{cb_report.max_gate_cascade} gate stage(s)")
    print(f"  multistage: {ms_gates:4d} gates, {ms_report.worst_loss_db:5.1f} dB, "
          f"{ms_report.max_gate_cascade} gate stage(s)")
    assert ms_report.max_gate_cascade == 3
    assert cb_report.max_gate_cascade == 1
    assert ms_report.worst_loss_db > cb_report.worst_loss_db
