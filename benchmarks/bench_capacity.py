"""Experiment X4: multicast capacity (Lemmas 1-3) and the brute-force oracle.

Regenerates the capacity-growth series (log10 capacity vs k) and times
both the closed forms and the exhaustive enumeration oracle that
validates them.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import capacity_growth
from repro.core.capacity import full_multicast_capacity
from repro.core.models import MulticastModel
from repro.switching.enumeration import count_assignments


def test_capacity_growth_series(benchmark):
    points = benchmark(capacity_growth, 8, [1, 2, 4, 8])
    # Monotone growth in k for every model; strict ordering at k > 1.
    for model in MulticastModel:
        series = [point.log10_full[model.value] for point in points]
        assert series == sorted(series)
    for point in points[1:]:
        assert (
            point.log10_full["MSW"]
            < point.log10_full["MSDW"]
            < point.log10_full["MAW"]
        )
    print()
    print("log10 full-multicast capacity, N=8:")
    for point in points:
        values = ", ".join(
            f"{model.value}={point.log10_full[model.value]:8.1f}"
            for model in MulticastModel
        )
        print(f"  k={point.k}: {values}")


@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_closed_form_speed(benchmark, model):
    """Exact big-int capacity of a 128x128, 16-wavelength switch."""
    value = benchmark(full_multicast_capacity, model, 128, 16)
    assert value > 0


@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_oracle_agrees_and_times(benchmark, model):
    """The enumeration oracle on (N=2, k=2), compared with the formula."""
    count = benchmark(count_assignments, model, 2, 2, full=False)
    from repro.core.capacity import any_multicast_capacity

    assert count == any_multicast_capacity(model, 2, 2)
