"""Experiment X3b: blocking probability vs m (below the bound).

The flip side of the theorems: starved networks drop requests.  We
sweep m from 1 to the Theorem-1 minimum and measure the Monte-Carlo
blocking probability; it must start positive and reach exactly zero.
"""

from __future__ import annotations

from repro import api
from repro.core.multistage import min_middle_switches_msw_dominant


def test_blocking_curve(benchmark):
    n, r, k, x = 3, 3, 1, 1
    bound = min_middle_switches_msw_dominant(n, r, k, x=x)

    estimates = benchmark(
        api.sweep,
        n,
        r,
        k,
        list(range(1, bound + 1)),
        x=x,
        traffic=api.UniformConfig(steps=800, seeds=(0, 1)),
    )
    probabilities = [estimate.probability for estimate in estimates]
    assert probabilities[0] > 0.0
    assert probabilities[-1] == 0.0
    print()
    print(f"blocking probability vs m (n=r=3, k=1, x=1; Theorem 1 bound m={bound}):")
    for estimate in estimates:
        bar = "#" * int(estimate.probability * 60)
        print(
            f"  m={estimate.m:2d}: P(block)={estimate.probability:7.4f} "
            f"({estimate.blocked}/{estimate.attempts}) {bar}"
        )


def test_adversarial_curve(benchmark):
    """With the randomized adversary, blocking persists closer to the bound."""
    n, r, k, x = 3, 3, 1, 1
    bound = min_middle_switches_msw_dominant(n, r, k, x=x)

    estimates = benchmark(
        api.sweep,
        n,
        r,
        k,
        [1, 2, 3, 4, bound],
        x=x,
        traffic=api.UniformConfig(
            steps=300, seeds=(0,), adversarial=True, adversary_seeds=25
        ),
    )
    # Blocking found at the starved points; never at the bound itself.
    assert estimates[0].blocked > 0
    assert estimates[-1].blocked == 0
    witnessed = [e.m for e in estimates if e.blocked > 0]
    print()
    print(f"adversarial blocking witnesses at m = {witnessed}; none at m={bound}")
