"""Experiment X11: canonical traffic patterns on bound-sized networks.

Structured worst cases (permutations, broadcasts, saturating
multicasts) must all route in arrival order on a network sized at the
corrected bound; the benchmark also measures middle-switch usage per
pattern -- broadcasts fan wide, permutations spread thin.
"""

from __future__ import annotations

import pytest

from repro.core.corrected import CorrectedBound
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.switching.patterns import (
    bit_reversal,
    broadcast,
    identity,
    perfect_shuffle,
    ring_multicast,
    saturating_multicast,
)

N_MODULE, R_MODULE, K = 4, 4, 2  # 16x16 network
PATTERNS = {
    "identity": lambda n, k: identity(n, k),
    "shuffle": lambda n, k: perfect_shuffle(n, k),
    "bit_reversal": lambda n, k: bit_reversal(n, k),
    "broadcast": lambda n, k: broadcast(n, k),
    "ring(4)": lambda n, k: ring_multicast(n, k, window=4),
    "saturating": lambda n, k: saturating_multicast(n, k),
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_pattern_routes_at_bound(benchmark, name):
    bound = CorrectedBound.compute(
        N_MODULE, R_MODULE, K, Construction.MSW_DOMINANT, MulticastModel.MSW
    )
    assignment = PATTERNS[name](N_MODULE * R_MODULE, K)

    def route():
        net = ThreeStageNetwork(
            N_MODULE, R_MODULE, bound.m_min, K, x=bound.best_x
        )
        for connection in assignment:
            net.connect(connection)
        return net

    net = benchmark(route)
    assert net.blocks == 0
    branches = sum(
        len(routed.branches) for routed in net.active_connections.values()
    )
    used_middles = {
        branch.middle
        for routed in net.active_connections.values()
        for branch in routed.branches
    }
    print()
    print(
        f"  {name:>12}: {len(assignment)} connections, "
        f"{branches} middle passes, {len(used_middles)}/{bound.m_min} "
        f"middles touched"
    )
