"""Experiment X8: exact minimal nonblocking m by model checking.

For the smallest networks the reachable-state space is fully decidable,
so we can measure how much slack the sufficient bounds carry and
separate three thresholds::

    m_rearrangeable <= m_strict(exact) <= m_sufficient(bound)

The paper only provides the right-hand member (necessity is cited to
[16] without construction); the model checker supplies the middle one
and the offline router the left one.
"""

from __future__ import annotations

from repro.core.models import MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant
from repro.multistage.exhaustive import exact_minimal_m, is_blockable
from repro.multistage.offline import minimal_rearrangeable_m


def test_exact_thresholds_smallest_network(benchmark):
    """v(2, 2, m, 1), x = 1 -- the fully decided case."""

    def decide():
        strict = exact_minimal_m(2, 2, 1, x=1, m_max=6)
        rearrangeable, _ = minimal_rearrangeable_m(2, 2, 1, x=1, m_max=6)
        return strict, rearrangeable

    strict, rearrangeable = benchmark(decide)
    paper = min_middle_switches_msw_dominant(2, 2, 1, x=1)
    print()
    print("v(2,2,m,1), x=1 thresholds:")
    print(f"  rearrangeable (offline) : m = {rearrangeable}")
    print(f"  strict (model-checked)  : m = {strict.m_exact}")
    print(f"  Theorem 1 (sufficient)  : m = {paper}")
    assert rearrangeable <= strict.m_exact <= paper
    assert strict.m_exact == 3 and paper == 4


def test_blocking_witnesses_scale(benchmark):
    """State counts needed to find blocking witnesses below the bound."""

    def hunt():
        rows = []
        for m in (1, 2, 3):
            result = is_blockable(2, 3, m, 1, x=1, state_budget=200_000)
            rows.append((m, result.blockable, result.states_explored))
        return rows

    rows = benchmark(hunt)
    print()
    print("v(2,3,m,1), x=1 blockability (Theorem 1 minimum: m=5):")
    for m, blockable, states in rows:
        print(f"  m={m}: blockable={blockable} ({states} states)")
    assert all(blockable for _, blockable, _ in rows)


def test_maw_blocking_found_blind(benchmark):
    """Blind search finds MAW-model blocking states below the paper bound
    (the constructive gap demo covers the bound itself)."""

    def check():
        return is_blockable(
            2, 2, 2, 2,
            model=MulticastModel.MAW,
            x=1,
            state_budget=200_000,
        )

    result = benchmark(check)
    assert result.blockable is True
    result.replay()
    print()
    print(
        f"v(2,2,2,2) MAW model: blocking state found after "
        f"{result.states_explored} states "
        f"(blocked request: {result.witness_request})"
    )
