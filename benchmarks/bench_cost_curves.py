"""Experiment X1: crosspoint cost vs N and the crossbar/multistage crossover.

Paper claim (Section 3.4): the three-stage construction reduces the
crosspoint count from Theta(N^2) to O(N^{3/2} log N / log log N), so it
must overtake the crossbar at moderate N and win by a growing factor.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import cost_vs_n, find_crossover
from repro.core.models import MulticastModel

SWEEP = [64, 256, 1024, 4096, 16384]


@pytest.mark.parametrize("model", list(MulticastModel), ids=lambda m: m.value)
def test_cost_curve(benchmark, model):
    points = benchmark(cost_vs_n, SWEEP, 4, model)
    ratios = [point.ratio for point in points]
    # The savings factor grows monotonically with N...
    assert ratios == sorted(ratios)
    # ...and is decisive at the top of the sweep.
    assert ratios[-1] > 5
    print()
    print(f"crosspoints vs N, k=4, model {model.value}:")
    for point in points:
        print(
            f"  N={point.n_ports:6d}: crossbar={point.crossbar:>12}  "
            f"multistage={point.multistage:>12}  ratio={point.ratio:6.2f}"
        )


def test_crossover_locations(benchmark):
    def sweep_models():
        return {
            model: find_crossover(4, model) for model in MulticastModel
        }

    crossovers = benchmark(sweep_models)
    print()
    for model, crossover in crossovers.items():
        assert crossover is not None
        print(
            f"  {model.value}: multistage beats crossbar from N={crossover.n_ports}"
        )
    # Stronger models (k^2 crossbar) cross over no later than MSW.
    assert (
        crossovers[MulticastModel.MAW].n_ports
        <= crossovers[MulticastModel.MSW].n_ports
    )


def test_asymptotic_tracks_exact(benchmark):
    """The Table 2 O-form with the paper's constants stays within a small
    factor of the exact optimized design."""
    points = benchmark(cost_vs_n, [256, 1024, 4096], 4)
    for point in points:
        assert point.multistage_asymptotic is not None
        ratio = point.multistage / point.multistage_asymptotic
        assert 0.2 < ratio < 5.0
