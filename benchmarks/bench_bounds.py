"""Experiment X2: the Theorem 1/2 bound profiles m(x).

Paper claims: the bound is minimized at an interior x (U-shape); the
MAW-dominant construction needs at least as many middle switches as the
MSW-dominant one; with x = 2 log r / log log r the bound reduces to
m ~ 3 (n-1) log r / log log r.
"""

from __future__ import annotations

import pytest

from repro.core.models import Construction
from repro.core.multistage import (
    NonblockingBound,
    min_middle_switches_msw_dominant,
    yang_masson_m,
)


@pytest.mark.parametrize("construction", list(Construction), ids=lambda c: c.value)
def test_bound_profile(benchmark, construction):
    bound = benchmark(NonblockingBound.compute, 16, 16, 4, construction)
    profile = dict(bound.per_x)
    # Interior optimum: strictly better than both extremes.
    assert bound.m_min < profile[1]
    assert bound.m_min < profile[max(profile)]
    print()
    print(f"m(x) profile, n=r=16, k=4, {construction.value}:")
    for x, m in bound.per_x:
        marker = "  <-- optimum" if x == bound.best_x else ""
        print(f"  x={x:2d}: m={m}{marker}")


def test_maw_dominant_needs_more(benchmark):
    def profile_pair():
        return (
            NonblockingBound.compute(16, 16, 4, Construction.MSW_DOMINANT),
            NonblockingBound.compute(16, 16, 4, Construction.MAW_DOMINANT),
        )

    msw, maw = benchmark(profile_pair)
    assert maw.m_min >= msw.m_min
    for (x, m_msw), (_, m_maw) in zip(msw.per_x, maw.per_x):
        assert m_maw >= m_msw


def test_closed_form_envelope(benchmark):
    """The discrete optimum tracks 3(n-1) log r / log log r with n = r."""

    def sweep():
        return {
            s: (min_middle_switches_msw_dominant(s, s), yang_masson_m(s, s))
            for s in (16, 32, 64, 128, 256)
        }

    results = benchmark(sweep)
    print()
    print("discrete m_min vs closed form 3(n-1)log r/log log r (n = r):")
    for s, (discrete, closed) in results.items():
        print(f"  n=r={s:4d}: exact={discrete:6d}  closed-form={closed:9.1f}  "
              f"ratio={discrete / closed:.3f}")
        assert 0.3 * closed <= discrete <= 1.2 * closed
