"""Experiment X10: the unicast special case recovers Clos (1953).

A sharp end-to-end calibration: specializing the paper's multicast
machinery to fanout-1 traffic must reproduce the classical
strict-sense Clos threshold ``m = 2n - 1`` -- by formula, by simulator
fuzz, and by exhaustive model checking (which also confirms necessity:
blocking states exist at ``2n - 2``).
"""

from __future__ import annotations

from repro import api
from repro.core.models import Construction, MulticastModel
from repro.core.unicast import clos_unicast_minimum


def test_clos_threshold_model_checked(benchmark):
    def decide():
        return api.exact_m(
            2, 3, 1, x=1, m_max=6, state_budget=300_000, unicast_only=True
        )

    result = benchmark(decide)
    clos = clos_unicast_minimum(2)
    print()
    print(f"v(2,3,m,1) unicast: model-checked exact m = {result.m_exact}; "
          f"Clos 2n-1 = {clos}")
    for per_m in result.per_m:
        print(f"  m={per_m.m}: blockable={per_m.blockable} "
              f"({per_m.states_explored} states)")
    assert result.m_exact == clos


def test_unicast_gap_table(benchmark):
    """The Theorem-1 gap at fanout 1: output-side conversion is not free."""

    def table():
        rows = []
        for k in (1, 2, 4):
            msw = clos_unicast_minimum(4, k)
            maw_model = clos_unicast_minimum(
                4, k, Construction.MSW_DOMINANT, MulticastModel.MAW
            )
            maw_dom = clos_unicast_minimum(
                4, k, Construction.MAW_DOMINANT, MulticastModel.MAW
            )
            rows.append((k, msw, maw_model, maw_dom))
        return rows

    rows = benchmark(table)
    print()
    print("unicast strict-sense minima, n=4:")
    print("  k   MSW model   MAW model (MSW-dom)   MAW model (MAW-dom)")
    for k, msw, maw_model, maw_dom in rows:
        print(f"  {k}   {msw:9d}   {maw_model:19d}   {maw_dom:19d}")
    assert rows[0][1] == rows[0][2] == rows[0][3] == 7  # 2n-1 at k=1
    assert rows[2][2] > rows[2][3]  # MAW-dominant wins for MAW model
