"""Performance benchmark for the routing kernel, search and sweep engine.

Thirteen sections, each asserting that the fast path computes *exactly*
what the slow path computes before reporting any speedup:

* ``cover_kernel`` -- the bitmask cover search
  (:func:`repro.multistage.routing.find_cover_bits`) against the
  frozenset reference on randomized cover instances;
* ``engine`` -- the shared admission kernel's per-setup hot path
  (:func:`repro.engine.kernel.probe_cover`, with its greedy full-reach
  short-circuit) against the unconditional reach-map + cover-search
  composition, identical covers asserted per instance;
* ``routing_replay`` -- a pregenerated traffic trace replayed through
  :class:`repro.multistage.network.ThreeStageNetwork` under each
  routing kernel, isolating the connect/disconnect hot path from the
  (kernel-independent) traffic generator;
* ``end_to_end`` -- :func:`repro.api.sweep` on the n=4, r=4, k=2 grid
  under each kernel, traffic generation included;
* ``batched`` -- the lockstep batch engine
  (:mod:`repro.perf.batch`, the ``"batched"`` kernel) against the
  serial bitmask sweep on a B=64 replication grid, end to end through
  :func:`repro.api.sweep`, with bit-identity asserted *per
  replication*: every ``(m, seed)`` cell from every available state
  backend is compared against the serial simulator's cell;
* ``fused`` -- the fused whole-stream ``numba`` backend
  (:mod:`repro.engine.fused`) against the python backend on the same
  B=64 grid, per-replication counts, ``BLOCK_KINDS`` histograms and
  cause-dict reprs compared across every construction x model pair;
  without numba the identity half runs the interpreted kernel and the
  timing is flagged ``guard_exempt``;
* ``wide`` -- an ``m, r, k > 62`` fabric (multi-word planes) replayed
  on the ``python``, ``numpy`` and ``numba``/interpreted backends with
  per-replication counts and ``explain_block`` cause dicts asserted
  bit-identical to the serial reference, then the wide sweep timed end
  to end: the multi-word ``numpy`` batch backend vs the serial bitmask
  path the old word gate forced wide fabrics onto (>= 3x floored);
* ``workloads`` -- the batched kernel replaying non-uniform traffic
  (:mod:`repro.workloads` hotspot and heavy-tail fanout models)
  against the serial bitmask sweep, pooled estimates and every
  ``(workload, m, seed)`` replication compared bit-for-bit;
* ``exact_search`` -- the symmetry-canonicalized exhaustive model
  checker (:func:`repro.api.exact_m`) against the uncanonicalized
  reference search, asserting identical per-m verdicts and thresholds;
* ``cache`` -- a cold :class:`repro.perf.cache.ResultCache` sweep vs
  the warm re-run of the same sweep (and a cache-free reference),
  asserting all three produce identical estimates -- the warm-vs-cold
  divergence guard;
* ``adaptive`` -- the sequential-stopping sweep
  (:mod:`repro.perf.adaptive`) vs the minimal uniform fixed budget at
  the same per-cell CI half-width; the guarded ``speedup`` is the
  event ratio (floored at 2x via ``min_speedup``) and ``identical``
  asserts the interrupted-then-resumed run is bit-identical to the
  uninterrupted one;
* ``parallel`` -- the same sweep at ``jobs=1`` vs ``jobs="auto"``
  through :class:`repro.perf.ParallelSweeper`.  The adaptive executor
  falls back to serial whenever a pool cannot win (single effective
  CPU, more workers than units), so the section never reports a pool
  slowdown; the resolved :class:`repro.perf.ExecutionPlan` is recorded
  and the bit-identity of the merged results asserted regardless;
* ``obs`` -- the routing replay and end-to-end sweep with the
  :mod:`repro.obs` layer off (the default) and on, asserting
  bit-identical blocking counts either way and that the *disabled*
  hooks cost <= 2% of the replay (bounded by the measured per-guard
  cost times the hook-site count, and by the off-vs-off re-run).

Run as a script (``python benchmarks/bench_perf.py [--quick]``); writes
``BENCH_perf.json`` and exits nonzero if any fast path diverges from
its reference.  ``--quick`` shrinks the workloads for CI smoke runs;
``--sections`` runs a named subset (the wide-fabric CI job runs
``--quick --sections wide``).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro import api, obs
from repro.analysis.montecarlo import _traffic_cell
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import (
    find_cover_bits,
    find_cover_reference,
    mask_of,
    routing_kernel,
)
from repro.perf.batch import available_backends, resolve_backend, simulate_batch
from repro.perf.sweeper import last_plan, resolve_jobs
from repro.switching.generators import dynamic_traffic


def _best(fn, reps: int) -> tuple[float, object]:
    """Best-of-``reps`` wall time of ``fn()`` plus its (stable) result.

    Timed with the garbage collector paused and pre-collected, so a
    generational sweep scheduled by *earlier* allocations cannot land
    inside one timed region -- on a microsecond-scale section with
    ``--quick``'s single rep that is enough to invert a ratio.
    """
    value = fn()
    times = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            gc.collect()
            start = time.perf_counter()
            again = fn()
            times.append(time.perf_counter() - start)
            if again != value:
                raise AssertionError("benchmark workload is not deterministic")
    finally:
        if was_enabled:
            gc.enable()
    return min(times), value


# -- section 1: cover-search kernel -----------------------------------------


def _cover_instances(count: int, labels: int, middles: int, seed: int):
    rng = random.Random(seed)
    instances = []
    for _ in range(count):
        destinations = frozenset(rng.sample(range(labels), rng.randint(4, labels)))
        coverable = {
            j: frozenset(p for p in destinations if rng.random() < 0.55)
            for j in range(middles)
        }
        instances.append((destinations, coverable, rng.randint(2, 4)))
    return instances


def bench_cover_kernel(quick: bool, reps: int) -> dict:
    instances = _cover_instances(
        count=100 if quick else 400, labels=24, middles=14, seed=7
    )
    masked = [
        (mask_of(destinations), {j: mask_of(s) for j, s in coverable.items()}, x)
        for destinations, coverable, x in instances
    ]

    def decode(cover_bits):
        if cover_bits is None:
            return None
        out = {}
        for j, bits in cover_bits.items():
            modules = []
            while bits:
                low = bits & -bits
                modules.append(low.bit_length() - 1)
                bits ^= low
            out[j] = modules
        return out

    def run_bits():
        return [
            decode(find_cover_bits(dest_mask, coverable, x))
            for dest_mask, coverable, x in masked
        ]

    def run_reference():
        return [
            find_cover_reference(destinations, coverable, x)
            for destinations, coverable, x in instances
        ]

    bitmask_s, bits_out = _best(run_bits, reps)
    reference_s, reference_out = _best(run_reference, reps)
    return {
        "instances": len(instances),
        "reference_s": reference_s,
        "bitmask_s": bitmask_s,
        "speedup": reference_s / bitmask_s,
        "identical": bits_out == reference_out,
    }


# -- section: shared admission-engine kernels ---------------------------------


def _engine_instances(count: int, middles: int, modules: int, seed: int):
    """Randomized one-setup admission states (masks + blocker rows)."""
    rng = random.Random(seed)
    instances = []
    for _ in range(count):
        blockers = [
            mask_of(p for p in range(modules) if rng.random() < 0.35)
            for _ in range(middles)
        ]
        available = mask_of(
            j for j in range(middles) if rng.random() < 0.7
        )
        dest_mask = mask_of(
            rng.sample(range(modules), rng.randint(1, 6))
        )
        instances.append((available, dest_mask, rng.randint(1, 3), blockers))
    return instances


def bench_engine(quick: bool, reps: int) -> dict:
    """:func:`repro.engine.kernel.probe_cover` vs the two-step composition.

    ``probe_cover`` is the per-setup hot path every consumer (serial
    network, lockstep batch driver) runs: one ascending scan that
    short-circuits on the first full-reach middle.  The reference
    composition builds the complete reach map and runs the cover search
    unconditionally -- same covers by construction (greedy picks exactly
    that lowest full-reach middle), which this section asserts on every
    instance before reporting the shortcut's win.

    The whole workload runs in single-digit milliseconds, so one noisy
    rep (a scheduler preemption, a cache-cold first pass) can invert
    the ratio outright; the section therefore floors its reps at 3
    regardless of ``--quick`` and declares ``min_speedup`` 1.0 -- the
    shortcut being *slower* than the composition it short-circuits is a
    code regression whatever the baseline says.
    """
    from repro.engine.kernel import probe_cover, reach_map

    reps = max(reps, 3)
    instances = _engine_instances(
        count=1500 if quick else 6000, middles=14, modules=18, seed=11
    )

    def run_probe():
        return [
            probe_cover(available, dest_mask, x, blockers)[0]
            for available, dest_mask, x, blockers in instances
        ]

    def run_split():
        covers = []
        for available, dest_mask, x, blockers in instances:
            full = reach_map(available, dest_mask, blockers)
            covers.append(
                find_cover_bits(dest_mask, full, x) if full else None
            )
        return covers

    probe_s, probe_out = _best(run_probe, reps)
    split_s, split_out = _best(run_split, reps)
    return {
        "instances": len(instances),
        "reps": reps,
        "split_s": split_s,
        "probe_s": probe_s,
        "min_speedup": 1.0,
        "speedup": split_s / probe_s,
        "identical": probe_out == split_out,
    }


# -- section 2: routing replay ----------------------------------------------


def _replay(events, n, r, m, k, x) -> int:
    net = ThreeStageNetwork(
        n,
        r,
        m,
        k,
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=x,
    )
    live: dict[int, int] = {}
    dropped: set[int] = set()
    blocked = 0
    for event in events:
        if event.kind == "setup":
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return blocked


def bench_routing_replay(quick: bool, reps: int) -> dict:
    n, r, k, x = 4, 4, 2, 2
    steps = 1000 if quick else 4000
    events = list(
        dynamic_traffic(MulticastModel.MSW, n * r, k, steps=steps, seed=0)
    )
    m_values = [2, 4, 6]
    cells = []
    reference_total = 0.0
    bitmask_total = 0.0
    identical = True
    for m in m_values:
        with routing_kernel("reference"):
            reference_s, reference_blocked = _best(
                lambda: _replay(events, n, r, m, k, x), reps
            )
        with routing_kernel("bitmask"):
            bitmask_s, bitmask_blocked = _best(
                lambda: _replay(events, n, r, m, k, x), reps
            )
        identical = identical and reference_blocked == bitmask_blocked
        reference_total += reference_s
        bitmask_total += bitmask_s
        cells.append(
            {
                "m": m,
                "reference_s": reference_s,
                "bitmask_s": bitmask_s,
                "speedup": reference_s / bitmask_s,
                "blocked": bitmask_blocked,
            }
        )
    return {
        "config": {"n": n, "r": r, "k": k, "x": x, "steps": steps},
        "cells": cells,
        "reference_s": reference_total,
        "bitmask_s": bitmask_total,
        "speedup": reference_total / bitmask_total,
        "identical": identical,
    }


# -- section: canonicalized exhaustive search --------------------------------


def _exact_key(result) -> tuple:
    """Verdict fingerprint of one exact_minimal_m scan (witness-agnostic)."""
    return (
        result.m_exact,
        tuple((per_m.m, per_m.blockable) for per_m in result.per_m),
    )


def bench_exact_search(quick: bool, reps: int) -> dict:
    # Configs where BOTH searches complete: the multicast v(2,2,m,1)
    # scan (true threshold 3 vs the paper's 4) and -- full mode only --
    # the unicast Clos v(2,3,m,1) scan (recovers 2n-1 = 3), where the
    # symmetry factor is larger.  The canonicalized search also settles
    # multicast v(2,3,m,1) (m_exact = 4, ~2.3M raw states) in under a
    # minute, which the reference cannot do in hours -- that frontier
    # point is recorded in EXPERIMENTS.md rather than re-run here.
    scans = [
        {"label": "multicast v(2,2,m,1)", "args": (2, 2, 1),
         "kwargs": dict(x=1, m_max=6)},
    ]
    if not quick:
        scans.append(
            {"label": "unicast v(2,3,m,1)", "args": (2, 3, 1),
             "kwargs": dict(x=1, m_max=5, unicast_only=True)}
        )
    cells = []
    reference_total = 0.0
    canonical_total = 0.0
    identical = True
    for scan in scans:
        scan_reps = max(1, min(reps, 3))
        canonical_s, canonical_out = _best(
            lambda scan=scan: _exact_key(
                api.exact_m(
                    *scan["args"],
                    search=api.SearchConfig(canonicalize=True),
                    **scan["kwargs"],
                )
            ),
            scan_reps,
        )
        reference_s, reference_out = _best(
            lambda scan=scan: _exact_key(
                api.exact_m(
                    *scan["args"],
                    search=api.SearchConfig(canonicalize=False),
                    **scan["kwargs"],
                )
            ),
            scan_reps,
        )
        identical = identical and canonical_out == reference_out
        reference_total += reference_s
        canonical_total += canonical_s
        cells.append(
            {
                "scan": scan["label"],
                "m_exact": canonical_out[0],
                "reference_s": reference_s,
                "canonical_s": canonical_s,
                "speedup": reference_s / canonical_s,
                "identical": canonical_out == reference_out,
            }
        )
    return {
        "cells": cells,
        "reference_s": reference_total,
        "canonical_s": canonical_total,
        "speedup": reference_total / canonical_total,
        "identical": identical,
    }


# -- section: content-addressed sweep cache ----------------------------------


def bench_cache(quick: bool, reps: int) -> dict:
    m_values = [2, 4, 6]
    traffic = api.UniformConfig(steps=200 if quick else 800, seeds=(0, 1))

    def run(cache_dir):
        return _estimate_key(
            api.sweep(
                3, 3, 2, m_values,
                traffic=traffic,
                execution=api.ExecConfig(cache_dir=cache_dir),
            )
        )

    nocache_out = run(None)
    with tempfile.TemporaryDirectory(prefix="wdm-bench-cache-") as tmp:
        # Cold: every cell computed and stored (timed once -- a second
        # cold run would be warm).  Cache traffic is read from the obs
        # counters the cache increments.
        with obs.capture() as watch:
            start = time.perf_counter()
            cold_out = run(tmp)
            cold_s = time.perf_counter() - start
        stored = watch.metrics.snapshot()["counters"].get("cache.stores", 0)
        # Warm: every cell served from disk.
        with obs.capture() as watch:
            warm_s, warm_out = _best(lambda: run(tmp), reps)
        hits = watch.metrics.snapshot()["counters"].get("cache.hits", 0)
    return {
        "config": {
            "n": 3, "r": 3, "k": 2, "m_values": m_values,
            "steps": traffic.steps, "seeds": traffic.seeds,
        },
        "cells_stored": stored,
        "warm_hits": hits,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "identical": cold_out == warm_out == nocache_out,
    }


# -- section: observability overhead ------------------------------------------


def bench_obs(quick: bool, reps: int) -> dict:
    """Obs-off must cost nothing; obs-on must not change results.

    Three measurements on the routing-replay workload plus one on the
    end-to-end sweep:

    * the replay with obs off, run twice -- the second timing bounds
      run-to-run noise, so a real obs-off regression is separable from
      jitter;
    * the replay and the sweep with obs on (metrics), asserting blocked
      counts and estimates are bit-identical to obs-off;
    * the disabled guard measured directly (a million ``obs.inc`` calls
      while off), scaled by the replay's hook executions to bound the
      obs-off overhead fraction -- asserted <= 2%.
    """
    n, r, m, k, x = 4, 4, 4, 2, 2
    steps = 1000 if quick else 4000
    events = list(
        dynamic_traffic(MulticastModel.MSW, n * r, k, steps=steps, seed=0)
    )

    def replay():
        return _replay(events, n, r, m, k, x)

    assert not obs.enabled()
    off_s, off_blocked = _best(replay, reps)
    off2_s, _ = _best(replay, reps)
    with obs.capture():
        on_s, on_blocked = _best(replay, reps)

    traffic = api.UniformConfig(steps=200 if quick else 600, seeds=(0, 1))

    def sweep():
        return _estimate_key(api.sweep(4, 4, 2, [2, 5, 8], traffic=traffic))

    sweep_off_s, sweep_off = _best(sweep, reps)
    with obs.capture():
        sweep_on_s, sweep_on = _best(sweep, reps)

    # Direct guard cost: every hook site the disabled replay touches is
    # one boolean read; bound their total share of the replay time.
    # Timing noise only inflates a measurement, so take the best of
    # several runs -- the same convention ``_best`` applies everywhere
    # else in this file.
    guard_calls = 200_000
    obs.reset()
    per_call = []
    for _ in range(max(reps, 5)):
        start = time.perf_counter()
        for _ in range(guard_calls):
            obs.inc("bench.noop")
        per_call.append((time.perf_counter() - start) / guard_calls)
    guard_per_call = min(per_call)
    assert not obs.enabled() and obs.REGISTRY.snapshot()["counters"] == {}
    hook_executions = 2 * len(events)  # <= 2 guarded sites per event
    off_overhead = guard_per_call * hook_executions / off_s
    return {
        "config": {"n": n, "r": r, "m": m, "k": k, "x": x, "steps": steps},
        "replay_off_s": off_s,
        "replay_off_rerun_s": off2_s,
        "replay_on_s": on_s,
        "on_overhead": on_s / off_s - 1.0,
        "sweep_off_s": sweep_off_s,
        "sweep_on_s": sweep_on_s,
        "sweep_on_overhead": sweep_on_s / sweep_off_s - 1.0,
        "guard_ns": guard_per_call * 1e9,
        "off_overhead_bound": off_overhead,
        "speedup": 1.0 / (1.0 + off_overhead),
        "identical": (
            off_blocked == on_blocked
            and sweep_off == sweep_on
            and off_overhead <= 0.02
        ),
    }


# -- sections: end-to-end sweep, serial vs parallel --------------------------


def _grid_traffic(quick: bool) -> api.UniformConfig:
    return api.UniformConfig(
        steps=400 if quick else 1500,
        seeds=(0, 1) if quick else (0, 1, 2),
    )


def _estimate_key(estimates) -> list[tuple[int, int, int]]:
    return [(e.m, e.attempts, e.blocked) for e in estimates]


def bench_end_to_end(quick: bool, reps: int) -> dict:
    m_values = [2, 5, 8, 11, 14]
    traffic = _grid_traffic(quick)

    def run(kernel):
        return _estimate_key(
            api.sweep(
                4, 4, 2, m_values,
                traffic=traffic,
                search=api.SearchConfig(kernel=kernel),
            )
        )

    reference_s, reference_out = _best(lambda: run("reference"), reps)
    bitmask_s, bitmask_out = _best(lambda: run("bitmask"), reps)
    return {
        "config": {
            "n": 4, "r": 4, "k": 2, "m_values": m_values,
            "steps": traffic.steps, "seeds": traffic.seeds,
        },
        "reference_s": reference_s,
        "bitmask_s": bitmask_s,
        "speedup": reference_s / bitmask_s,
        "identical": reference_out == bitmask_out,
    }


# -- section: lockstep batched Monte Carlo ------------------------------------


def bench_batched(quick: bool, reps: int) -> dict:
    """The batched kernel vs the serial bitmask sweep at B = 64.

    Timed end to end through :func:`repro.api.sweep` (same traffic, same
    estimates, only the kernel differs).  ``identical`` is the
    conjunction of the pooled estimates matching *and* per-replication
    bit-identity: every ``(m, seed)`` cell from every available lockstep
    backend must equal the serial simulator's ``(attempts, blocked)``
    for that cell, so a single diverging replication fails the bench.
    """
    n, r, k, x = 3, 3, 2, 1
    m_values = list(range(1, 17))
    seeds = (0, 1, 2, 3)
    batch_size = len(m_values) * len(seeds)  # 64 lockstep replications
    traffic = api.UniformConfig(steps=500 if quick else 2000, seeds=seeds)

    def run(kernel):
        return _estimate_key(
            api.sweep(
                n, r, k, m_values,
                traffic=traffic,
                search=api.SearchConfig(kernel=kernel),
            )
        )

    bitmask_s, bitmask_out = _best(lambda: run("bitmask"), reps)
    batched_s, batched_out = _best(lambda: run("batched"), reps)

    construction = Construction.MSW_DOMINANT
    model = MulticastModel.MSW
    serial_cells = {
        (m, seed): _traffic_cell(
            n, r, m, k, construction, model, x, traffic.steps, seed, None
        )
        for m in m_values
        for seed in seeds
    }
    backends = list(available_backends())
    diverged: list[dict] = []
    for backend in backends:
        for seed in seeds:
            batch = simulate_batch(
                n, r, k, construction, model, x, traffic.steps, None, seed,
                m_values, backend,
            )
            for m, value in batch:
                if value != serial_cells[(m, seed)]:
                    diverged.append(
                        {"backend": backend, "m": m, "seed": seed}
                    )
    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": m_values,
            "steps": traffic.steps, "seeds": seeds,
        },
        "batch_size": batch_size,
        "backend": resolve_backend("auto", m_max=max(m_values), r=r, k=k),
        "backends_checked": backends,
        "replications_checked": batch_size * len(backends),
        "diverged_cells": diverged,
        "bitmask_s": bitmask_s,
        "batched_s": batched_s,
        "speedup": bitmask_s / batched_s,
        "identical": bitmask_out == batched_out and not diverged,
    }


def bench_fused(quick: bool, reps: int) -> dict:
    """The fused whole-stream kernel vs the python backend at B = 64.

    Identity first, speed second.  The identity half always runs: every
    construction x model pair is replayed through both the python
    backend and the fused ``numba`` backend (forced to its interpreted
    mode when numba is not installed -- same array program, uncompiled)
    and compared per replication on ``(attempts, blocked, releases)``,
    the ``BLOCK_KINDS`` cause histograms *and* the full ``block_cause``
    dict reprs; one diverging replication fails the bench.

    The timing half measures the same B = 64 workload as the
    ``batched`` section (m 1..16 x 4 seeds).  With real numba the JIT
    is warmed outside the timed region and the section is guarded (the
    tentpole target is >= 3x over python); in interpreted mode the
    timing is reported for completeness but flagged ``guard_exempt`` --
    an uncompiled kernel's wall time says nothing about the compiled
    backend, so ``tools/check_bench_regression.py`` skips the guard.
    """
    import os

    from repro.engine.fused import FUSED_ENV, NUMBA_AVAILABLE, fused_mode
    from repro.perf.batch import _simulate

    n, r, k, x = 3, 3, 2, 1
    m_values = tuple(range(1, 17))
    seeds = (0, 1, 2, 3)

    if "numpy" not in available_backends():
        return {
            "mode": "unavailable",
            "note": "numpy not installed; fused backend cannot run",
            "speedup": 1.0,
            "guard_exempt": True,
            "identical": True,
        }

    forced = not NUMBA_AVAILABLE
    if forced:
        os.environ[FUSED_ENV] = "1"
    try:
        mode = fused_mode()
        # Interpreted timing is apples-to-oranges; keep it cheap.
        timed_guarded = mode == "jit"
        steps = (500 if quick else 2000) if timed_guarded else 500
        timing_reps = reps if timed_guarded else 1

        diverged: list[dict] = []
        id_steps = 300
        for construction in Construction:
            for model in MulticastModel:
                py_att, py_reps = _simulate(
                    n, r, k, construction, model, x, id_steps, None, 0,
                    list(m_values), "python", True,
                )
                fu_att, fu_reps = _simulate(
                    n, r, k, construction, model, x, id_steps, None, 0,
                    list(m_values), "numba", True,
                )
                for m, py_rep, fu_rep in zip(m_values, py_reps, fu_reps):
                    same = (
                        py_att == fu_att
                        and py_rep.blocked == fu_rep.blocked
                        and py_rep.releases == fu_rep.releases
                        and py_rep.kind_counts == fu_rep.kind_counts
                        and repr(py_rep.causes) == repr(fu_rep.causes)
                    )
                    if not same:
                        diverged.append(
                            {
                                "construction": construction.value,
                                "model": model.value,
                                "m": m,
                            }
                        )

        construction = Construction.MSW_DOMINANT
        model = MulticastModel.MSW

        def run(backend):
            return [
                simulate_batch(
                    n, r, k, construction, model, x, steps, None, seed,
                    m_values, backend,
                )
                for seed in seeds
            ]

        if timed_guarded:
            run("numba")  # compile outside the timed region
        python_s, python_out = _best(lambda: run("python"), timing_reps)
        fused_s, fused_out = _best(lambda: run("numba"), timing_reps)
    finally:
        if forced:
            del os.environ[FUSED_ENV]

    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": list(m_values),
            "steps": steps, "seeds": seeds, "identity_steps": id_steps,
        },
        "mode": mode,
        "batch_size": len(m_values) * len(seeds),
        "replications_checked": (
            len(m_values) * len(Construction) * len(MulticastModel)
        ),
        "diverged_cells": diverged,
        "python_s": python_s,
        "fused_s": fused_s,
        "speedup": python_s / fused_s,
        "guard_exempt": not timed_guarded,
        "identical": not diverged and python_out == fused_out,
    }


def bench_wide(quick: bool, reps: int) -> dict:
    """Multi-word planes: an ``m, r, k > 62`` fabric on the fast backends.

    Before the plane-width rework, the int64 word gate refused any
    geometry with ``m``, ``r`` or ``k`` above 62 on the ``numpy`` and
    ``numba`` backends, so wide sweeps silently fell back to serial
    pure-python runs.  This section replays a v(3, 70, m, 63) fabric
    (r = 70 output modules, k = 63 wavelengths, m up to 100 middles --
    every mask family wider than one signed int64 word):

    * identity -- each backend (``python``, ``numpy`` and ``numba`` in
      its compiled or interpreted mode) replays the same stream with
      cause recording on, and every ``m`` replication must match the
      serial reference simulator on ``(attempts, blocked)`` *and* the
      full ``explain_block`` cause dict of every blocked setup;
    * timing -- :func:`repro.api.sweep` end to end under the
      ``batched`` kernel on the multi-word ``numpy`` backend against
      the pure-python serial ``bitmask`` kernel the gate used to force
      wide sweeps onto.  The guarded ``speedup`` declares a 3x
      ``min_speedup`` floor; the python batch backend is timed for
      reference, and the fused backend's time rides along but is
      flagged exempt when numba is missing (interpreted wall time says
      nothing about the compiled kernel, same convention as the
      ``fused`` section).
    """
    import os

    from repro.engine.backends import BACKEND_ENV, plane_width
    from repro.engine.fused import FUSED_ENV, NUMBA_AVAILABLE, fused_mode
    from repro.perf.batch import _simulate

    if "numpy" not in available_backends():
        return {
            "mode": "unavailable",
            "note": "numpy not installed; multi-word backends cannot run",
            "speedup": 1.0,
            "guard_exempt": True,
            "identical": True,
        }

    n, r, k, x = 3, 70, 63, 2
    m_values = [1, 2, 3, 4, 63, 70, 85, 100]
    construction = Construction.MSW_DOMINANT
    model = MulticastModel.MSW

    # Identity: the serial simulator's ground truth, causes included.
    # The traffic does not depend on m, so one event list replays
    # against every m cell (the routing_replay convention).
    id_steps = 250
    id_seed = 0
    events = list(
        dynamic_traffic(
            model, n * r, k, steps=id_steps, seed=random.Random(id_seed)
        )
    )
    serial_cells: dict[int, tuple[int, int, list[str]]] = {}
    for m in m_values:
        net = ThreeStageNetwork(
            n, r, m, k, construction=construction, model=model, x=x
        )
        live: dict[int, int] = {}
        dropped: set[int] = set()
        attempts = blocked = 0
        causes: list[str] = []
        for event in events:
            if event.kind == "setup":
                attempts += 1
                connection_id = net.try_connect(event.connection)
                if connection_id is None:
                    blocked += 1
                    causes.append(repr(net.explain_block(event.connection)))
                    dropped.add(event.connection_id)
                else:
                    live[event.connection_id] = connection_id
            else:
                if event.connection_id in dropped:
                    dropped.discard(event.connection_id)
                    continue
                net.disconnect(live.pop(event.connection_id))
        serial_cells[m] = (attempts, blocked, causes)

    forced = not NUMBA_AVAILABLE
    if forced:
        os.environ[FUSED_ENV] = "1"
    try:
        mode = fused_mode()
        backends = ["python", "numpy", "numba"]
        diverged: list[dict] = []
        for backend in backends:
            attempts, replications = _simulate(
                n, r, k, construction, model, x, id_steps, None, id_seed,
                list(m_values), backend, True,
            )
            for m, rep in zip(m_values, replications):
                got = (attempts, rep.blocked, [repr(c) for c in rep.causes])
                if got != serial_cells[m]:
                    diverged.append({"backend": backend, "m": m})

        # Timing: the wide sweep end to end, serial vs batched.
        steps = 200 if quick else 500
        seeds = (0,) if quick else (0, 1)
        traffic = api.UniformConfig(steps=steps, seeds=seeds)

        def run(kernel):
            return _estimate_key(
                api.sweep(
                    n, r, k, m_values,
                    traffic=traffic,
                    search=api.SearchConfig(kernel=kernel),
                )
            )

        def run_batched(backend):
            previous = os.environ.get(BACKEND_ENV)
            os.environ[BACKEND_ENV] = backend
            try:
                return run("batched")
            finally:
                if previous is None:
                    del os.environ[BACKEND_ENV]
                else:
                    os.environ[BACKEND_ENV] = previous

        if mode == "jit":
            run_batched("numba")  # compile outside the timed region
        bitmask_s, bitmask_out = _best(lambda: run("bitmask"), reps)
        python_s, python_out = _best(lambda: run_batched("python"), reps)
        numpy_s, numpy_out = _best(lambda: run_batched("numpy"), reps)
        fused_s, fused_out = _best(
            lambda: run_batched("numba"), reps if mode == "jit" else 1
        )
    finally:
        if forced:
            del os.environ[FUSED_ENV]

    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": m_values,
            "steps": steps, "seeds": seeds, "identity_steps": id_steps,
            "plane_width": plane_width(max(m_values), r, k),
        },
        "mode": mode,
        "serial_blocked": {m: serial_cells[m][1] for m in m_values},
        "replications_checked": len(m_values) * len(backends),
        "diverged_cells": diverged,
        "bitmask_s": bitmask_s,
        "python_s": python_s,
        "numpy_s": numpy_s,
        "fused_s": fused_s,
        "fused_speedup": bitmask_s / fused_s,
        "fused_guard_exempt": mode != "jit",
        "min_speedup": 3.0,
        "speedup": bitmask_s / numpy_s,
        "identical": (
            not diverged
            and bitmask_out == python_out == numpy_out == fused_out
        ),
    }


def bench_workloads(quick: bool, reps: int) -> dict:
    """Non-uniform workloads through the batch engine vs the serial path.

    The workload seam sits in the stream compiler, so a skewed model
    must keep both halves of the lockstep contract: the batched kernel
    replaying hotspot and heavy-tail traffic must stay bit-identical
    *per replication* to the serial bitmask simulator on the same
    stream, and must keep its speedup -- a workload that silently
    forces the slow path would pass every identity test while
    discarding the engine's reason to exist.  ``identical`` is the
    conjunction of pooled-estimate equality and per-cell equality for
    every ``(workload, m, seed)`` triple; the guarded ``speedup`` is
    total serial time over total batched time across both workloads.
    """
    n, r, k, x = 3, 3, 2, 1
    m_values = list(range(1, 17))
    seeds = (0, 1, 2, 3)
    steps = 400 if quick else 1500
    construction = Construction.MSW_DOMINANT
    model = MulticastModel.MSW
    workloads = [
        api.HotspotConfig(steps=steps, seeds=seeds, zipf_s=1.5),
        api.HeavyTailFanoutConfig(steps=steps, seeds=seeds, alpha=0.9),
    ]

    cells = []
    diverged: list[dict] = []
    serial_total = batched_total = 0.0
    pooled_identical = True
    for workload in workloads:

        def run(kernel, workload=workload):
            return _estimate_key(
                api.sweep(
                    n, r, k, m_values,
                    traffic=workload,
                    search=api.SearchConfig(kernel=kernel),
                )
            )

        serial_s, serial_out = _best(lambda: run("bitmask"), reps)
        batched_s, batched_out = _best(lambda: run("batched"), reps)
        pooled_identical = pooled_identical and serial_out == batched_out

        serial_cells = {
            (m, seed): _traffic_cell(
                n, r, m, k, construction, model, x, steps, seed, None,
                None, False, workload,
            )
            for m in m_values
            for seed in seeds
        }
        for seed in seeds:
            batch = simulate_batch(
                n, r, k, construction, model, x, steps, None, seed,
                m_values, "auto", False, workload,
            )
            for m, value in batch:
                if value != serial_cells[(m, seed)]:
                    diverged.append(
                        {"workload": workload.workload, "m": m, "seed": seed}
                    )
        serial_total += serial_s
        batched_total += batched_s
        cells.append(
            {
                "workload": workload.workload,
                "serial_s": serial_s,
                "batched_s": batched_s,
                "speedup": serial_s / batched_s,
                "replications_checked": len(m_values) * len(seeds),
            }
        )
    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": m_values,
            "steps": steps, "seeds": seeds,
            "workloads": [w.workload for w in workloads],
        },
        "cells": cells,
        "diverged_cells": diverged,
        "serial_s": serial_total,
        "batched_s": batched_total,
        "speedup": serial_total / batched_total,
        "identical": pooled_identical and not diverged,
    }


def bench_topology(quick: bool, reps: int) -> dict:
    """Every registered fabric model head-to-head on one shared stream.

    The fabric seam's contract is the same lockstep one the workload
    seam keeps: a fabric changes *which* setups are admitted, never the
    traffic stream itself, so every registered fabric replays the same
    compiled streams and must produce per-replication identical
    ``(attempts, blocked, releases)`` on every available state backend
    (python, numpy, and the fused kernel -- forced to interpreted mode
    when numba is absent).  Two live oracles ride along: the crossbar
    must record exactly zero blocked events (it is nonblocking by
    construction), and no fabric may block *less* than the crossbar.
    The payload is the paper-style blocking-vs-cost curve per fabric
    (crosspoints from each spec's cost model), the reason the zoo
    exists.  The section is identity-only: ``speedup`` is 1.0 by
    construction and the regression guard watches ``identical``.
    """
    import os

    from repro.engine.fabrics import fabric_names, get_fabric
    from repro.engine.fused import FUSED_ENV, NUMBA_AVAILABLE
    from repro.perf.batch import _simulate

    n, r, k, x = 3, 3, 2, 1
    m_values = list(range(1, 9)) if quick else list(range(1, 13))
    seeds = (0, 1) if quick else (0, 1, 2, 3)
    steps = 300 if quick else 1000
    construction = Construction.MSW_DOMINANT
    model = MulticastModel.MSW

    backends = ["python"]
    if "numpy" in available_backends():
        backends += ["numpy", "numba"]
    forced = "numba" in backends and not NUMBA_AVAILABLE
    if forced:
        os.environ[FUSED_ENV] = "1"
    try:
        diverged: list[dict] = []
        fabric_rows = []
        blocked_by_fabric: dict[str, list[int]] = {}
        for fabric in fabric_names():
            spec = get_fabric(fabric)
            per_backend: dict[str, list] = {}
            for backend in backends:
                runs = []
                for seed in seeds:
                    attempts, replications = _simulate(
                        n, r, k, construction, model, x, steps, None,
                        seed, m_values, backend, False, False, None,
                        fabric,
                    )
                    runs.append(
                        (
                            attempts,
                            tuple(
                                (rep.blocked, rep.releases)
                                for rep in replications
                            ),
                        )
                    )
                per_backend[backend] = runs
            reference = per_backend[backends[0]]
            for backend in backends[1:]:
                if per_backend[backend] != reference:
                    diverged.append({"fabric": fabric, "backend": backend})
            attempts_total = sum(run[0] for run in reference)
            blocked_per_m = [
                sum(run[1][mi][0] for run in reference)
                for mi in range(len(m_values))
            ]
            blocked_by_fabric[fabric] = blocked_per_m
            if spec.nonblocking and any(blocked_per_m):
                diverged.append(
                    {"fabric": fabric, "backend": "nonblocking-oracle"}
                )
            curve = [
                {
                    "m": m,
                    "crosspoints": spec.cost(n, r, m, k, construction, model),
                    "blocked": blocked_per_m[mi],
                    "probability": (
                        blocked_per_m[mi] / attempts_total
                        if attempts_total
                        else 0.0
                    ),
                }
                for mi, m in enumerate(m_values)
            ]
            fabric_rows.append(
                {
                    "fabric": fabric,
                    "nonblocking": spec.nonblocking,
                    "attempts": attempts_total,
                    "replications_checked": len(m_values) * len(seeds),
                    "backends": backends,
                    "curve": curve,
                }
            )
        floor = blocked_by_fabric.get("crossbar")
        if floor is not None:
            for fabric, blocked_per_m in blocked_by_fabric.items():
                if any(b < f for b, f in zip(blocked_per_m, floor)):
                    diverged.append(
                        {"fabric": fabric, "backend": "crossbar-floor"}
                    )
    finally:
        if forced:
            del os.environ[FUSED_ENV]

    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": m_values,
            "steps": steps, "seeds": seeds,
            "construction": construction.name, "model": model.name,
        },
        "fabrics": fabric_rows,
        "diverged_cells": diverged,
        "speedup": 1.0,
        "identical": not diverged,
    }


def bench_adaptive(quick: bool, reps: int) -> dict:
    """The adaptive sequential-stopping sweep vs a fixed budget at equal CI.

    Both paths must deliver every curve point at the same Wilson
    half-width target.  The fixed-replication design cannot know in
    advance which ``m`` needs the most sampling, so its minimal uniform
    budget is the *widest* cell's replication count applied to every
    cell; the adaptive engine spends that count only where the variance
    is and stops the tail at the round floor.  The guarded ``speedup``
    is the **event ratio** -- fixed-budget events over adaptive events
    at matched precision -- which is a pure function of the stopping
    rule (machine-independent, like the kernel sections' time ratios).
    ``tools/check_bench_regression.py`` additionally enforces the
    absolute floor ``min_speedup`` (>= 2x fewer events).

    ``identical`` asserts the resume contract: a sweep interrupted after
    its first rounds (persisted in a :class:`ResultCache`) and resumed
    must reproduce the uninterrupted run bit-identically -- per-cell
    ``(attempts, blocked)`` divergences are listed in
    ``diverged_cells``.
    """
    from repro.perf.adaptive import PrecisionConfig, adaptive_sweep
    from repro.perf.cache import ResultCache

    n, r, k, x = 3, 3, 1, 1
    m_values = list(range(1, 7 if quick else 9))
    steps = 150 if quick else 400
    precision = PrecisionConfig(half_width=0.01, min_rounds=2, max_rounds=64)
    config = dict(
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=x,
        steps=steps,
        precision=precision,
    )

    def run_adaptive():
        with routing_kernel("batched"):
            estimates = adaptive_sweep(n, r, k, m_values, **config)
        return [
            (e.m, e.attempts, e.blocked, e.adaptive.rounds, e.adaptive.converged)
            for e in estimates
        ]

    adaptive_s, cells = _best(run_adaptive, reps)
    rounds = [cell[3] for cell in cells]
    converged = all(cell[4] for cell in cells)
    per_round = precision.replications_per_round() * steps
    adaptive_events = sum(rounds) * per_round
    fixed_events = max(rounds) * per_round * len(m_values)

    # Resume identity: persist the first rounds, then resume to the full
    # target and compare against the uninterrupted run per cell.
    diverged: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="wdm-bench-adaptive-") as tmp:
        cache = ResultCache(tmp)
        partial = dict(
            config,
            precision=PrecisionConfig(
                half_width=0.01, min_rounds=2, max_rounds=2
            ),
        )
        with routing_kernel("batched"):
            adaptive_sweep(n, r, k, m_values, cache=cache, **partial)
            resumed = adaptive_sweep(n, r, k, m_values, cache=cache, **config)
    for cell, estimate in zip(cells, resumed):
        if (estimate.m, estimate.attempts, estimate.blocked) != cell[:3]:
            diverged.append(
                {
                    "m": estimate.m,
                    "uninterrupted": cell[:3],
                    "resumed": (estimate.m, estimate.attempts, estimate.blocked),
                }
            )
    # The matched-precision claim only holds if every cell actually met
    # the target (the resumed estimates are bit-identical to the timed
    # run's cells when nothing diverged).
    within_target = all(
        e.half_width(precision.level) <= precision.half_width for e in resumed
    )

    return {
        "config": {
            "n": n, "r": r, "k": k, "x": x, "m_values": m_values,
            "steps": steps, "half_width": precision.half_width,
            "level": precision.level,
        },
        "rounds_per_m": rounds,
        "replications_per_round": precision.replications_per_round(),
        "adaptive_events": adaptive_events,
        "fixed_events_at_matched_precision": fixed_events,
        "adaptive_s": adaptive_s,
        "all_converged": converged,
        "diverged_cells": diverged,
        "min_speedup": 2.0,
        "speedup": fixed_events / adaptive_events,
        "identical": converged and not diverged and within_target,
    }


def bench_parallel(quick: bool, reps: int, jobs: int | str) -> dict:
    m_values = [2, 5, 8, 11, 14]
    traffic = _grid_traffic(quick)

    def run(n_jobs):
        return _estimate_key(
            api.sweep(
                4, 4, 2, m_values,
                traffic=traffic,
                execution=api.ExecConfig(jobs=n_jobs),
            )
        )

    serial_s, serial_out = _best(lambda: run(1), reps)
    parallel_s, parallel_out = _best(lambda: run(jobs), reps)
    plan = last_plan()
    fallback_serial = plan is not None and plan.executor == "serial"
    # When the adaptive executor resolved the "parallel" run to the very
    # same inline serial path (e.g. a single effective CPU), the two
    # timings measure identical code and any ratio is pure noise -- the
    # speedup is 1.0 by construction and reported as such, with the
    # measured times and the fallback reason kept alongside.
    speedup = 1.0 if fallback_serial else serial_s / parallel_s
    return {
        "config": {
            "n": 4, "r": 4, "k": 2, "m_values": m_values,
            "steps": traffic.steps, "seeds": traffic.seeds,
        },
        "jobs": jobs,
        "plan": plan.as_dict() if plan is not None else None,
        "fallback_serial": fallback_serial,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "identical": serial_out == parallel_out,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke run)"
    )
    parser.add_argument(
        "--jobs",
        type=lambda v: v if v == "auto" else int(v),
        default="auto",
        help='workers for the parallel section ("auto" adapts to the host)',
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="timing repetitions per section"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--sections",
        type=lambda v: tuple(v.split(",")),
        default=None,
        help="comma-separated subset of sections to run (default: all)",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.quick else 5)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "effective_cpus": resolve_jobs(0),
            "quick": args.quick,
            "reps": reps,
        }
    }
    sections = [
        ("cover_kernel", lambda: bench_cover_kernel(args.quick, reps)),
        ("engine", lambda: bench_engine(args.quick, reps)),
        ("routing_replay", lambda: bench_routing_replay(args.quick, reps)),
        ("end_to_end", lambda: bench_end_to_end(args.quick, reps)),
        ("batched", lambda: bench_batched(args.quick, reps)),
        ("fused", lambda: bench_fused(args.quick, reps)),
        ("wide", lambda: bench_wide(args.quick, reps)),
        ("workloads", lambda: bench_workloads(args.quick, reps)),
        ("topology", lambda: bench_topology(args.quick, reps)),
        ("exact_search", lambda: bench_exact_search(args.quick, reps)),
        ("cache", lambda: bench_cache(args.quick, reps)),
        ("adaptive", lambda: bench_adaptive(args.quick, reps)),
        ("parallel", lambda: bench_parallel(args.quick, reps, args.jobs)),
        ("obs", lambda: bench_obs(args.quick, reps)),
    ]
    if args.sections is not None:
        known = {name for name, _ in sections}
        unknown = set(args.sections) - known
        if unknown:
            parser.error(f"unknown sections: {', '.join(sorted(unknown))}")
        sections = [
            (name, section)
            for name, section in sections
            if name in args.sections
        ]
    failures = []
    for name, section in sections:
        result = section()
        report[name] = result
        flag = "ok" if result["identical"] else "DIVERGED"
        print(f"{name:15s} speedup {result['speedup']:5.2f}x  [{flag}]")
        if not result["identical"]:
            failures.append(name)

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failures:
        print(f"FAIL: fast path diverged from reference in: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
