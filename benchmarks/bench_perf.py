"""Performance benchmark for the routing kernel and the sweep engine.

Four sections, each asserting that the fast path computes *exactly*
what the slow path computes before reporting any speedup:

* ``cover_kernel`` -- the bitmask cover search
  (:func:`repro.multistage.routing.find_cover_bits`) against the
  frozenset reference on randomized cover instances;
* ``routing_replay`` -- a pregenerated traffic trace replayed through
  :class:`repro.multistage.network.ThreeStageNetwork` under each
  routing kernel, isolating the connect/disconnect hot path from the
  (kernel-independent) traffic generator;
* ``end_to_end`` -- :func:`repro.analysis.montecarlo.blocking_vs_m` on
  the n=4, r=4, k=2 grid under each kernel, traffic generation
  included;
* ``parallel`` -- the same sweep at ``jobs=1`` vs ``jobs=N`` through
  :class:`repro.perf.ParallelSweeper`.  The speedup is bounded by the
  host's effective CPU count (recorded in the output); the
  bit-identity of the merged results is asserted regardless.

Run as a script (``python benchmarks/bench_perf.py [--quick]``); writes
``BENCH_perf.json`` and exits nonzero if any fast path diverges from
its reference.  ``--quick`` shrinks the workloads for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

from repro.analysis.montecarlo import blocking_vs_m
from repro.core.models import Construction, MulticastModel
from repro.multistage.network import ThreeStageNetwork
from repro.multistage.routing import (
    find_cover_bits,
    find_cover_reference,
    mask_of,
    routing_kernel,
)
from repro.perf.sweeper import resolve_jobs
from repro.switching.generators import dynamic_traffic


def _best(fn, reps: int) -> tuple[float, object]:
    """Best-of-``reps`` wall time of ``fn()`` plus its (stable) result."""
    value = fn()
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        again = fn()
        times.append(time.perf_counter() - start)
        if again != value:
            raise AssertionError("benchmark workload is not deterministic")
    return min(times), value


# -- section 1: cover-search kernel -----------------------------------------


def _cover_instances(count: int, labels: int, middles: int, seed: int):
    rng = random.Random(seed)
    instances = []
    for _ in range(count):
        destinations = frozenset(rng.sample(range(labels), rng.randint(4, labels)))
        coverable = {
            j: frozenset(p for p in destinations if rng.random() < 0.55)
            for j in range(middles)
        }
        instances.append((destinations, coverable, rng.randint(2, 4)))
    return instances


def bench_cover_kernel(quick: bool, reps: int) -> dict:
    instances = _cover_instances(
        count=100 if quick else 400, labels=24, middles=14, seed=7
    )
    masked = [
        (mask_of(destinations), {j: mask_of(s) for j, s in coverable.items()}, x)
        for destinations, coverable, x in instances
    ]

    def decode(cover_bits):
        if cover_bits is None:
            return None
        out = {}
        for j, bits in cover_bits.items():
            modules = []
            while bits:
                low = bits & -bits
                modules.append(low.bit_length() - 1)
                bits ^= low
            out[j] = modules
        return out

    def run_bits():
        return [
            decode(find_cover_bits(dest_mask, coverable, x))
            for dest_mask, coverable, x in masked
        ]

    def run_reference():
        return [
            find_cover_reference(destinations, coverable, x)
            for destinations, coverable, x in instances
        ]

    bitmask_s, bits_out = _best(run_bits, reps)
    reference_s, reference_out = _best(run_reference, reps)
    return {
        "instances": len(instances),
        "reference_s": reference_s,
        "bitmask_s": bitmask_s,
        "speedup": reference_s / bitmask_s,
        "identical": bits_out == reference_out,
    }


# -- section 2: routing replay ----------------------------------------------


def _replay(events, n, r, m, k, x) -> int:
    net = ThreeStageNetwork(
        n,
        r,
        m,
        k,
        construction=Construction.MSW_DOMINANT,
        model=MulticastModel.MSW,
        x=x,
    )
    live: dict[int, int] = {}
    dropped: set[int] = set()
    blocked = 0
    for event in events:
        if event.kind == "setup":
            connection_id = net.try_connect(event.connection)
            if connection_id is None:
                blocked += 1
                dropped.add(event.connection_id)
            else:
                live[event.connection_id] = connection_id
        else:
            if event.connection_id in dropped:
                dropped.discard(event.connection_id)
                continue
            net.disconnect(live.pop(event.connection_id))
    return blocked


def bench_routing_replay(quick: bool, reps: int) -> dict:
    n, r, k, x = 4, 4, 2, 2
    steps = 1000 if quick else 4000
    events = list(
        dynamic_traffic(MulticastModel.MSW, n * r, k, steps=steps, seed=0)
    )
    m_values = [2, 4, 6]
    cells = []
    reference_total = 0.0
    bitmask_total = 0.0
    identical = True
    for m in m_values:
        with routing_kernel("reference"):
            reference_s, reference_blocked = _best(
                lambda: _replay(events, n, r, m, k, x), reps
            )
        with routing_kernel("bitmask"):
            bitmask_s, bitmask_blocked = _best(
                lambda: _replay(events, n, r, m, k, x), reps
            )
        identical = identical and reference_blocked == bitmask_blocked
        reference_total += reference_s
        bitmask_total += bitmask_s
        cells.append(
            {
                "m": m,
                "reference_s": reference_s,
                "bitmask_s": bitmask_s,
                "speedup": reference_s / bitmask_s,
                "blocked": bitmask_blocked,
            }
        )
    return {
        "config": {"n": n, "r": r, "k": k, "x": x, "steps": steps},
        "cells": cells,
        "reference_s": reference_total,
        "bitmask_s": bitmask_total,
        "speedup": reference_total / bitmask_total,
        "identical": identical,
    }


# -- sections 3 and 4: end-to-end sweep, serial vs parallel ------------------


def _grid_kwargs(quick: bool) -> dict:
    return dict(
        steps=400 if quick else 1500,
        seeds=(0, 1) if quick else (0, 1, 2),
    )


def _estimate_key(estimates) -> list[tuple[int, int, int]]:
    return [(e.m, e.attempts, e.blocked) for e in estimates]


def bench_end_to_end(quick: bool, reps: int) -> dict:
    m_values = [2, 5, 8, 11, 14]
    kwargs = _grid_kwargs(quick)

    def run(kernel):
        with routing_kernel(kernel):
            return _estimate_key(blocking_vs_m(4, 4, 2, m_values, **kwargs))

    reference_s, reference_out = _best(lambda: run("reference"), reps)
    bitmask_s, bitmask_out = _best(lambda: run("bitmask"), reps)
    return {
        "config": {"n": 4, "r": 4, "k": 2, "m_values": m_values, **kwargs},
        "reference_s": reference_s,
        "bitmask_s": bitmask_s,
        "speedup": reference_s / bitmask_s,
        "identical": reference_out == bitmask_out,
    }


def bench_parallel(quick: bool, reps: int, jobs: int) -> dict:
    m_values = [2, 5, 8, 11, 14]
    kwargs = _grid_kwargs(quick)

    def run(n_jobs):
        return _estimate_key(
            blocking_vs_m(4, 4, 2, m_values, jobs=n_jobs, **kwargs)
        )

    serial_s, serial_out = _best(lambda: run(1), reps)
    parallel_s, parallel_out = _best(lambda: run(jobs), reps)
    return {
        "config": {"n": 4, "r": 4, "k": 2, "m_values": m_values, **kwargs},
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "identical": serial_out == parallel_out,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke run)"
    )
    parser.add_argument(
        "--jobs", type=int, default=4, help="workers for the parallel section"
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="timing repetitions per section"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.quick else 5)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "effective_cpus": resolve_jobs(0),
            "quick": args.quick,
            "reps": reps,
        }
    }
    sections = [
        ("cover_kernel", lambda: bench_cover_kernel(args.quick, reps)),
        ("routing_replay", lambda: bench_routing_replay(args.quick, reps)),
        ("end_to_end", lambda: bench_end_to_end(args.quick, reps)),
        ("parallel", lambda: bench_parallel(args.quick, reps, args.jobs)),
    ]
    failures = []
    for name, section in sections:
        result = section()
        report[name] = result
        flag = "ok" if result["identical"] else "DIVERGED"
        print(f"{name:15s} speedup {result['speedup']:5.2f}x  [{flag}]")
        if not result["identical"]:
            failures.append(name)

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failures:
        print(f"FAIL: fast path diverged from reference in: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
