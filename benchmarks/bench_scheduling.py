"""Experiment X13: WDM concurrency vs electronic scheduling rounds.

The paper's Section 1 motivation, in numbers: batches of multicast
demands with overlapping destinations need serial rounds on an
electronic switch (conflict-graph coloring) but compress by up to
``k``-fold on a k-wavelength WDM switch whose nodes carry k
transmitters/receivers.
"""

from __future__ import annotations

import pytest

from repro.scheduling.demands import random_demand_batch, video_fanout_batch
from repro.scheduling.electronic import electronic_rounds, exact_chromatic_rounds
from repro.scheduling.wdm import load_lower_bound, wdm_rounds


def test_round_compression_random_batches(benchmark):
    batches = [random_demand_batch(16, 40, seed=seed) for seed in range(5)]

    def schedule_all():
        rows = []
        for demands in batches:
            electronic, _ = electronic_rounds(demands)
            per_k = {k: wdm_rounds(demands, k)[0] for k in (1, 2, 4, 8)}
            rows.append((electronic, per_k))
        return rows

    rows = benchmark(schedule_all)
    print()
    print("rounds: electronic vs WDM (16 nodes, 40 demands, 5 batches):")
    totals = {k: 0 for k in (1, 2, 4, 8)}
    electronic_total = 0
    for electronic, per_k in rows:
        electronic_total += electronic
        for k, rounds in per_k.items():
            totals[k] += rounds
            assert rounds <= electronic  # WDM never loses
    for k, total in totals.items():
        print(f"  k={k}: {total} rounds total vs {electronic_total} electronic "
              f"({electronic_total / total:.2f}x compression)")
    assert totals[8] < totals[1]


def test_vod_batch_compression(benchmark):
    """The overlapped-audience regime where WDM helps most."""
    demands = video_fanout_batch(32, 16, seed=3)

    def schedule():
        return (
            electronic_rounds(demands)[0],
            {k: wdm_rounds(demands, k)[0] for k in (1, 2, 4)},
        )

    electronic, per_k = benchmark(schedule)
    print()
    print(f"VoD batch (32 nodes, 16 channels): electronic={electronic} rounds; "
          + "  ".join(f"k={k}: {r}" for k, r in per_k.items()))
    assert per_k[4] < electronic
    # Quality: within 2x of the information-theoretic load bound.
    for k, rounds in per_k.items():
        assert rounds <= max(1, 2 * load_lower_bound(demands, k)) + 1


@pytest.mark.parametrize("seed", [0, 1])
def test_greedy_vs_exact_coloring(benchmark, seed):
    demands = random_demand_batch(6, 10, seed=seed)

    def both():
        return electronic_rounds(demands)[0], exact_chromatic_rounds(demands)

    greedy, exact = benchmark(both)
    assert exact is not None and exact <= greedy
    print()
    print(f"  seed {seed}: greedy {greedy} rounds, exact chromatic {exact}")
