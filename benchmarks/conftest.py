"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one of the paper's artifacts (tables, figures,
or the design-space curves the text argues verbally), asserts the
qualitative shape the paper claims, and times the computation that
produces it.  The printed artifacts are collected into
``EXPERIMENTS.md``.
"""

from __future__ import annotations
