"""Experiment X6: the Theorem-1 gap and the corrected model-aware bound.

A reproduction *finding*, not a paper artifact: Theorem 1's
"ignore other wavelengths" reduction undercounts output-side
interference when the network model is MSDW or MAW with k > 1.  The
benchmark executes the counterexample at the paper's minimum, verifies
the corrected bound ``m > (n-1)x + (nk-1) r^{1/x}`` routes the same
attack, and quantifies the consequence for the Section 3.4
construction comparison.
"""

from __future__ import annotations

import pytest

from repro.core.corrected import CorrectedBound, min_middle_switches_corrected
from repro.core.models import Construction, MulticastModel
from repro.core.multistage import min_middle_switches_msw_dominant, multistage_cost
from repro.multistage.adversary import demonstrate_theorem1_gap

CONFIGS = [(2, 3, 2), (3, 4, 2), (2, 3, 3)]


@pytest.mark.parametrize("n,r,k", CONFIGS, ids=lambda v: str(v))
def test_gap_demonstration(benchmark, n, r, k):
    result = benchmark(demonstrate_theorem1_gap, n, r, k, MulticastModel.MAW)
    assert result.blocked_at_paper_bound
    assert result.routed_at_corrected_bound
    print()
    print(
        f"  v(n={n}, r={r}, m, k={k}) MAW model, MSW-dominant, x=1: "
        f"paper m_min={result.m_paper} -> BLOCKED; "
        f"corrected m_min={result.m_corrected} -> routed"
    )


def test_gap_size_scaling(benchmark):
    """How far apart the paper and corrected minima drift with k."""

    def sweep():
        rows = []
        for k in (1, 2, 4, 8):
            paper = min_middle_switches_msw_dominant(8, 16, k)
            corrected = min_middle_switches_corrected(
                8, 16, k, Construction.MSW_DOMINANT, MulticastModel.MAW
            )
            rows.append((k, paper, corrected))
        return rows

    rows = benchmark(sweep)
    print()
    print("paper vs corrected m_min (n=8, r=16, MSW-dominant, MAW model):")
    for k, paper, corrected in rows:
        print(f"  k={k}: paper={paper:4d}  corrected={corrected:4d}  "
              f"ratio={corrected / paper:.2f}")
    assert rows[0][1] == rows[0][2]  # k=1: no gap
    assert all(corrected > paper for k, paper, corrected in rows[1:])


def test_construction_comparison_revisited(benchmark):
    """Section 3.4 said MSW-dominant always wins.  With the corrected
    bound, MAW-dominant needs fewer middles for MAW-model networks; the
    total-crosspoint comparison becomes a real trade-off."""

    def compare():
        rows = []
        for n, r, k in [(8, 8, 2), (8, 8, 4), (16, 16, 4)]:
            msw_bound = CorrectedBound.compute(
                n, r, k, Construction.MSW_DOMINANT, MulticastModel.MAW
            )
            maw_bound = CorrectedBound.compute(
                n, r, k, Construction.MAW_DOMINANT, MulticastModel.MAW
            )
            msw_cost = multistage_cost(
                n, r, msw_bound.m_min, k,
                Construction.MSW_DOMINANT, MulticastModel.MAW,
            )
            maw_cost = multistage_cost(
                n, r, maw_bound.m_min, k,
                Construction.MAW_DOMINANT, MulticastModel.MAW,
            )
            rows.append((n, r, k, msw_bound.m_min, maw_bound.m_min,
                         msw_cost.crosspoints, maw_cost.crosspoints))
        return rows

    rows = benchmark(compare)
    print()
    print("corrected middle counts & crosspoints, MAW-model networks:")
    for n, r, k, m_msw, m_maw, cp_msw, cp_maw in rows:
        print(
            f"  n={n} r={r} k={k}: MSW-dominant m={m_msw} ({cp_msw} gates); "
            f"MAW-dominant m={m_maw} ({cp_maw} gates)"
        )
        # Fewer middles for MAW-dominant...
        assert m_maw <= m_msw
