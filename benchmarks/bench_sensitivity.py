"""Experiment X12: aspect-ratio sensitivity of the three-stage design.

Section 3.4 assumes n = r = sqrt(N).  How much does the split actually
matter at finite sizes?  The study sweeps every factorization and
reports the crosspoint penalty relative to the optimum.
"""

from __future__ import annotations

from repro.analysis.sensitivity import aspect_ratio_study, nearest_square_point
from repro.core.models import MulticastModel


def test_aspect_ratio_curve(benchmark):
    points = benchmark(aspect_ratio_study, 1024, 4, MulticastModel.MAW)
    best = min(p.crosspoints for p in points)
    print()
    print("v(n, r, m_min, 4) crosspoints by factorization of N=1024 (MAW):")
    for point in points:
        penalty = point.crosspoints / best
        marker = "  <-- optimum" if point.crosspoints == best else ""
        print(
            f"  n={point.n:4d} r={point.r:4d} (m={point.m:4d}, x={point.x}): "
            f"{point.crosspoints:>12,} gates  ({penalty:4.2f}x){marker}"
        )
    square = nearest_square_point(points)
    print(f"  paper's square split n=r=32: {square.crosspoints:,} gates "
          f"({square.crosspoints / best:.2f}x of optimum)")
    # The square split is competitive; the extremes are not.
    assert square.crosspoints <= 2 * best
    assert points[0].crosspoints > best or points[-1].crosspoints > best


def test_sensitivity_across_sizes(benchmark):
    def sweep():
        rows = []
        for n_ports in (64, 256, 1024, 4096):
            points = aspect_ratio_study(n_ports, 2)
            best = min(p.crosspoints for p in points)
            square = nearest_square_point(points)
            rows.append((n_ports, square.crosspoints / best))
        return rows

    rows = benchmark(sweep)
    print()
    print("square-split penalty vs optimum (MSW, k=2):")
    for n_ports, penalty in rows:
        print(f"  N={n_ports:5d}: {penalty:.3f}x")
        assert penalty < 2.0
