"""Tests for Theorems 1-2: nonblocking conditions and cost (Section 3)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.models import Construction, MulticastModel
from repro.core.multistage import (
    MultistageDesign,
    NonblockingBound,
    is_nonblocking,
    is_nonblocking_maw_dominant,
    is_nonblocking_msw_dominant,
    max_available_needed,
    min_middle_switches,
    min_middle_switches_maw_dominant,
    min_middle_switches_msw_dominant,
    module_converters,
    module_crosspoints,
    multistage_cost,
    optimal_design,
    unavailable_middle_bound,
    valid_x_range,
    yang_masson_m,
    yang_masson_x,
)

topologies = st.tuples(
    st.integers(2, 12), st.integers(2, 40), st.integers(1, 8)
)


class TestValidXRange:
    def test_paper_range(self):
        assert list(valid_x_range(5, 3)) == [1, 2, 3]
        assert list(valid_x_range(3, 10)) == [1, 2]

    def test_degenerate_n1_keeps_x1(self):
        assert list(valid_x_range(1, 5)) == [1]


class TestTheorem1:
    @given(topologies, st.integers(1, 6))
    def test_exact_predicate_matches_float_formula(self, nrk, x):
        """(m - (n-1)x)^x > r (n-1)^x  <=>  m > (n-1)(x + r^(1/x))."""
        n, r, k = nrk
        if x not in valid_x_range(n, r):
            return
        bound = (n - 1) * (x + r ** (1.0 / x))
        for m in range(1, int(bound) + 4):
            exact = is_nonblocking_msw_dominant(m, n, r, k, x)
            # Guard against float round-off exactly at the boundary.
            if abs(m - bound) > 1e-9:
                assert exact == (m > bound), (m, n, r, k, x, bound)

    @given(topologies)
    def test_min_m_is_minimal(self, nrk):
        n, r, k = nrk
        for x in valid_x_range(n, r):
            m_min = min_middle_switches_msw_dominant(n, r, k, x=x)
            assert is_nonblocking_msw_dominant(m_min, n, r, k, x)
            assert not is_nonblocking_msw_dominant(m_min - 1, n, r, k, x)

    @given(topologies)
    def test_min_over_x(self, nrk):
        n, r, k = nrk
        overall = min_middle_switches_msw_dominant(n, r, k)
        per_x = [
            min_middle_switches_msw_dominant(n, r, k, x=x)
            for x in valid_x_range(n, r)
        ]
        assert overall == min(per_x)

    @given(topologies, st.integers(1, 200))
    def test_monotone_in_m(self, nrk, m):
        """Nonblocking at m implies nonblocking at m+1."""
        n, r, k = nrk
        if is_nonblocking_msw_dominant(m, n, r, k):
            assert is_nonblocking_msw_dominant(m + 1, n, r, k)

    def test_bound_independent_of_k(self):
        assert min_middle_switches_msw_dominant(
            4, 9, 1
        ) == min_middle_switches_msw_dominant(4, 9, 7)

    def test_x1_closed_form(self):
        """x=1: m > (n-1)(1 + r), the classic multicast Clos bound."""
        for n, r in [(2, 2), (3, 5), (4, 7)]:
            assert min_middle_switches_msw_dominant(n, r, 1, x=1) == (n - 1) * (
                1 + r
            ) + 1

    def test_degenerate_n1(self):
        assert min_middle_switches_msw_dominant(1, 5, 2) == 1


class TestTheorem2:
    @given(topologies, st.integers(1, 6))
    def test_exact_predicate_matches_float_formula(self, nrk, x):
        n, r, k = nrk
        if x not in valid_x_range(n, r):
            return
        bound = ((n * k - 1) * x) // k + (n - 1) * r ** (1.0 / x)
        for m in range(1, int(bound) + 4):
            exact = is_nonblocking_maw_dominant(m, n, r, k, x)
            if abs(m - bound) > 1e-9:
                assert exact == (m > bound)

    @given(topologies)
    def test_k1_reduces_to_theorem1(self, nrk):
        """The paper's consistency requirement: Thm 2 at k=1 is Thm 1."""
        n, r, _ = nrk
        for x in valid_x_range(n, r):
            assert min_middle_switches_maw_dominant(
                n, r, 1, x=x
            ) == min_middle_switches_msw_dominant(n, r, 1, x=x)

    @given(topologies)
    def test_maw_dominant_needs_at_least_msw_dominant(self, nrk):
        """Section 3.4: MAW-dominant m is never smaller, per fixed x."""
        n, r, k = nrk
        for x in valid_x_range(n, r):
            assert min_middle_switches_maw_dominant(
                n, r, k, x=x
            ) >= min_middle_switches_msw_dominant(n, r, k, x=x)

    @given(topologies)
    def test_min_m_is_minimal(self, nrk):
        n, r, k = nrk
        for x in valid_x_range(n, r):
            m_min = min_middle_switches_maw_dominant(n, r, k, x=x)
            assert is_nonblocking_maw_dominant(m_min, n, r, k, x)
            assert not is_nonblocking_maw_dominant(m_min - 1, n, r, k, x)


class TestHelpers:
    def test_unavailable_bounds(self):
        assert unavailable_middle_bound(4, 1, 2, Construction.MSW_DOMINANT) == 6
        # floor((4*3 - 1) * 2 / 3) = floor(22/3) = 7
        assert unavailable_middle_bound(4, 3, 2, Construction.MAW_DOMINANT) == 7

    @given(st.integers(2, 12), st.integers(2, 40), st.integers(1, 6))
    def test_max_available_needed_is_lemma5_ceiling(self, n, r, x):
        if x not in valid_x_range(n, r):
            return
        bound = max_available_needed(n, r, x)
        # bound is the floor of (n-1) r^(1/x); one more always suffices.
        assert bound <= (n - 1) * r ** (1.0 / x) + 1e-9
        assert bound + 1 > (n - 1) * r ** (1.0 / x) - 1e-9

    def test_dispatcher(self, construction):
        assert min_middle_switches(3, 4, 2, construction) >= 1
        m = min_middle_switches(3, 4, 2, construction)
        assert is_nonblocking(m, 3, 4, 2, construction)

    def test_nonblocking_bound_profile(self, construction):
        bound = NonblockingBound.compute(4, 9, 2, construction)
        xs = [x for x, _ in bound.per_x]
        assert xs == list(valid_x_range(4, 9))
        assert bound.m_min == min(m for _, m in bound.per_x)
        assert (bound.best_x, bound.m_min) in bound.per_x


class TestYangMassonClosedForm:
    def test_rejects_small_r(self):
        with pytest.raises(ValueError):
            yang_masson_x(8)
        with pytest.raises(ValueError):
            yang_masson_m(3, 15)

    @given(st.integers(16, 4000))
    def test_x_formula(self, r):
        assert yang_masson_x(r) == pytest.approx(
            2 * math.log(r) / math.log(math.log(r))
        )

    @given(st.integers(16, 512))
    def test_discrete_min_close_to_closed_form(self, s):
        """With n = r (the paper's Section 3.4 choice), the exact discrete
        optimum tracks 3(n-1) log r / log log r from below.

        (For small n the closed form does not apply: x is capped at
        n - 1, so the analytic x = 2 log r / log log r is infeasible.)
        """
        discrete = min_middle_switches_msw_dominant(s, s)
        closed = yang_masson_m(s, s)
        assert 0.3 * closed <= discrete <= 1.2 * closed


class TestModuleCost:
    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 6))
    def test_crosspoints(self, a, b, k):
        assert module_crosspoints(MulticastModel.MSW, a, b, k) == k * a * b
        assert module_crosspoints(MulticastModel.MSDW, a, b, k) == k * k * a * b
        assert module_crosspoints(MulticastModel.MAW, a, b, k) == k * k * a * b

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 6))
    def test_converters(self, a, b, k):
        assert module_converters(MulticastModel.MSW, a, b, k) == 0
        assert module_converters(MulticastModel.MSDW, a, b, k) == a * k
        assert module_converters(MulticastModel.MAW, a, b, k) == b * k


class TestMultistageCost:
    @given(
        st.integers(1, 10), st.integers(1, 10), st.integers(1, 30), st.integers(1, 5)
    )
    def test_msw_identity(self, n, r, m, k):
        """Section 3.4: total = k m r (2n + r) for all-MSW."""
        cost = multistage_cost(n, r, m, k)
        assert cost.crosspoints == k * m * r * (2 * n + r)
        assert cost.converters == 0

    @given(
        st.integers(1, 10), st.integers(1, 10), st.integers(1, 30), st.integers(1, 5)
    )
    def test_msdw_maw_identity(self, n, r, m, k):
        """Section 3.4: total = k m r ((k+1) n + r) for MSDW/MAW output."""
        for model in (MulticastModel.MSDW, MulticastModel.MAW):
            cost = multistage_cost(n, r, m, k, output_model=model)
            assert cost.crosspoints == k * m * r * ((k + 1) * n + r)
        # Converter placement: MSDW on the m side, MAW on the n side.
        msdw = multistage_cost(n, r, m, k, output_model=MulticastModel.MSDW)
        maw = multistage_cost(n, r, m, k, output_model=MulticastModel.MAW)
        assert msdw.converters == r * m * k
        assert maw.converters == r * n * k

    def test_msdw_more_converters_than_maw_when_m_exceeds_n(self):
        """The paper's observation: MSDW/MS needs more converters (m > n)."""
        msdw = multistage_cost(4, 4, 12, 2, output_model=MulticastModel.MSDW)
        maw = multistage_cost(4, 4, 12, 2, output_model=MulticastModel.MAW)
        assert msdw.converters > maw.converters

    def test_maw_dominant_costs_more(self, model):
        msw_dom = multistage_cost(
            4, 4, 12, 2, Construction.MSW_DOMINANT, model
        )
        maw_dom = multistage_cost(
            4, 4, 12, 2, Construction.MAW_DOMINANT, model
        )
        assert maw_dom.crosspoints > msw_dom.crosspoints
        assert maw_dom.converters >= msw_dom.converters

    def test_stage_breakdown_sums(self):
        cost = multistage_cost(3, 5, 9, 2, output_model=MulticastModel.MAW)
        assert cost.crosspoints == (
            cost.input_stage.crosspoints
            + cost.middle_stage.crosspoints
            + cost.output_stage.crosspoints
        )
        assert cost.n_ports == 15

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            multistage_cost(0, 2, 3, 1)
        with pytest.raises(ValueError):
            multistage_cost(2, 2, 0, 1)


class TestOptimalDesign:
    def test_respects_factorization(self):
        design = optimal_design(64, 2)
        assert design.n * design.r == 64
        assert design.n > 1 and design.r > 1

    def test_design_is_nonblocking(self, construction, model):
        design = optimal_design(36, 2, model, construction)
        assert is_nonblocking(
            design.m, design.n, design.r, design.k, construction, design.x
        )

    def test_beats_or_matches_any_explicit_choice(self):
        design = optimal_design(64, 3)
        for n in (2, 4, 8, 16, 32):
            r = 64 // n
            for x in valid_x_range(n, r):
                m = min_middle_switches_msw_dominant(n, r, 3, x=x)
                other = multistage_cost(n, r, m, 3)
                assert design.cost.crosspoints <= other.crosspoints

    def test_prime_sizes_fall_back_to_degenerate(self):
        design = optimal_design(7, 2)
        assert design.n * design.r == 7

    def test_large_n_multistage_beats_crossbar(self):
        design = optimal_design(1024, 2)
        assert design.cost.crosspoints < 2 * 1024 * 1024

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            optimal_design(1, 2)

    def test_design_dataclass_fields(self):
        design = optimal_design(16, 2)
        assert isinstance(design, MultistageDesign)
        assert design.n_ports == 16
        assert design.cost.n == design.n


class TestMSDWConverterPlacement:
    """Section 3.4's optimized MSDW converter placement."""

    def test_internal_placement_matches_maw(self):
        default = multistage_cost(4, 4, 12, 2, output_model=MulticastModel.MSDW)
        internal = multistage_cost(
            4, 4, 12, 2,
            output_model=MulticastModel.MSDW,
            msdw_internal_placement=True,
        )
        maw = multistage_cost(4, 4, 12, 2, output_model=MulticastModel.MAW)
        assert internal.converters == maw.converters == 4 * 4 * 2
        assert default.converters == 4 * 12 * 2
        # Crosspoints are unaffected by converter placement.
        assert internal.crosspoints == default.crosspoints

    def test_flag_is_noop_for_other_models(self):
        for model in (MulticastModel.MSW, MulticastModel.MAW):
            assert multistage_cost(
                3, 3, 8, 2, output_model=model, msdw_internal_placement=True
            ).converters == multistage_cost(
                3, 3, 8, 2, output_model=model
            ).converters
