"""Tests for the crossbar cost formulas (Table 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cost import (
    CrossbarCost,
    crossbar_converters,
    crossbar_cost,
    crossbar_crosspoints,
)
from repro.core.models import MulticastModel


class TestCrosspoints:
    @given(st.integers(1, 64), st.integers(1, 16))
    def test_msw(self, n_ports: int, k: int):
        assert crossbar_crosspoints(MulticastModel.MSW, n_ports, k) == k * n_ports**2

    @given(st.integers(1, 64), st.integers(1, 16))
    def test_msdw_equals_maw(self, n_ports: int, k: int):
        msdw = crossbar_crosspoints(MulticastModel.MSDW, n_ports, k)
        maw = crossbar_crosspoints(MulticastModel.MAW, n_ports, k)
        assert msdw == maw == k**2 * n_ports**2

    @given(st.integers(1, 64))
    def test_k1_all_equal(self, n_ports: int):
        values = {
            crossbar_crosspoints(model, n_ports, 1) for model in MulticastModel
        }
        assert values == {n_ports**2}

    @given(st.integers(1, 32), st.integers(2, 8))
    def test_msw_cheaper_factor_k(self, n_ports: int, k: int):
        assert (
            crossbar_crosspoints(MulticastModel.MAW, n_ports, k)
            == k * crossbar_crosspoints(MulticastModel.MSW, n_ports, k)
        )


class TestConverters:
    @given(st.integers(1, 64), st.integers(1, 16))
    def test_counts(self, n_ports: int, k: int):
        assert crossbar_converters(MulticastModel.MSW, n_ports, k) == 0
        assert crossbar_converters(MulticastModel.MSDW, n_ports, k) == n_ports * k
        assert crossbar_converters(MulticastModel.MAW, n_ports, k) == n_ports * k


class TestInterfaces:
    def test_cost_object(self, model):
        cost = crossbar_cost(model, 8, 4)
        assert isinstance(cost, CrossbarCost)
        assert cost.crosspoints == crossbar_crosspoints(model, 8, 4)
        assert cost.converters == crossbar_converters(model, 8, 4)
        assert cost.n_ports == 8 and cost.k == 4

    def test_invalid_dimensions_rejected(self, model):
        with pytest.raises(ValueError):
            crossbar_crosspoints(model, 0, 2)
        with pytest.raises(ValueError):
            crossbar_converters(model, 2, -1)
