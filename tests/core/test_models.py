"""Tests for the multicast models and construction methods."""

from __future__ import annotations

import pytest

from repro.core.models import Construction, MulticastModel


class TestStrengthOrder:
    def test_strict_order(self):
        assert (
            MulticastModel.MSW.strength
            < MulticastModel.MSDW.strength
            < MulticastModel.MAW.strength
        )

    def test_is_at_least(self):
        assert MulticastModel.MAW.is_at_least(MulticastModel.MSW)
        assert MulticastModel.MAW.is_at_least(MulticastModel.MAW)
        assert not MulticastModel.MSW.is_at_least(MulticastModel.MSDW)

    def test_containment_of_admitted_connections(self, model):
        """Anything a model admits, every stronger model admits (Fig. 2)."""
        cases = [
            (0, [0, 0]),
            (0, [1, 1]),
            (0, [0, 1]),
            (2, [2]),
            (1, [0]),
        ]
        for stronger in MulticastModel:
            if not stronger.is_at_least(model):
                continue
            for source, dests in cases:
                if model.admits(source, dests):
                    assert stronger.admits(source, dests)


class TestAdmits:
    def test_msw_requires_same_everywhere(self):
        assert MulticastModel.MSW.admits(1, [1, 1, 1])
        assert not MulticastModel.MSW.admits(1, [1, 2])
        assert not MulticastModel.MSW.admits(1, [2, 2])

    def test_msdw_requires_same_destinations_only(self):
        assert MulticastModel.MSDW.admits(0, [2, 2])
        assert not MulticastModel.MSDW.admits(0, [1, 2])

    def test_maw_admits_anything(self):
        assert MulticastModel.MAW.admits(0, [3, 1, 2])

    def test_empty_destinations_rejected(self, model):
        assert not model.admits(0, [])


class TestConverterMetadata:
    def test_needs_converters(self):
        assert not MulticastModel.MSW.needs_converters
        assert MulticastModel.MSDW.needs_converters
        assert MulticastModel.MAW.needs_converters

    def test_converter_side(self):
        assert MulticastModel.MSW.converter_side is None
        assert MulticastModel.MSDW.converter_side == "input"
        assert MulticastModel.MAW.converter_side == "output"


class TestConstruction:
    def test_inner_models(self):
        assert Construction.MSW_DOMINANT.inner_model is MulticastModel.MSW
        assert Construction.MAW_DOMINANT.inner_model is MulticastModel.MAW

    @pytest.mark.parametrize("construction", list(Construction))
    def test_str(self, construction):
        assert "dominant" in str(construction)


class TestParseHelpers:
    """The single home of string -> enum coercion (used by the CLI, the
    multistage serializer and the Monte-Carlo cache loader alike)."""

    def test_parse_model_accepts_all_spellings(self):
        from repro.core.models import parse_multicast_model

        for model in MulticastModel:
            assert parse_multicast_model(model) is model
            assert parse_multicast_model(model.name) is model
            assert parse_multicast_model(model.value.lower()) is model

    def test_parse_model_unknown_lists_names(self):
        from repro.core.models import parse_multicast_model

        with pytest.raises(ValueError, match="choose from: MSW, MSDW, MAW"):
            parse_multicast_model("broadcast")

    def test_parse_construction_accepts_all_spellings(self):
        from repro.core.models import parse_construction

        for construction in Construction:
            assert parse_construction(construction) is construction
            assert parse_construction(construction.name) is construction
            assert parse_construction(construction.name.lower()) is construction
            assert parse_construction(construction.value) is construction
            assert parse_construction(construction.value.upper()) is construction
        assert parse_construction("msw") is Construction.MSW_DOMINANT
        assert parse_construction("MAW") is Construction.MAW_DOMINANT

    def test_parse_construction_unknown_lists_names(self):
        from repro.core.models import parse_construction

        with pytest.raises(
            ValueError, match="choose from: MSW_DOMINANT, MAW_DOMINANT"
        ):
            parse_construction("clos")
