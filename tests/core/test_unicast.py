"""Tests for the unicast (classical Clos) specialization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.models import Construction, MulticastModel
from repro.core.unicast import clos_unicast_minimum, is_nonblocking_unicast
from repro.multistage.network import ThreeStageNetwork
from repro.switching.generators import dynamic_traffic


class TestClosFormula:
    @given(st.integers(1, 50))
    def test_classical_2n_minus_1(self, n):
        """k=1: Clos (1953)."""
        assert clos_unicast_minimum(n) == 2 * n - 1

    @given(st.integers(1, 20), st.integers(1, 8))
    def test_msw_model_k_independent(self, n, k):
        assert clos_unicast_minimum(n, k) == 2 * n - 1

    @given(st.integers(1, 20), st.integers(2, 8))
    def test_gap_reaches_unicast(self, n, k):
        """MSW-dominant + MAW model: output side pays nk-1 even for unicast."""
        assert clos_unicast_minimum(
            n, k, Construction.MSW_DOMINANT, MulticastModel.MAW
        ) == (n - 1) + (n * k - 1) + 1

    @given(st.integers(1, 20), st.integers(1, 8))
    def test_maw_dominant_always_classical(self, n, k):
        for model in MulticastModel:
            assert clos_unicast_minimum(
                n, k, Construction.MAW_DOMINANT, model
            ) == 2 * n - 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            clos_unicast_minimum(0)

    def test_predicate(self):
        assert is_nonblocking_unicast(3, 2)
        assert not is_nonblocking_unicast(2, 2)

    @given(st.integers(2, 10), st.integers(1, 4))
    def test_never_exceeds_multicast_bound(self, n, k):
        """Unicast is a special case: its threshold is <= the multicast one."""
        from repro.core.corrected import min_middle_switches_corrected

        for model in MulticastModel:
            unicast = clos_unicast_minimum(
                n, k, Construction.MSW_DOMINANT, model
            )
            multicast = min_middle_switches_corrected(
                n, max(n + 1, 2), k, Construction.MSW_DOMINANT, model, x=1
            )
            assert unicast <= multicast


class TestAgainstModelChecker:
    @pytest.mark.parametrize("n,r", [(2, 2), (2, 3)])
    def test_exact_unicast_threshold_matches_clos(self, n, r):
        """The model checker independently recovers 2n-1."""
        from repro.multistage.exhaustive import exact_minimal_m

        result = exact_minimal_m(
            n, r, 1, x=1, m_max=6, state_budget=300_000, unicast_only=True
        )
        assert result.m_exact == clos_unicast_minimum(n)

    def test_blockable_at_2n_minus_2(self):
        from repro.multistage.exhaustive import is_blockable

        result = is_blockable(2, 2, 2, 1, x=1, unicast_only=True)
        assert result.blockable is True
        result.replay()


class TestAgainstSimulator:
    def test_unicast_fuzz_at_clos_bound(self):
        n, r, k = 3, 3, 2
        m = clos_unicast_minimum(n, k)
        net = ThreeStageNetwork(n, r, m, k, x=1)
        live = {}
        for event in dynamic_traffic(
            MulticastModel.MSW, n * r, k, steps=300, seed=5, max_fanout=1
        ):
            if event.kind == "setup":
                live[event.connection_id] = net.connect(event.connection)
            else:
                net.disconnect(live.pop(event.connection_id))
        assert net.blocks == 0
