"""Tests for the Table 2 asymptotic forms."""

from __future__ import annotations

import pytest

from repro.core.asymptotics import (
    crossbar_converters_asymptotic,
    crossbar_crosspoints_asymptotic,
    growth_factor,
    multistage_converters_asymptotic,
    multistage_crosspoints_asymptotic,
)
from repro.core.models import MulticastModel
from repro.core.multistage import optimal_design


class TestGuards:
    def test_small_n_rejected(self, model):
        with pytest.raises(ValueError):
            multistage_crosspoints_asymptotic(model, 128, 2)
        with pytest.raises(ValueError):
            multistage_converters_asymptotic(model, 100, 2)

    def test_bad_k_rejected(self, model):
        with pytest.raises(ValueError):
            multistage_crosspoints_asymptotic(model, 1024, 0)


class TestForms:
    def test_crossbar_forms_exact(self, model):
        assert crossbar_crosspoints_asymptotic(model, 512, 3) == (
            3 * 512**2 if model is MulticastModel.MSW else 9 * 512**2
        )
        assert crossbar_converters_asymptotic(model, 512, 3) == (
            0 if model is MulticastModel.MSW else 3 * 512
        )

    def test_msw_converters_zero(self):
        assert multistage_converters_asymptotic(MulticastModel.MSW, 1024, 4) == 0

    def test_maw_converters_exactly_kn(self):
        assert multistage_converters_asymptotic(MulticastModel.MAW, 1024, 4) == 4096

    def test_msdw_converters_carry_log_factor(self):
        """MSDW/MS converters grow faster than kN (the log factor)."""
        for n_ports in (1024, 4096, 16384):
            msdw = multistage_converters_asymptotic(
                MulticastModel.MSDW, n_ports, 4
            )
            assert msdw > 4 * n_ports

    def test_multistage_beats_crossbar_asymptotically(self, model):
        """The N^{3/2} log form must dip below N^2 for large N."""
        n_ports = 2**16
        assert multistage_crosspoints_asymptotic(
            model, n_ports, 4
        ) < crossbar_crosspoints_asymptotic(model, n_ports, 4)

    def test_growth_factor_increases(self):
        assert growth_factor(4096) > growth_factor(512)

    def test_msdw_maw_crosspoints_equal(self):
        assert multistage_crosspoints_asymptotic(
            MulticastModel.MSDW, 4096, 4
        ) == multistage_crosspoints_asymptotic(MulticastModel.MAW, 4096, 4)


class TestTracksExactDesign:
    @pytest.mark.parametrize("n_ports", [256, 1024, 4096])
    def test_same_order_of_magnitude(self, n_ports):
        """The exact optimized design stays within a small constant of the form."""
        exact = optimal_design(n_ports, 4).cost.crosspoints
        asymptotic = multistage_crosspoints_asymptotic(
            MulticastModel.MSW, n_ports, 4
        )
        ratio = exact / asymptotic
        assert 0.2 < ratio < 5.0
