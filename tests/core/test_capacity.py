"""Tests for the multicast capacity formulas (Lemmas 1-3).

The heavyweight check is the brute-force oracle: for every small
``(N, k)`` the closed forms must equal exhaustive assignment counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.integers import binomial, falling_factorial
from repro.combinatorics.stirling import stirling2
from repro.core.capacity import (
    CapacityResult,
    any_multicast_capacity,
    full_multicast_capacity,
    log10_any_multicast_capacity,
    log10_full_multicast_capacity,
    log10_int,
    multicast_capacity,
)
from repro.core.models import MulticastModel
from repro.switching.enumeration import count_assignments
from tests.conftest import ENUMERABLE_SIZES


class TestLemma1MSW:
    @given(st.integers(1, 8), st.integers(1, 5))
    def test_closed_forms(self, n_ports: int, k: int):
        assert full_multicast_capacity(
            MulticastModel.MSW, n_ports, k
        ) == n_ports ** (n_ports * k)
        assert any_multicast_capacity(MulticastModel.MSW, n_ports, k) == (
            n_ports + 1
        ) ** (n_ports * k)


class TestLemma2MAW:
    @given(st.integers(1, 6), st.integers(1, 4))
    def test_full_form(self, n_ports: int, k: int):
        expected = falling_factorial(n_ports * k, k) ** n_ports
        assert full_multicast_capacity(MulticastModel.MAW, n_ports, k) == expected

    @given(st.integers(1, 6), st.integers(1, 4))
    def test_any_form(self, n_ports: int, k: int):
        per_port = sum(
            falling_factorial(n_ports * k, k - j) * binomial(k, j)
            for j in range(k + 1)
        )
        assert (
            any_multicast_capacity(MulticastModel.MAW, n_ports, k)
            == per_port**n_ports
        )


class TestLemma3MSDW:
    def test_direct_sum_small(self):
        """Check the polynomial evaluation against the naive k-fold sum."""
        from itertools import product

        for n_ports, k in [(2, 2), (3, 2), (2, 3)]:
            naive = 0
            for js in product(range(1, n_ports + 1), repeat=k):
                naive += falling_factorial(n_ports * k, sum(js)) * _prod(
                    stirling2(n_ports, j) for j in js
                )
            assert (
                full_multicast_capacity(MulticastModel.MSDW, n_ports, k) == naive
            )

    def test_any_direct_sum_small(self):
        from itertools import product

        for n_ports, k in [(2, 2), (3, 2)]:
            naive = 0
            # Per wavelength: choose l idle copies and j groups of the rest.
            per_wavelength = []
            for _ in range(k):
                options = []
                for idle in range(n_ports + 1):
                    for j in range(0, n_ports - idle + 1):
                        if j == 0 and idle != n_ports:
                            continue
                        options.append(
                            (j, binomial(n_ports, idle) * stirling2(n_ports - idle, j))
                        )
                per_wavelength.append(options)
            for combo in product(*per_wavelength):
                total_groups = sum(j for j, _ in combo)
                weight = _prod(w for _, w in combo)
                naive += falling_factorial(n_ports * k, total_groups) * weight
            assert (
                any_multicast_capacity(MulticastModel.MSDW, n_ports, k) == naive
            )


def _prod(values) -> int:
    result = 1
    for value in values:
        result *= value
    return result


class TestBruteForceOracle:
    """The decisive check: formulas == exhaustive enumeration."""

    @pytest.mark.parametrize("n_ports,k", ENUMERABLE_SIZES)
    def test_full_assignments(self, model, n_ports: int, k: int):
        assert full_multicast_capacity(model, n_ports, k) == count_assignments(
            model, n_ports, k, full=True
        )

    @pytest.mark.parametrize("n_ports,k", ENUMERABLE_SIZES)
    def test_any_assignments(self, model, n_ports: int, k: int):
        assert any_multicast_capacity(model, n_ports, k) == count_assignments(
            model, n_ports, k, full=False
        )


class TestPaperSanityChecks:
    @given(st.integers(1, 8))
    def test_k1_reduction(self, n_ports: int):
        """At k=1 all models reduce to the electronic N^N / (N+1)^N."""
        for model in MulticastModel:
            assert full_multicast_capacity(model, n_ports, 1) == n_ports**n_ports
            assert (
                any_multicast_capacity(model, n_ports, 1)
                == (n_ports + 1) ** n_ports
            )

    @given(st.integers(1, 6), st.integers(2, 4))
    def test_model_ordering_strict_for_k_gt_1(self, n_ports: int, k: int):
        """Capacity strictly increases MSW < MSDW < MAW when k > 1, N > 1."""
        full = [
            full_multicast_capacity(model, n_ports, k) for model in MulticastModel
        ]
        any_ = [
            any_multicast_capacity(model, n_ports, k) for model in MulticastModel
        ]
        if n_ports == 1:
            # Single port: MSDW == MAW (all destinations are the one port).
            assert full[0] <= full[1] <= full[2]
            assert any_[0] <= any_[1] <= any_[2]
        else:
            assert full[0] < full[1] < full[2]
            assert any_[0] < any_[1] < any_[2]

    @given(st.integers(1, 6), st.integers(1, 4))
    def test_any_exceeds_full(self, n_ports: int, k: int):
        for model in MulticastModel:
            assert any_multicast_capacity(model, n_ports, k) > full_multicast_capacity(
                model, n_ports, k
            )

    @given(st.integers(2, 5), st.integers(2, 3))
    def test_below_equivalent_electronic_network(self, n_ports: int, k: int):
        """An N x N k-wavelength WDM net is weaker than an Nk x Nk electronic one."""
        electronic_full = (n_ports * k) ** (n_ports * k)
        for model in MulticastModel:
            assert full_multicast_capacity(model, n_ports, k) < electronic_full


class TestInterfaces:
    def test_dispatcher(self, model):
        assert multicast_capacity(model, 3, 2, full=True) == full_multicast_capacity(
            model, 3, 2
        )
        assert multicast_capacity(model, 3, 2, full=False) == any_multicast_capacity(
            model, 3, 2
        )

    def test_capacity_result(self, model):
        result = CapacityResult.compute(model, 3, 2)
        assert result.full == full_multicast_capacity(model, 3, 2)
        assert result.any == any_multicast_capacity(model, 3, 2)
        assert result.log10_full < result.log10_any

    def test_invalid_dimensions_rejected(self, model):
        with pytest.raises(ValueError):
            full_multicast_capacity(model, 0, 1)
        with pytest.raises(ValueError):
            any_multicast_capacity(model, 2, 0)

    def test_log10_int_matches_math(self):
        import math

        assert log10_int(1000) == pytest.approx(3.0)
        assert log10_int(7**30) == pytest.approx(30 * math.log10(7))

    def test_log10_int_beyond_float_range(self):
        huge = 10 ** (400)
        assert log10_int(huge) == pytest.approx(400.0, abs=1e-6)

    def test_log10_int_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log10_int(0)

    def test_log10_wrappers(self, model):
        assert log10_full_multicast_capacity(model, 4, 2) == pytest.approx(
            log10_int(full_multicast_capacity(model, 4, 2))
        )
        assert log10_any_multicast_capacity(model, 4, 2) == pytest.approx(
            log10_int(any_multicast_capacity(model, 4, 2))
        )

    def test_large_network_fast(self):
        """Big-int formulas must stay fast at realistic sizes."""
        value = full_multicast_capacity(MulticastModel.MSDW, 32, 8)
        assert value > 0
        assert log10_int(value) > 100
